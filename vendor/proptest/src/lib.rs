//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest used by the workspace's property-based
//! tests: the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_oneof!`] macros, the [`Strategy`] trait with `prop_map` /
//! `prop_filter_map`, range and tuple strategies, [`collection::vec`],
//! [`Just`], [`ProptestConfig`] and [`TestCaseError`].
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the case index and seed; the
//!   deterministic per-test RNG makes every failure reproducible.
//! - **Generation only.** Strategies are sampled with a SplitMix64 stream
//!   seeded from the test's name, so runs are stable across processes.

use std::fmt;
use std::ops::Range;

/// Error raised by a failing property (via `prop_assert!` or directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generation stream handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream seeded from an arbitrary value (typically a test-name hash).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic sampler over the [`TestRng`] stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe strategy view backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible sizes for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works via the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::Union;

    /// `prop::oneof`-style helpers live in the crate root here.
    pub mod strategy {
        pub use crate::{BoxedStrategy, Just, Strategy};
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Stable FNV-1a hash of a test name, for per-test seeding.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a property, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality, failing the current case on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property-based tests. Each function body runs once per
/// generated case; `prop_assert!`-style failures abort the case with a
/// reproducible report.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, k in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&k));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn oneof_map_and_filter_compose(
            g in prop_oneof![
                (0usize..4).prop_map(|q| (q, q)),
                ((0usize..4), (0usize..4)).prop_filter_map("distinct", |(a, b)| {
                    (a != b).then_some((a, b))
                }),
            ],
        ) {
            prop_assert!(g.0 < 4 && g.1 < 4);
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(Just(1u8), 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_for("some_test"));
        let mut b = crate::TestRng::new(crate::seed_for("some_test"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
