//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] for
//! `f64`/`bool`, [`Rng::random_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! seeding scheme `rand` uses for `seed_from_u64` — so streams are
//! deterministic per seed, statistically well-behaved for the Monte-Carlo
//! workloads in this repository (yield simulation, SPSA, trajectory
//! sampling, shot noise), and distinct across seeds with overwhelming
//! probability. It is **not** cryptographically secure, which matches the
//! guarantees the real `StdRng` is relied on for here (none).

use std::ops::Range;

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`:
    /// uniform `[0, 1)` for `f64`, fair coin for `bool`, uniform over all
    /// values for the integer types.
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: distr::UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution traits backing [`Rng::random`] and [`Rng::random_range`].
pub mod distr {
    use super::RngCore;
    use std::ops::Range;

    /// Types samplable from their "standard" distribution.
    pub trait StandardUniform: Sized {
        /// Draws one value.
        fn sample<R: RngCore>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample<R: RngCore>(rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardUniform for bool {
        fn sample<R: RngCore>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardUniform for u64 {
        fn sample<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Types samplable uniformly from a half-open range.
    pub trait UniformSampled: Sized {
        /// Draws one value from `range`.
        fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformSampled for $t {
                fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                    assert!(range.start < range.end, "cannot sample from an empty range");
                    let span = (range.end - range.start) as u64;
                    // Rejection sampling to avoid modulo bias.
                    let zone = u64::MAX - (u64::MAX % span);
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return range.start + (v % span) as $t;
                        }
                    }
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize);

    impl UniformSampled for f64 {
        fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
            assert!(range.start < range.end, "cannot sample from an empty range");
            let u = <f64 as StandardUniform>::sample(rng);
            range.start + u * (range.end - range.start)
        }
    }
}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand's seed_from_u64 does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 15];
        for _ in 0..2000 {
            let k = rng.random_range(1..16u8);
            assert!((1..16).contains(&k));
            seen[(k - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 1..16 should appear");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..20).collect();
        c.shuffle(&mut StdRng::seed_from_u64(12));
        assert_ne!(a, c, "different seeds should shuffle differently (w.h.p.)");
    }
}
