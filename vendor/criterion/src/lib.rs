//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a minimal wall-clock benchmarking harness with the subset of
//! the criterion API the workspace uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints min/median/mean per-iteration
//! times. There is no statistical outlier analysis or HTML report.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot code.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples. Each
    /// sample batches enough iterations to dominate timer resolution.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit ~5 ms?
        let mut iters_per_sample = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples — did the closure call iter()?)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// A programmatic warmup + median-of-k wall-clock measurement, for
/// harnesses (like `pcd bench`) that need the numbers rather than a
/// printed report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Median per-call wall time in nanoseconds.
    pub median_ns: u64,
    /// Minimum per-call wall time in nanoseconds.
    pub min_ns: u64,
    /// Timed samples taken (after warmup).
    pub samples: usize,
}

/// Runs `routine` `warmup` times untimed, then `samples` timed calls, and
/// returns the median/min per-call wall time. One call per sample — meant
/// for routines in the ≥ 10 µs range; batch shorter routines yourself.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure<O>(warmup: usize, samples: usize, mut routine: impl FnMut() -> O) -> Measurement {
    assert!(samples > 0, "at least one timed sample required");
    for _ in 0..warmup {
        black_box(routine());
    }
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed().as_nanos();
            u64::try_from(dt).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    Measurement {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        samples,
    }
}

/// Declares a benchmark group: a configuration plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    #[should_panic]
    fn zero_sample_size_rejected() {
        let _ = Criterion::default().sample_size(0);
    }
}
