//! Static ansatz compression (the paper's §III) head-to-head with
//! ADAPT-VQE (the dynamic alternative from the related work, Grimsley et
//! al.), plus the measurement-grouping view of the inner loop.
//!
//! Run with:
//! `cargo run --release -p pauli-codesign --example adaptive_vs_compression`

use pauli_codesign::ansatz::compress;
use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::pauli::group_qubit_wise;
use pauli_codesign::vqe::adapt::{run_adapt_vqe, uccsd_pool, AdaptOptions};
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Benchmark::LiH.build(1.6)?;
    let h = system.qubit_hamiltonian();
    let exact = system.exact_ground_state_energy();
    println!("LiH @ 1.6 Å — exact ground state {exact:.6} Ha");

    // The inner loop: measurement settings per energy evaluation.
    let groups = group_qubit_wise(h);
    println!(
        "Hamiltonian: {} Pauli terms → {} qubit-wise commuting measurement groups",
        h.len(),
        groups.len()
    );
    println!();

    // Static compression (paper §III): selection is free — it only compares
    // Pauli strings classically.
    println!("method                params   energy (Ha)    error      outer iters");
    let full = UccsdAnsatz::for_system(&system).into_ir();
    for ratio in [0.3, 0.5] {
        let (ir, _) = compress(&full, h, ratio);
        let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();
        println!(
            "compression {:>3.0}%     {:>5}   {:>11.6}   {:>8.2e}   {:>6}",
            ratio * 100.0,
            ir.num_parameters(),
            run.energy,
            run.energy - exact,
            run.iterations
        );
    }

    // ADAPT-VQE: grows the ansatz operator by operator using measured pool
    // gradients (extra quantum cost per macro-cycle, but state-adapted).
    let pool = uccsd_pool(system.num_qubits() / 2, system.num_active_electrons());
    let adapt = run_adapt_vqe(
        h,
        system.hartree_fock_state(),
        &pool,
        AdaptOptions {
            gradient_tolerance: 1e-5,
            ..Default::default()
        },
    );
    println!(
        "ADAPT-VQE             {:>5}   {:>11.6}   {:>8.2e}   {:>6}",
        adapt.ir.num_parameters(),
        adapt.energy,
        adapt.energy - exact,
        adapt.total_iterations
    );
    println!();
    println!("ADAPT selection order (pool indices): {:?}", adapt.selected);
    println!(
        "energy after each added operator: {:?}",
        adapt
            .energy_trace
            .iter()
            .map(|e| format!("{e:.5}"))
            .collect::<Vec<_>>()
    );
    println!();
    println!(
        "reading: compression picks its operators for free (a classical \
         Pauli comparison) and lands within ~1e-3 Ha; ADAPT spends {} \
         pool-gradient sweeps and extra optimizer cycles but walks all the \
         way down to the exact energy. The two are complementary, exactly \
         as the paper's related-work section frames them.",
        adapt.selected.len() + 1
    );
    Ok(())
}
