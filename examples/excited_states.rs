//! Excited states of H₂ with Variational Quantum Deflation on the same
//! compressed-ansatz stack, validated against deflated-Lanczos exact
//! eigenvalues.
//!
//! Run with: `cargo run --release -p pauli-codesign --example excited_states`

use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::vqe::vqd::{run_vqd, VqdOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Benchmark::H2.build(0.74)?;
    let h = system.qubit_hamiltonian();
    let ir = UccsdAnsatz::for_system(&system).into_ir();

    println!("H2 @ 0.74 Å — exact low spectrum (deflated Lanczos):");
    let exact = h.lowest_eigenvalues(5);
    for (k, e) in exact.iter().enumerate() {
        println!("  E{k} = {e:.6} Ha");
    }

    println!();
    println!("VQD ladder (UCCSD ansatz from the Hartree-Fock determinant):");
    let states = run_vqd(
        h,
        &ir,
        3,
        VqdOptions {
            penalty: 5.0,
            ..Default::default()
        },
    );
    for (k, s) in states.iter().enumerate() {
        // Distance to the nearest exact eigenvalue.
        let nearest = exact
            .iter()
            .map(|e| (s.energy - e).abs())
            .fold(f64::INFINITY, f64::min);
        println!(
            "  state {k}: E = {:.6} Ha ({} iters, residual overlap {:.1e}, \
             nearest exact level {:.1e} away)",
            s.energy, s.iterations, s.max_overlap_with_lower, nearest
        );
    }
    println!();
    println!(
        "note: the ground state is exact to machine precision. The 3-parameter \
         UCCSD manifold cannot express every 2-electron eigenstate (the exact \
         E1/E2 pair are triplet-like states outside its reach), so VQD's upper \
         rungs are the lowest *ansatz-expressible* excited states — mutually \
         orthogonal and variationally above the levels they approximate. A \
         richer pool (e.g. the generalized excitations used by ADAPT) closes \
         that gap."
    );
    Ok(())
}
