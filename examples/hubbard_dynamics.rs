//! Trotterized quench dynamics of a Hubbard chain, compiled with the same
//! co-designed stack.
//!
//! A charge-density-wave state (both electrons piled on the first two
//! sites) is released and evolved under the Hubbard Hamiltonian. The
//! Trotter circuits are ordinary Pauli IRs, so Merge-to-Root compiles the
//! *dynamics* program onto the X-Tree exactly as it compiles VQE ansatzes —
//! the generality the paper claims for its Pauli-string-centric design.
//!
//! Run with: `cargo run --release -p pauli-codesign --example hubbard_dynamics`

use pauli_codesign::ansatz::trotter::{trotterize, TrotterOrder};
use pauli_codesign::arch::Topology;
use pauli_codesign::chem::fermion::{accumulate_term, into_real_sum, LadderOp};
use pauli_codesign::chem::hubbard::HubbardModel;
use pauli_codesign::compiler::pipeline::{compile_mtr, compile_sabre};
use pauli_codesign::numeric::Complex64;
use pauli_codesign::pauli::WeightedPauliSum;
use pauli_codesign::vqe::state::prepare_state;

/// Number operator of one site (both spins) as a Pauli sum.
fn site_occupation(sites: usize, site: usize) -> WeightedPauliSum {
    let n = 2 * sites;
    let mut acc = std::collections::HashMap::new();
    for spin_orbital in [site, sites + site] {
        accumulate_term(
            &mut acc,
            n,
            &[
                LadderOp::create(spin_orbital),
                LadderOp::annihilate(spin_orbital),
            ],
            1.0,
        );
    }
    into_real_sum(n, acc)
}

fn main() {
    let sites = 4;
    let model = HubbardModel::chain(sites, 1.0, 2.0);
    let h = model.qubit_hamiltonian();

    // CDW initial state: site 0 doubly occupied, site 1 doubly occupied.
    let initial: u64 = (1 << 0) | (1 << 1) | (1 << sites) | (1 << (sites + 1));

    println!("4-site Hubbard quench (t = 1, U = 2), CDW initial state");
    println!();
    println!("time    n(site0)  n(site1)  n(site2)  n(site3)   energy");
    let occupations: Vec<WeightedPauliSum> =
        (0..sites).map(|s| site_occupation(sites, s)).collect();

    for k in 0..=6 {
        let time = 0.5 * k as f64;
        let state: Vec<Complex64> = if k == 0 {
            let mut v = vec![Complex64::ZERO; 1 << (2 * sites)];
            v[initial as usize] = Complex64::ONE;
            v
        } else {
            let ir = trotterize(&h, time, 40, TrotterOrder::Second, initial);
            prepare_state(&ir, &[1.0]).amplitudes().to_vec()
        };
        print!("{time:<7.2}");
        for occ in &occupations {
            print!(" {:>9.4}", occ.expectation(&state));
        }
        println!("  {:>8.4}", h.expectation(&state));
    }

    // Trotter-order accuracy at t = 2.0 against exact evolution.
    println!();
    let mut exact = vec![Complex64::ZERO; 1 << (2 * sites)];
    exact[initial as usize] = Complex64::ONE;
    h.evolve_exact(2.0, &mut exact);
    for (order, label) in [
        (TrotterOrder::First, "first"),
        (TrotterOrder::Second, "second"),
    ] {
        let ir = trotterize(&h, 2.0, 20, order, initial);
        let approx = prepare_state(&ir, &[1.0]);
        let overlap: Complex64 = exact
            .iter()
            .zip(approx.amplitudes())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        println!(
            "{label}-order Trotter, 20 steps: infidelity {:.2e}, {} Pauli rotations",
            1.0 - overlap.norm_sqr(),
            ir.len()
        );
    }

    // The same IR compiles onto hardware like any chemistry program.
    let ir = trotterize(&h, 0.5, 5, TrotterOrder::Second, initial);
    let xtree = Topology::xtree(17);
    let mtr = compile_mtr(&ir, &xtree);
    let sab = compile_sabre(&ir, &xtree, 1);
    println!();
    println!(
        "one quench segment on XTree17Q: {} original CNOTs, MtR +{} vs SABRE +{}",
        mtr.original_cnots(),
        mtr.added_cnots(),
        sab.added_cnots()
    );
    println!();
    println!(
        "note: unlike the chemistry programs (and the Hubbard *VQE* ansatz, \
         where MtR wins by orders of magnitude), this raw Trotter stream has \
         uniform 1D-lattice locality with no important-qubit hierarchy, and \
         the general-purpose SABRE baseline routes it better — exactly the \
         kind of model-dependent trade-off the paper's §VII anticipates for \
         periodic systems."
    );
}
