//! Beyond chemistry: the Fermi–Hubbard model through the same co-designed
//! stack (the paper's §VII "More physical systems" direction).
//!
//! A condensed-matter Hamiltonian is Jordan–Wigner-encoded, prepared with
//! the same UCCSD-style ansatz, compressed against its own Hamiltonian, run
//! through VQE, and compiled onto the X-Tree — no chemistry-specific code
//! involved anywhere.
//!
//! Run with: `cargo run --release -p pauli-codesign --example hubbard_model`

use pauli_codesign::ansatz::compress;
use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::arch::Topology;
use pauli_codesign::chem::hubbard::HubbardModel;
use pauli_codesign::compiler::pipeline::{compile_mtr, compile_sabre};
use pauli_codesign::vqe::driver::{run_vqe_from, VqeOptions};

fn main() {
    // A 4-site Hubbard chain at half filling, pinned with μ = U/2.
    let (t, u) = (1.0, 4.0);
    let model = HubbardModel::chain(4, t, u).with_chemical_potential(u / 2.0);
    let h = model.qubit_hamiltonian();
    println!(
        "4-site Hubbard chain, t = {t}, U = {u}: {} qubits, {} Pauli strings",
        model.num_qubits(),
        h.len()
    );

    let exact = h.ground_state_energy();
    println!("exact ground state (Lanczos): {exact:.6}");

    // Same ansatz machinery as the molecules: singles+doubles from the
    // half-filling determinant.
    let ansatz = UccsdAnsatz::new(model.num_sites(), model.half_filling_electrons());
    println!(
        "UCC ansatz: {} parameters, {} Pauli strings",
        ansatz.ir().num_parameters(),
        ansatz.ir().len()
    );

    // A model-specific wrinkle the paper anticipated (§VII: "the actual
    // optimizations may need to change according to the characteristics of
    // these models"): in the site basis Hubbard's U term is diagonal, so
    // *double* excitations have zero first-order gradient at the reference
    // determinant — the opposite of molecules, where Brillouin's theorem
    // zeroes the singles instead. A doubles-heavy compressed selection
    // therefore starts on a gradient plateau; a tiny symmetry-breaking
    // start lets the optimizer leave it.
    println!();
    println!("ratio    energy        error      iters");
    for ratio in [0.3, 0.5, 1.0] {
        let (ir, _) = compress(ansatz.ir(), &h, ratio);
        let x0 = vec![0.02; ir.num_parameters()];
        let run = run_vqe_from(&h, &ir, &x0, VqeOptions::default()).unwrap();
        println!(
            "{:>4.0}%   {:>9.6}   {:>9.2e}   {:>5}",
            ratio * 100.0,
            run.energy,
            run.energy - exact,
            run.iterations
        );
    }

    // And the same compiler stack.
    let xtree = Topology::xtree(17);
    let (ir, _) = compress(ansatz.ir(), &h, 0.5);
    let mtr = compile_mtr(&ir, &xtree);
    let sab = compile_sabre(&ir, &xtree, 1);
    println!();
    println!(
        "X-Tree compilation at 50%: MtR +{} CNOTs vs SABRE +{} (original {})",
        mtr.added_cnots(),
        sab.added_cnots(),
        mtr.original_cnots()
    );
}
