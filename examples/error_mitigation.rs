//! Zero-noise extrapolation on a noisy LiH energy (the paper's §VII
//! "compiler-based error mitigation" direction).
//!
//! The compressed LiH ansatz is evaluated under depolarizing CNOT noise at
//! amplified noise levels (by CNOT folding and by error-rate scaling), and
//! Richardson extrapolation recovers most of the noise-free energy.
//!
//! Run with: `cargo run --release -p pauli-codesign --example error_mitigation`

use pauli_codesign::ansatz::compress;
use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::sim::NoiseModel;
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};
use pauli_codesign::vqe::mitigation::{zne_energy, NoiseScaling};
use pauli_codesign::vqe::state::energy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Benchmark::LiH.build(1.6)?;
    let h = system.qubit_hamiltonian();
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (ir, _) = compress(&full, h, 0.5);

    // Optimize noiselessly, then study the noisy evaluation of the optimum.
    let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();
    let ideal = energy(h, &ir, &run.params);
    println!("noise-free energy at the optimum : {ideal:.6} Ha");

    // A noise level strong enough to visibly bias the energy.
    let noise = NoiseModel::cnot_only(2e-3);

    for (label, scaling, scales) in [
        (
            "error-rate scaling (λ = 1,2,3)",
            NoiseScaling::ErrorRate,
            vec![1.0, 2.0, 3.0],
        ),
        (
            "CNOT folding       (λ = 1,3,5)",
            NoiseScaling::CnotFolding,
            vec![1.0, 3.0, 5.0],
        ),
    ] {
        let r = zne_energy(h, &ir, &run.params, &noise, &scales, scaling);
        println!();
        println!("{label}");
        for (s, e) in &r.samples {
            println!("  λ = {s:>3}: E = {e:.6} Ha (bias {:+.2e})", e - ideal);
        }
        println!(
            "  extrapolated: {:.6} Ha — residual bias {:+.2e} vs raw {:+.2e} ({}x reduction)",
            r.mitigated,
            r.mitigated - ideal,
            r.raw - ideal,
            ((r.raw - ideal) / (r.mitigated - ideal)).abs().round()
        );
    }
    Ok(())
}
