//! Compiling a chemistry program onto the X-Tree: Merge-to-Root vs SABRE.
//!
//! Reproduces one row of the paper's Table II comparison on NaH: the
//! co-designed compiler's overhead is near zero while the general-purpose
//! baseline pays hundreds of extra CNOTs on the same sparse architecture.
//!
//! Run with: `cargo run --release -p pauli-codesign --example compile_xtree`

use pauli_codesign::ansatz::{compress, uccsd::UccsdAnsatz};
use pauli_codesign::arch::Topology;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::compiler::pipeline::{compile_mtr, compile_sabre};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-pass compiler timings and swap/CNOT counters land in obs.
    obs::enable();

    let system = Benchmark::NaH.build(1.89)?;
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let xtree = Topology::xtree(17);
    let grid = Topology::grid17q();

    println!("NaH on 17-qubit devices — added CNOTs by compilation pipeline");
    println!("{xtree}");
    println!("{grid}");
    println!();
    println!("ratio   original   MtR/XTree   SABRE/XTree   SABRE/Grid");
    for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let (ir, _) = compress(&full, system.qubit_hamiltonian(), ratio);
        let mtr = compile_mtr(&ir, &xtree);
        let sab_x = compile_sabre(&ir, &xtree, 1);
        let sab_g = compile_sabre(&ir, &grid, 1);
        println!(
            "{:4.0}%   {:>8}   {:>9}   {:>11}   {:>10}",
            ratio * 100.0,
            mtr.original_cnots(),
            mtr.added_cnots(),
            sab_x.added_cnots(),
            sab_g.added_cnots()
        );
    }
    println!();
    println!("(every two-qubit gate in every compiled circuit respects the coupling graph)");
    println!();
    print!("{}", obs::summary());
    Ok(())
}
