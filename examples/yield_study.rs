//! Fabrication-yield study: X-Tree vs grid (the paper's Figure 11).
//!
//! Monte-Carlo yield under the frequency-collision model for the two
//! 17-qubit architectures, across fabrication precision values.
//!
//! Run with: `cargo run --release -p pauli-codesign --example yield_study`

use pauli_codesign::arch::{simulate_yield, CollisionModel, Topology};

fn main() {
    let model = CollisionModel::default();
    let xtree = Topology::xtree(17);
    let grid = Topology::grid17q();
    let samples = 50_000;

    println!("{xtree}  vs  {grid}");
    println!();
    println!("sigma (GHz)   XTree17Q yield   Grid17Q yield   ratio");
    for sigma in [0.02, 0.03, 0.04, 0.05, 0.06] {
        let x = simulate_yield(&xtree, &model, sigma, samples, 17);
        let g = simulate_yield(&grid, &model, sigma, samples, 17);
        println!(
            "{sigma:>8.2}      {:>12.4}   {:>13.4}   {:>5.1}x",
            x.yield_rate,
            g.yield_rate,
            x.yield_rate / g.yield_rate.max(1e-9)
        );
    }
    println!();
    println!(
        "crosstalk-exposed edge pairs: XTree {} vs Grid {}",
        xtree.adjacent_edge_pairs(),
        grid.adjacent_edge_pairs()
    );
}
