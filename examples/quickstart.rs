//! Quickstart: the whole co-design pipeline on LiH in a dozen lines.
//!
//! Run with: `cargo run --release -p pauli-codesign --example quickstart`

use pauli_codesign::chem::Benchmark;
use pauli_codesign::CoDesignPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record structured timings/metrics for every pipeline stage.
    obs::enable();

    let report = CoDesignPipeline::new(Benchmark::LiH)
        .bond_length(1.6)
        .compression_ratio(0.5)
        .run()?;

    println!(
        "molecule            : LiH @ 1.6 Å ({} qubits)",
        report.system.num_qubits()
    );
    println!(
        "Hartree-Fock energy : {:>12.6} Ha",
        report.hartree_fock_energy
    );
    println!("exact ground state  : {:>12.6} Ha", report.exact_energy);
    println!("VQE energy          : {:>12.6} Ha", report.energy);
    println!("energy error        : {:>12.2e} Ha", report.energy_error());
    println!(
        "correlation         : {:>11.1}% recovered",
        100.0 * report.correlation_recovered()
    );
    println!(
        "ansatz              : {} of {} UCCSD parameters kept",
        report.kept_parameters, report.original_parameters
    );
    println!("VQE iterations      : {}", report.iterations);
    println!(
        "X-Tree mapping      : {} original CNOTs, {} added by routing",
        report.original_cnots, report.added_cnots
    );
    println!();
    print!("{}", obs::summary());
    Ok(())
}
