//! Ansatz compression on LiH: the paper's §III optimization in action.
//!
//! Sweeps the compression ratio, comparing the importance-based selection
//! (Algorithm 1) against random selection — reproducing the evaluation's
//! key claim that 30% importance-selected parameters match 50% random ones.
//!
//! Run with: `cargo run --release -p pauli-codesign --example compressed_vqe_lih`

use pauli_codesign::ansatz::{compress, compress_random, uccsd::UccsdAnsatz};
use pauli_codesign::chem::Benchmark;
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Benchmark::LiH.build(1.6)?;
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let exact = system.exact_ground_state_energy();
    println!(
        "LiH @ 1.6 Å — exact ground state {exact:.6} Ha, {} UCCSD parameters",
        full.num_parameters()
    );
    println!();
    println!("selection        params   energy (Ha)    error (Ha)   iterations");

    for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let (ir, report) = compress(&full, system.qubit_hamiltonian(), ratio);
        let vqe = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
        println!(
            "importance {:3.0}%   {:>5}   {:>11.6}   {:>9.2e}   {:>6}",
            ratio * 100.0,
            report.kept_parameters,
            vqe.energy,
            vqe.energy - exact,
            vqe.iterations
        );
    }

    // The random baseline, averaged over five seeds like the paper.
    let mut energies = Vec::new();
    for seed in 0..5 {
        let (ir, _) = compress_random(&full, 0.5, seed);
        let vqe = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
        energies.push(vqe.energy);
    }
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    let std =
        (energies.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / energies.len() as f64).sqrt();
    println!(
        "random     50%    {:>5}   {mean:>11.6}   {:>9.2e}   (σ = {std:.1e}, 5 seeds)",
        full.num_parameters().div_ceil(2),
        mean - exact
    );
    Ok(())
}
