//! The paper's Figure 3 workload: the H₂ dissociation curve.
//!
//! Scans the bond length, runs full-UCCSD VQE at every point, and locates
//! the energy minimum — which lands near the experimental 0.74 Å.
//! Per-point progress is recorded through `obs` (one `scan.point` event per
//! bond length) instead of printed as it happens; the table below is the
//! final result.
//!
//! Run with: `cargo run --release -p pauli-codesign --example h2_dissociation`

use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    obs::enable();

    let mut rows = Vec::new();
    let mut best = (0.0f64, f64::INFINITY);
    for k in 0..18 {
        let bond = 0.3 + 0.1 * k as f64;
        let system = Benchmark::H2.build(bond)?;
        let ir = UccsdAnsatz::for_system(&system).into_ir();
        let vqe = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
        obs::event!(
            "scan.point",
            bond = bond,
            energy = vqe.energy,
            iterations = vqe.iterations
        );
        rows.push((
            bond,
            vqe.energy,
            system.exact_ground_state_energy(),
            system.hartree_fock_energy(),
        ));
        if vqe.energy < best.1 {
            best = (bond, vqe.energy);
        }
    }

    println!("bond (Å)   VQE (Ha)      exact (Ha)    HF (Ha)");
    for (bond, vqe, exact, hf) in rows {
        println!("{bond:6.2}   {vqe:>11.6}   {exact:>11.6}   {hf:>11.6}");
    }
    println!();
    println!(
        "minimum at {:.2} Å with E = {:.6} Ha (experimental bond length: 0.74 Å)",
        best.0, best.1
    );
    println!();
    print!("{}", obs::summary());
    Ok(())
}
