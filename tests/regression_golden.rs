//! Golden-number regression tests: lock in the deterministic headline
//! results this reproduction currently achieves, so future changes that
//! silently degrade them fail loudly. (Everything asserted here is
//! deterministic: fixed seeds, fixed geometries, exact arithmetic paths.)

use pauli_codesign::ansatz::compress;
use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::arch::Topology;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::compiler::peephole::peephole_optimize;
use pauli_codesign::compiler::pipeline::compile_mtr;
use pauli_codesign::compiler::synthesis::synthesize_chain_nominal;

/// Table II MtR/XTree17Q added-CNOT golden values at equilibrium.
#[test]
fn golden_mtr_overheads() {
    let cases: [(Benchmark, [usize; 3]); 3] = [
        (Benchmark::H2, [0, 0, 3]), // 10%, 50%, 90%
        (Benchmark::LiH, [0, 0, 6]),
        (Benchmark::NaH, [0, 0, 12]),
    ];
    let xtree = Topology::xtree(17);
    for (molecule, expected) in cases {
        let system = molecule
            .build(molecule.equilibrium_bond_length())
            .expect("chemistry");
        let full = UccsdAnsatz::for_system(&system).into_ir();
        for (ratio, want) in [0.1, 0.5, 0.9].iter().zip(&expected) {
            let (ir, _) = compress(&full, system.qubit_hamiltonian(), *ratio);
            let compiled = compile_mtr(&ir, &xtree);
            assert_eq!(
                compiled.added_cnots(),
                *want,
                "{molecule} at {:.0}%",
                ratio * 100.0
            );
        }
    }
}

/// Table I "original CNOTs" golden values of the compressed circuits
/// (these matched the paper's table rows exactly for H2/LiH and off by one
/// selection for NaH's 10% row).
#[test]
fn golden_compressed_original_cnots() {
    let cases: [(Benchmark, [usize; 3]); 3] = [
        (Benchmark::H2, [48, 52, 56]),
        (Benchmark::LiH, [80, 256, 280]),
        (Benchmark::NaH, [192, 672, 764]),
    ];
    for (molecule, expected) in cases {
        let system = molecule
            .build(molecule.equilibrium_bond_length())
            .expect("chemistry");
        let full = UccsdAnsatz::for_system(&system).into_ir();
        for (ratio, want) in [0.1, 0.5, 0.9].iter().zip(&expected) {
            let (ir, _) = compress(&full, system.qubit_hamiltonian(), *ratio);
            assert_eq!(
                synthesize_chain_nominal(&ir).cnot_count(),
                *want,
                "{molecule} at {:.0}%",
                ratio * 100.0
            );
        }
    }
}

/// Peephole golden values on full-UCCSD chain circuits.
#[test]
fn golden_peephole_reductions() {
    for (m, e, gates_after) in [(2usize, 2usize, 124usize), (3, 2, 504), (4, 2, 1224)] {
        let ir = UccsdAnsatz::new(m, e).into_ir();
        let (opt, _) = peephole_optimize(&synthesize_chain_nominal(&ir));
        assert_eq!(opt.gate_count(), gates_after, "({m},{e})");
    }
}

/// Electronic-structure golden energies (Hartree, 1e-4 window — these pin
/// the integral + SCF + active-space stack end to end).
#[test]
fn golden_reference_energies() {
    let cases = [
        (Benchmark::H2, -1.116759, -1.137284),    // HF, exact @ 0.74 Å
        (Benchmark::LiH, -7.861865, -7.881072),   // @ 1.60 Å
        (Benchmark::H2O, -74.963319, -75.013077), // @ 0.96 Å
    ];
    for (molecule, hf, exact) in cases {
        let system = molecule
            .build(molecule.equilibrium_bond_length())
            .expect("chemistry");
        assert!(
            (system.hartree_fock_energy() - hf).abs() < 1e-4,
            "{molecule} HF {} vs {hf}",
            system.hartree_fock_energy()
        );
        assert!(
            (system.exact_ground_state_energy() - exact).abs() < 1e-4,
            "{molecule} exact {} vs {exact}",
            system.exact_ground_state_energy()
        );
    }
}
