//! The flight-recorder ring must be bit-identical across worker-thread
//! counts: a dump taken after the same logical workload at 1, 2, and 4
//! `PCD_THREADS` carries the same entries (sequence, kind, name, value —
//! the wall-clock fields, `at_us` and a span entry's measured duration,
//! are documented as excluded). This is what makes
//! a flight dump evidence about the *job*, not about the machine that
//! happened to run it. The `par.*` counter carve-out is what earns the
//! property: `par` only records its task accounting when a region
//! actually goes parallel, so those deltas are excluded from the ring.
//!
//! Runs in its own integration binary: the ring is thread-local and the
//! test needs sole ownership of its thread's ring.

use obs::flight::{FlightEntry, FlightKind};
use pauli_codesign::par;

/// A workload mixing ring-visible telemetry with genuinely parallel
/// numeric work (large enough to clear `par::SERIAL_CUTOFF`, so the
/// `par.*` counters really do fire at 2+ threads).
fn workload() {
    let data: Vec<f64> = (0..2 * par::SERIAL_CUTOFF)
        .map(|k| k as f64 * 0.5)
        .collect();
    for i in 0..8u64 {
        let mut span = obs::span("det.stage");
        span.record("iteration", i);
        obs::counter_add("det.items", i + 1);
        let sums = par::map_reduce(
            data.len(),
            par::DEFAULT_CHUNK,
            0.0f64,
            |range| data[range].iter().sum::<f64>(),
            |a, b| a + b,
        );
        std::hint::black_box(sums);
        obs::event!("det.tick");
        drop(span);
    }
}

fn ring_after_workload(threads: usize) -> Vec<FlightEntry> {
    // set_job clears the ring, so each run starts from sequence 0.
    obs::flight::set_job(&format!("det-{threads}"));
    par::with_threads(threads, workload);
    let snapshot = obs::flight::ring_snapshot();
    obs::flight::clear_job();
    snapshot
}

/// The determinism key of one entry — everything but the wall clock: a
/// span's `value` is its measured duration, so it is masked like `at_us`.
fn key(e: &FlightEntry) -> (u64, FlightKind, String, u64) {
    let value_bits = match e.kind() {
        FlightKind::Span => 0,
        _ => e.value().to_bits(),
    };
    (e.seq(), e.kind(), e.name().to_string(), value_bits)
}

#[test]
fn ring_is_bit_identical_across_thread_counts() {
    let baseline: Vec<_> = ring_after_workload(1).iter().map(key).collect();
    assert!(
        !baseline.is_empty(),
        "the workload must leave entries in the ring"
    );
    // 8 iterations × (span + counter + event).
    assert_eq!(baseline.len(), 24);
    assert!(
        baseline
            .iter()
            .all(|(_, _, name, _)| !name.starts_with("par.")),
        "par.* accounting must never reach the ring: {baseline:?}"
    );
    for threads in [2, 4] {
        let ring: Vec<_> = ring_after_workload(threads).iter().map(key).collect();
        assert_eq!(
            baseline, ring,
            "ring content differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn dumps_of_the_same_workload_agree_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("pcd-flight-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut parsed = Vec::new();
    for threads in [1usize, 2, 4] {
        obs::flight::set_job("det-dump");
        par::with_threads(threads, workload);
        let path =
            obs::flight::dump(&dir, &format!("det-dump-{threads}"), "test").expect("dump writes");
        obs::flight::clear_job();
        let text = std::fs::read_to_string(&path).expect("dump reads back");
        parsed.push(obs::flight::parse_dump(&text).expect("CRC seal verifies"));
    }
    let strip = |d: &obs::flight::FlightDump| -> Vec<(u64, String, String, u64)> {
        d.entries
            .iter()
            .map(|r| {
                let value_bits = if r.kind == "span" {
                    0
                } else {
                    r.value.to_bits()
                };
                (r.seq, r.kind.clone(), r.name.clone(), value_bits)
            })
            .collect()
    };
    assert_eq!(strip(&parsed[0]), strip(&parsed[1]));
    assert_eq!(strip(&parsed[0]), strip(&parsed[2]));
    let _ = std::fs::remove_dir_all(&dir);
}
