//! Zero-downtime restart, end to end through a real SIGTERM: a serve
//! daemon killed mid-batch must seal its restart state, and a restarted
//! daemon must finish the pending tail with records bit-identical to an
//! uninterrupted computation — the serve mirror of
//! `batch_drain_resume.rs`.
//!
//! The SIGTERM drain flag is process-global, so the tests here serialize
//! on a mutex instead of racing each other's daemons.

use std::collections::BTreeMap;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pauli_codesign::chem::Benchmark;
use pauli_codesign::resilience::Checkpoint;
use pauli_codesign::serve::{
    compute_record, run_serve, sys, ServeConfig, ServeError, KIND_SERVE_MANIFEST,
};
use pauli_codesign::supervisor::{
    decode_manifest, JobRecord, JobSpec, JobState, KIND_BATCH_MANIFEST,
};

static SIGNAL_LOCK: Mutex<()> = Mutex::new(());

/// A scratch directory for one test's serve state, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pcd-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn specs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("s-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.66 + 0.04 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

fn config(state_dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        state_dir: state_dir.to_path_buf(),
        workers: 1,
        seed: 99,
        ..ServeConfig::default()
    }
}

fn wait_for_socket(path: &std::path::Path) {
    let start = Instant::now();
    while !path.exists() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon never bound {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Reads the sealed serve manifest, rewrapping its kind tag so the
/// batch-manifest decoder accepts it — exactly what the daemon does on
/// restart.
fn read_manifest(state_dir: &std::path::Path) -> Vec<JobRecord> {
    let mut ck = Checkpoint::read(state_dir.join("serve.manifest")).expect("manifest reads");
    assert_eq!(ck.kind, KIND_SERVE_MANIFEST);
    ck.kind = KIND_BATCH_MANIFEST.to_string();
    let (_, records) = decode_manifest(&ck).expect("manifest decodes");
    records
}

#[test]
fn sigterm_mid_batch_restarts_bit_identically() {
    let _guard = SIGNAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = specs(5);
    let scratch = ScratchDir::new("serve-sigterm");
    let cfg = config(&scratch.0);

    // The uninterrupted reference: what every request must compute to,
    // no matter how many SIGTERMs land in between.
    let reference: BTreeMap<String, u64> = jobs
        .iter()
        .map(|spec| {
            let record = compute_record(spec, 0, &cfg, None);
            let JobState::Done { energy_bits, .. } = record.state else {
                panic!("reference job {} did not converge", spec.id);
            };
            (spec.id.clone(), energy_bits)
        })
        .collect();

    // Lifetime 1: submit the batch, then SIGTERM the daemon mid-flight.
    // Streams stay open so undelivered requests journal as pending
    // rather than cancelling. The signal races the workers, so retry
    // (from a clean state dir) until it genuinely interrupts something —
    // a drain that lands after the last job proves nothing about resume.
    let mut first = None;
    for _attempt in 0..20 {
        let _ = std::fs::remove_dir_all(&scratch.0);
        std::fs::create_dir_all(&scratch.0).expect("recreate scratch dir");
        let summary = std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_serve(&cfg));
            wait_for_socket(&cfg.socket_path());
            let mut streams = Vec::new();
            for spec in &jobs {
                let mut stream = UnixStream::connect(cfg.socket_path()).expect("connect");
                writeln!(stream, "{}", spec.to_json_line()).expect("send request");
                streams.push(stream);
            }
            assert!(sys::send_sigterm(std::process::id()), "sigterm to self");
            let summary = daemon.join().expect("daemon joins").expect("daemon runs");
            drop(streams);
            summary
        });
        assert!(summary.drained, "SIGTERM must drain the daemon");
        if summary.pending > 0 {
            first = Some(summary);
            break;
        }
    }
    let first = first.expect("20 SIGTERMs never landed mid-batch");
    assert_eq!(
        first.accepted,
        first.done + first.pending,
        "every accepted request is done or journaled pending"
    );

    // The sealed manifest is the restart contract: every submitted id,
    // each either Done (bit-identical already) or Pending.
    let sealed = read_manifest(&scratch.0);
    assert_eq!(sealed.len(), first.accepted);
    for record in &sealed {
        match &record.state {
            JobState::Done { energy_bits, .. } => {
                assert_eq!(Some(energy_bits), reference.get(&record.id));
            }
            JobState::Pending { .. } => {}
            other => panic!("sealed record {} in unexpected state {other:?}", record.id),
        }
    }

    // Lifetime 2: restart on the same state dir with no new traffic; the
    // daemon must replay the manifest and recompute the pending tail.
    let restart_cfg = ServeConfig {
        max_requests: Some(0),
        ..cfg.clone()
    };
    let second = run_serve(&restart_cfg).expect("restart runs");
    assert!(!second.drained, "restart finished, not drained");
    assert_eq!(second.resumed, first.pending, "pending tail resumed");
    assert_eq!(second.pending, 0, "nothing left pending after restart");

    // Final manifest: every record Done and bit-identical to the
    // uninterrupted reference — the restart was invisible.
    let final_records = read_manifest(&scratch.0);
    assert_eq!(final_records.len(), jobs.len());
    for record in &final_records {
        let JobState::Done { energy_bits, .. } = &record.state else {
            panic!(
                "record {} not done after restart: {:?}",
                record.id, record.state
            );
        };
        assert_eq!(
            Some(energy_bits),
            reference.get(&record.id),
            "record {} diverged across the restart",
            record.id
        );
    }
}

#[test]
fn restart_with_a_different_seed_is_refused() {
    let _guard = SIGNAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scratch = ScratchDir::new("serve-seed-mismatch");
    let cfg = ServeConfig {
        max_requests: Some(0),
        ..config(&scratch.0)
    };
    // An idle lifetime still seals a manifest carrying the serve seed.
    run_serve(&cfg).expect("first lifetime runs");

    // A restart under a different seed would silently recompute every
    // cached answer under new bits; the daemon must refuse instead.
    let wrong_seed = ServeConfig { seed: 100, ..cfg };
    match run_serve(&wrong_seed) {
        Err(ServeError::ManifestMismatch(_)) => {}
        other => panic!("expected a manifest mismatch, got {other:?}"),
    }
}
