//! Property tests for the serve daemon's content-addressed cache keys.
//!
//! The daemon's whole restart/replay story leans on one invariant: a
//! request's cache key is a pure function of its content and the serve
//! configuration — not of the request id, arrival order, thread that
//! computed it, or process that ran it. These tests pin that down:
//! golden keys guard cross-run (cross-process) stability, and proptest
//! sweeps guard purity and thread invariance.

use proptest::prelude::*;

use pauli_codesign::chem::Benchmark;
use pauli_codesign::serve::{cache_key, request_seed};
use pauli_codesign::supervisor::JobSpec;

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::H2,
    Benchmark::LiH,
    Benchmark::NaH,
    Benchmark::HF,
    Benchmark::BeH2,
    Benchmark::H2O,
];

/// Builds a spec from raw integer draws (the vendored proptest only
/// samples integer ranges; the mapping to floats is deterministic).
fn spec_from(bench: usize, bond_raw: u32, ratio_raw: u32, id: &str) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        benchmark: BENCHMARKS[bench % BENCHMARKS.len()],
        // bond_raw 0 means "no bond override" — exercises the None arm.
        bond: (bond_raw > 0).then(|| 0.4 + f64::from(bond_raw) / 1250.0),
        ratio: 0.1 + f64::from(ratio_raw % 900) / 1000.0,
    }
}

/// Cross-run stability: these literals were captured from a separate
/// process. If the key derivation ever picks up per-process state (a
/// seeded `HashMap`, pointer hashing, build-time randomness), a fresh
/// run disagrees with the old one and a restarted daemon would recompute
/// its whole cache — this test turns that silent regression into a loud
/// one.
#[test]
fn cache_key_matches_golden_values_from_a_previous_run() {
    let h2 = JobSpec {
        id: "golden".to_string(),
        benchmark: Benchmark::H2,
        bond: Some(0.74),
        ratio: 0.5,
    };
    assert_eq!(cache_key(&h2, 42, 0.0), 0x3873_3056_b9f8_f37b);

    let lih = JobSpec {
        id: "golden-lih".to_string(),
        benchmark: Benchmark::LiH,
        bond: None,
        ratio: 1.0,
    };
    assert_eq!(cache_key(&lih, 7, 0.25), 0x93e7_a3a2_4b37_3221);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The key is deterministic and ignores the request id: two requests
    /// for the same chemistry must share a cache entry no matter who
    /// asked.
    #[test]
    fn cache_key_is_pure_and_id_independent(
        bench in 0usize..6,
        bond_raw in 0u32..2000,
        ratio_raw in 0u32..1000,
        seed in 0u64..u64::MAX,
        fault_bits in 0u32..1000,
    ) {
        let fault_rate = f64::from(fault_bits) / 1000.0;
        let spec = spec_from(bench, bond_raw, ratio_raw, "prop");
        let first = cache_key(&spec, seed, fault_rate);
        prop_assert_eq!(cache_key(&spec, seed, fault_rate), first);

        let renamed = spec_from(bench, bond_raw, ratio_raw, "prop-renamed");
        prop_assert_eq!(cache_key(&renamed, seed, fault_rate), first);

        // And the derived engine seed inherits the same purity.
        prop_assert_eq!(
            request_seed(seed, first),
            request_seed(seed, cache_key(&renamed, seed, fault_rate))
        );
    }

    /// Thread invariance: keys computed concurrently from many threads
    /// agree with the single-threaded value. Guards against any sneaky
    /// thread-local state in the derivation.
    #[test]
    fn cache_key_is_stable_across_thread_counts(
        bench in 0usize..6,
        bond_raw in 0u32..2000,
        seed in 0u64..u64::MAX,
        threads in 1usize..8,
    ) {
        let spec = spec_from(bench, bond_raw, 500, "threads");
        let expected = cache_key(&spec, seed, 0.1);
        let computed: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| cache_key(&spec, seed, 0.1)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("key thread joins"))
                .collect()
        });
        for key in computed {
            prop_assert_eq!(key, expected);
        }
    }

    /// Different chemistry must (except for vanishing hash collisions
    /// over this tiny domain) get different keys — bond bits are part of
    /// the identity, so two bonds never alias a cache entry.
    #[test]
    fn distinct_bonds_get_distinct_keys(
        bond_raw in 1u32..1000,
        delta_raw in 1u32..1000,
        seed in 0u64..u64::MAX,
    ) {
        let near = spec_from(0, bond_raw, 500, "bond");
        let far = spec_from(0, bond_raw + delta_raw, 500, "bond");
        prop_assert!(
            cache_key(&near, seed, 0.0) != cache_key(&far, seed, 0.0),
            "two different bonds aliased one cache key"
        );
    }
}
