//! Checkpoint format-version migration: a committed, byte-frozen v1
//! checkpoint file must keep decoding through the v1→v2 migration hook
//! forever, and freshly written checkpoints must carry the current
//! version (with the v2 job tag when one is set).

use pauli_codesign::resilience::checkpoint::{migrate, CHECKPOINT_VERSION, MIN_CHECKPOINT_VERSION};
use pauli_codesign::resilience::{decode_scf, encode_scf, Checkpoint, CheckpointError};

const V1_FIXTURE: &[u8] = include_bytes!("fixtures/checkpoint-v1.ckpt");

#[test]
fn committed_v1_fixture_decodes_through_migration() {
    let ck = Checkpoint::from_bytes(V1_FIXTURE).expect("v1 fixture parses");
    assert_eq!(ck.kind, "scf");
    assert_eq!(ck.job, None, "v1 has no job tag");
    let state = decode_scf(&ck).expect("migrated v1 payload decodes as SCF state");
    assert_eq!(state.next_iteration, 3);
    assert_eq!(state.energy.to_bits(), 0xbff1_8cde_3df2_0c12);
    assert_eq!(state.fock.rows(), 2);
    assert_eq!(state.fock.cols(), 2);
    assert!(state.fock_history.is_empty());
}

#[test]
fn v1_fixture_reencodes_at_the_current_version() {
    // Migration is decode-time only; anything written back is current.
    let ck = Checkpoint::from_bytes(V1_FIXTURE).expect("v1 fixture parses");
    let state = decode_scf(&ck).expect("decodes");
    let fresh = encode_scf(&state).to_bytes();
    let header = String::from_utf8_lossy(&fresh);
    let header = header.lines().next().unwrap_or("");
    assert!(
        header.contains(&format!("\"version\":{CHECKPOINT_VERSION}")),
        "rewritten header: {header}"
    );
    let reread = Checkpoint::from_bytes(&fresh).expect("rewritten checkpoint parses");
    let state2 = decode_scf(&reread).expect("decodes again");
    assert_eq!(state2.energy.to_bits(), state.energy.to_bits());
}

#[test]
fn job_tag_survives_a_disk_round_trip() {
    let ck = Checkpoint::from_bytes(V1_FIXTURE).expect("v1 fixture parses");
    let state = decode_scf(&ck).expect("decodes");
    let tagged = encode_scf(&state).with_job("h2-3");
    let bytes = tagged.to_bytes();
    let back = Checkpoint::from_bytes(&bytes).expect("tagged checkpoint parses");
    assert_eq!(back.job.as_deref(), Some("h2-3"));
    assert!(
        decode_scf(&back).is_ok(),
        "payload decoding ignores the tag"
    );
}

#[test]
fn versions_outside_the_supported_range_are_rejected() {
    let ck = Checkpoint::from_bytes(V1_FIXTURE).expect("v1 fixture parses");
    for bad in [MIN_CHECKPOINT_VERSION - 1, CHECKPOINT_VERSION + 1] {
        match migrate(bad, ck.clone()) {
            Err(CheckpointError::VersionMismatch { expected, found }) => {
                assert_eq!(expected, CHECKPOINT_VERSION);
                assert_eq!(found, bad);
            }
            other => panic!("version {bad}: expected VersionMismatch, got {other:?}"),
        }
    }
    // In-range versions pass through unchanged in content.
    for good in MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION {
        let migrated = migrate(good, ck.clone()).expect("in-range version migrates");
        assert_eq!(migrated.payload, ck.payload);
    }
}
