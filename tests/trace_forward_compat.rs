//! Forward compatibility of the trace reader: a JSONL trace written by a
//! *newer* binary may contain record `type`s this build has never heard
//! of. `obs::parse_jsonl` must skip them (and `parse_jsonl_stats` must
//! count them) rather than erroring, so an old `pcd report` can still
//! aggregate the records it does understand. The fixture mixes current
//! record types with three invented future ones.

use obs::Record;

const FIXTURE: &str = include_str!("fixtures/trace-v2-mixed.jsonl");

#[test]
fn mixed_version_trace_parses_and_counts_unknown_types() {
    let parsed = obs::parse_jsonl_stats(FIXTURE).expect("mixed trace parses");
    assert_eq!(
        parsed.skipped_unknown, 3,
        "progress_v3, flight_index, and gauge lines are skipped"
    );
    let names: Vec<&str> = parsed.records.iter().map(Record::name).collect();
    assert_eq!(
        names,
        [
            "pipeline.run",
            "pipeline.vqe",
            "resilience.fault",
            "resilience.retries",
            "vqe.energy",
            "supervisor.progress.stage",
        ],
        "known records survive in file order"
    );
    // The skipped lines lose no known data: the span parent chain and the
    // histogram statistics parse exactly.
    let Record::Span(vqe) = &parsed.records[1] else {
        panic!("second record is the vqe span");
    };
    assert_eq!(vqe.parent.as_deref(), Some("pipeline.run"));
    let Record::Histogram { stats, .. } = &parsed.records[4] else {
        panic!("fifth record is the histogram");
    };
    assert_eq!(stats.count, 12);
    assert_eq!(stats.p99, -0.92);
}

#[test]
fn legacy_entry_point_agrees_with_the_counting_one() {
    let records = obs::parse_jsonl(FIXTURE).expect("legacy entry point parses");
    let parsed = obs::parse_jsonl_stats(FIXTURE).expect("counting entry point parses");
    assert_eq!(records, parsed.records);
}

#[test]
fn malformed_lines_still_error() {
    // Forward compatibility is for *well-formed* lines of unknown type;
    // garbage must still be reported, with its line number.
    let err = obs::parse_jsonl_stats("{\"type\":\"future_thing\"}\nnot json")
        .expect_err("garbage errors");
    assert!(err.contains("line 2"), "{err}");
    // A line with a non-string type is malformed, not future-versioned.
    let err =
        obs::parse_jsonl_stats("{\"type\":42,\"name\":\"x\"}").expect_err("numeric type errors");
    assert!(err.contains("line 1"), "{err}");
}

#[test]
fn report_classifier_reports_the_skip_count() {
    let artifact = pauli_codesign::report::classify(FIXTURE).expect("classifies as a trace");
    let mut builder = pauli_codesign::report::ReportBuilder::new();
    builder.add("trace-v2-mixed.jsonl", artifact);
    let report = builder.finish(&std::collections::BTreeMap::new(), 0.10);
    assert_eq!(report.skipped_unknown, 3);
    assert!(report
        .render()
        .contains("3 unknown-type trace line(s) skipped"));
}
