//! Regression test for the SCF retry-ladder accounting fix: when the
//! ladder recovers from an injected fault, the energy reported to obs
//! (the `resilience.scf.final_energy` histogram and the
//! `resilience.recovered` event) must be the *final converged* SCF
//! energy, not whatever the poisoned first attempt last saw.
//!
//! Lives in its own integration-test binary because obs state is a
//! process-wide global.

use pauli_codesign::chem::scf::ScfOptions;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::resilience::{build_system_with_recovery, FaultPlan};

#[test]
fn recovered_scf_reports_the_final_converged_energy() {
    obs::enable();

    // Rate 1.0 injects every chemistry fault, so the first attempt is
    // guaranteed to fail and the ladder must fire.
    let mut plan = FaultPlan::new(9, 1.0);
    let (system, retries) =
        build_system_with_recovery(Benchmark::H2, 0.74, ScfOptions::default(), &mut plan)
            .expect("ladder recovers H2");
    assert!(retries > 0, "rate-1.0 plan must force at least one retry");

    let converged = system.hartree_fock_energy();
    assert!(
        converged.is_finite() && converged < -1.0,
        "recovered H2 SCF energy is physical: {converged}"
    );

    let snap = obs::snapshot();
    let hist = snap
        .histograms
        .get("resilience.scf.final_energy")
        .expect("recovery records the final-energy histogram");
    // The streaming histogram keeps the last recorded value exactly.
    let reported = hist.last().expect("at least one sample");
    assert_eq!(
        reported.to_bits(),
        converged.to_bits(),
        "obs must see the converged energy ({converged}), not a \
         pre-retry value ({reported})"
    );

    // The recovered event carries the same energy, so a trace reader and
    // the metrics pipeline agree.
    let recovered: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "resilience.recovered")
        .collect();
    assert!(!recovered.is_empty(), "a recovery event was emitted");
    let has_energy_field = recovered.iter().any(|e| {
        matches!(e.field("energy"), Some(obs::Value::Float(f)) if f.to_bits() == converged.to_bits())
    });
    assert!(
        has_energy_field,
        "resilience.recovered event carries the converged energy"
    );
}
