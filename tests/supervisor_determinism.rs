//! Supervisor determinism, property-tested: for a fixed batch seed, the
//! per-job records — terminal states, energies (bit-for-bit), retry
//! counts — are identical at 1, 2, and 4 workers, even while panics,
//! hangs, and transient faults are being injected at the worker boundary
//! and numerical faults inside the pipeline stages.

use pauli_codesign::chem::Benchmark;
use pauli_codesign::supervisor::{run_batch, InjectionPlan, JobSpec, Lane, SupervisorConfig};
use proptest::prelude::*;

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("h2-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.62 + 0.06 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

fn chaos_config(seed: u64, fault_rate: f64, workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        workers,
        batch_seed: seed,
        max_retries: 3,
        slice_ticks: 2,
        max_slices: 64,
        breaker_threshold: 3,
        pipeline_fault_rate: fault_rate * 0.5,
        injection: InjectionPlan::chaos(fault_rate),
        ..SupervisorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn records_and_retry_counts_are_worker_count_invariant(
        seed in 0u64..1_000_000,
        fault_rate in 0.0f64..0.5,
    ) {
        let jobs = jobs(4);
        let base = run_batch(&jobs, &chaos_config(seed, fault_rate, 1))
            .expect("supervised batch runs");
        prop_assert!(base.records.iter().all(|r| r.state.is_terminal()));
        // Every job lands in exactly one terminal state.
        prop_assert_eq!(base.done() + base.quarantined() + base.shed(), jobs.len());
        for workers in [2usize, 4] {
            let other = run_batch(&jobs, &chaos_config(seed, fault_rate, workers))
                .expect("supervised batch runs");
            // Full bitwise record equality: states, energy bits, retry
            // counts, backoff totals.
            prop_assert_eq!(&base.records, &other.records);
        }
    }
}

#[test]
fn faulty_batch_still_terminates_every_job() {
    let jobs = jobs(6);
    let report = run_batch(&jobs, &chaos_config(9, 0.4, 4)).expect("batch runs");
    assert_eq!(report.records.len(), 6);
    assert!(report.records.iter().all(|r| r.state.is_terminal()));
    // At a 40% injection rate something must have gone wrong somewhere —
    // the point is that it was *contained*, not that it didn't happen.
    assert!(
        report.records.iter().any(|r| r.retries > 0) || report.quarantined() > 0,
        "expected at least one retry or quarantine at fault rate 0.4"
    );
}

/// Priority lanes reorder *scheduling*, never *results*: a batch mixing
/// fast-lane (H2) and slow-lane (NaH) jobs produces bit-identical records
/// at every worker count, even though the fast lane drains first and the
/// interleaving of lanes across workers differs run to run.
#[test]
fn mixed_lane_batch_is_worker_count_invariant() {
    let jobs = vec![
        JobSpec {
            id: "nah-long".to_string(),
            benchmark: Benchmark::NaH,
            bond: None,
            ratio: 0.2,
        },
        JobSpec {
            id: "h2-short-a".to_string(),
            benchmark: Benchmark::H2,
            bond: Some(0.70),
            ratio: 1.0,
        },
        JobSpec {
            id: "h2-short-b".to_string(),
            benchmark: Benchmark::H2,
            bond: Some(0.74),
            ratio: 1.0,
        },
    ];
    assert_eq!(jobs[0].lane(), Lane::Slow, "NaH is a long VQE run");
    assert_eq!(jobs[1].lane(), Lane::Fast, "H2 is a short job");
    let base = run_batch(&jobs, &chaos_config(13, 0.0, 1)).expect("batch runs");
    assert!(base.records.iter().all(|r| r.state.is_terminal()));
    for workers in [2usize, 3] {
        let other = run_batch(&jobs, &chaos_config(13, 0.0, workers)).expect("batch runs");
        assert_eq!(
            base.records, other.records,
            "lane scheduling must be invisible at {workers} workers"
        );
    }
}

#[test]
fn clean_batch_energies_match_between_reruns() {
    let jobs = jobs(3);
    let a = run_batch(&jobs, &chaos_config(7, 0.0, 2)).expect("batch runs");
    let b = run_batch(&jobs, &chaos_config(7, 0.0, 3)).expect("batch runs");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let (ea, eb) = (ra.energy().expect("done"), rb.energy().expect("done"));
        assert_eq!(ea.to_bits(), eb.to_bits(), "job {} energy bits", ra.index);
    }
}
