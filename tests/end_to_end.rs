//! End-to-end integration tests spanning the whole stack:
//! chemistry → ansatz → compression → VQE → compilation → simulation.

use pauli_codesign::ansatz::compress;
use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::arch::Topology;
use pauli_codesign::chem::Benchmark;
use pauli_codesign::compiler::layout::hierarchical_initial_layout;
use pauli_codesign::compiler::mtr::{merge_to_root, MtrOptions};
use pauli_codesign::numeric::Complex64;
use pauli_codesign::sim::Statevector;
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};
use pauli_codesign::CoDesignPipeline;

/// H2 full-UCCSD VQE recovers the FCI energy to well below chemical
/// accuracy (1.6 mHa).
#[test]
fn h2_vqe_reaches_fci() {
    let system = Benchmark::H2.build(0.7414).expect("H2 chemistry");
    let ir = UccsdAnsatz::for_system(&system).into_ir();
    let result = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
    let exact = system.exact_ground_state_energy();
    assert!(
        (result.energy - exact).abs() < 1e-7,
        "VQE {} vs exact {exact}",
        result.energy
    );
    // Literature: E_FCI(H2/STO-3G @ 0.7414 Å) ≈ −1.1373 Ha.
    assert!((exact + 1.1373).abs() < 2e-3, "exact {exact}");
}

/// The compressed LiH ansatz at the paper's 50% sweet spot loses well under
/// 1 mHa while using half the parameters and converging in fewer
/// iterations.
#[test]
fn lih_compression_tradeoff() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let h = system.qubit_hamiltonian();

    let full_run = run_vqe(h, &full, VqeOptions::default()).unwrap();
    let (half_ir, report) = compress(&full, h, 0.5);
    let half_run = run_vqe(h, &half_ir, VqeOptions::default()).unwrap();

    assert_eq!(report.kept_parameters, 4);
    assert!(half_run.iterations <= full_run.iterations);
    assert!(
        (half_run.energy - full_run.energy).abs() < 1e-3,
        "full {} vs half {}",
        full_run.energy,
        half_run.energy
    );
}

/// VQE is variational: every traced energy lies at or above the exact
/// ground state, for every compression ratio.
#[test]
fn vqe_traces_are_variational() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let exact = system.exact_ground_state_energy();
    let full = UccsdAnsatz::for_system(&system).into_ir();
    for ratio in [0.1, 0.5, 0.9] {
        let (ir, _) = compress(&full, system.qubit_hamiltonian(), ratio);
        let run = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
        for &e in &run.trace {
            assert!(e >= exact - 1e-9, "trace dipped below exact: {e} < {exact}");
        }
    }
}

/// The compiled X-Tree circuit for optimized LiH parameters produces the
/// same energy as the abstract statevector path: compilation preserves
/// semantics all the way to the observable.
#[test]
fn compiled_circuit_reproduces_vqe_energy() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let h = system.qubit_hamiltonian();
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (ir, _) = compress(&full, h, 0.5);
    let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();

    let topology = Topology::xtree(8);
    let layout = hierarchical_initial_layout(&ir, &topology);
    let out = merge_to_root(&ir, &topology, layout, &run.params, MtrOptions::default());

    // Simulate the physical circuit and evaluate H through the final layout.
    let mut phys = Statevector::zero_state(topology.num_qubits());
    phys.apply_circuit(&out.circuit);
    let n = ir.num_qubits();
    let mut logical_amps = vec![Complex64::ZERO; 1 << n];
    for (pi, amp) in phys.amplitudes().iter().enumerate() {
        if amp.norm_sqr() < 1e-24 {
            continue;
        }
        let mut li = 0u64;
        for p in 0..topology.num_qubits() {
            if (pi >> p) & 1 == 1 {
                li |= 1 << out.final_layout.logical(p).expect("ancilla must stay |0⟩");
            }
        }
        logical_amps[li as usize] += *amp;
    }
    let compiled_energy = h.expectation(&logical_amps);
    assert!(
        (compiled_energy - run.energy).abs() < 1e-8,
        "compiled {compiled_energy} vs abstract {}",
        run.energy
    );
}

/// Dynamics path: a Trotterized Hubbard evolution compiled with
/// Merge-to-Root is bit-exact against the abstract IR evolution, and the
/// IR tracks exact evolution within the Trotter error.
#[test]
fn trotterized_dynamics_compile_and_simulate() {
    use pauli_codesign::ansatz::trotter::{trotterize, TrotterOrder};
    use pauli_codesign::chem::hubbard::HubbardModel;

    let model = HubbardModel::chain(2, 1.0, 3.0);
    let h = model.qubit_hamiltonian();
    let init = model.half_filling_state();
    let ir = trotterize(&h, 0.8, 12, TrotterOrder::Second, init);

    // Abstract evolution.
    let abstract_state = pauli_codesign::vqe::state::prepare_state(&ir, &[1.0]);

    // Exact evolution: Trotter fidelity must be high at 12 steps.
    let mut exact = vec![Complex64::ZERO; 16];
    exact[init as usize] = Complex64::ONE;
    h.evolve_exact(0.8, &mut exact);
    let trotter_fid: f64 = exact
        .iter()
        .zip(abstract_state.amplitudes())
        .map(|(a, b)| a.conj() * *b)
        .sum::<Complex64>()
        .norm_sqr();
    assert!(trotter_fid > 1.0 - 1e-4, "Trotter fidelity {trotter_fid}");

    // Compiled evolution through Merge-to-Root on an X-Tree.
    let topology = Topology::xtree(5);
    let layout = hierarchical_initial_layout(&ir, &topology);
    let out = merge_to_root(&ir, &topology, layout, &[1.0], MtrOptions::default());
    let mut phys = Statevector::zero_state(5);
    phys.apply_circuit(&out.circuit);
    let mut extracted = vec![Complex64::ZERO; 16];
    for (pi, amp) in phys.amplitudes().iter().enumerate() {
        if amp.norm_sqr() < 1e-24 {
            continue;
        }
        let mut li = 0u64;
        for p in 0..5 {
            if (pi >> p) & 1 == 1 {
                li |= 1 << out.final_layout.logical(p).expect("ancilla stays |0⟩");
            }
        }
        extracted[li as usize] += *amp;
    }
    let overlap: Complex64 = abstract_state
        .amplitudes()
        .iter()
        .zip(&extracted)
        .map(|(a, b)| a.conj() * *b)
        .sum();
    assert!(
        (overlap.norm() - 1.0).abs() < 1e-9,
        "compiled dynamics diverges: |overlap| = {}",
        overlap.norm()
    );
}

/// The facade pipeline agrees with assembling the stages by hand.
#[test]
fn pipeline_facade_consistency() {
    let report = CoDesignPipeline::new(Benchmark::H2)
        .bond_length(0.74)
        .compression_ratio(1.0)
        .run()
        .expect("pipeline");
    let system = Benchmark::H2.build(0.74).expect("chemistry");
    let ir = UccsdAnsatz::for_system(&system).into_ir();
    let manual = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
    assert!((report.energy - manual.energy).abs() < 1e-10);
    assert_eq!(report.iterations, manual.iterations);
}

/// The UCCSD ansatz conserves particle number and spin projection, and the
/// converged H2 ground state is a singlet eigenstate (zero energy
/// variance, fractional natural occupations showing correlation).
#[test]
fn vqe_state_symmetries_and_diagnostics() {
    use pauli_codesign::chem::analysis::{
        natural_occupations, number_operator, one_rdm, spin_squared_operator, spin_z_operator,
    };
    let system = Benchmark::H2.build(0.74).expect("H2 chemistry");
    let h = system.qubit_hamiltonian();
    let ir = UccsdAnsatz::for_system(&system).into_ir();
    let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();
    let psi = pauli_codesign::vqe::state::prepare_state(&ir, &run.params);
    let amps = psi.amplitudes();

    let n = system.num_qubits();
    assert!((number_operator(n).expectation(amps) - 2.0).abs() < 1e-10);
    assert!(spin_z_operator(n).expectation(amps).abs() < 1e-10);
    assert!(
        spin_squared_operator(n).expectation(amps).abs() < 1e-8,
        "singlet expected"
    );
    // Eigenstate witness: variance ≈ 0 at the optimum.
    assert!(h.variance(amps) < 1e-10, "variance {}", h.variance(amps));
    // Correlation shows up as fractional natural occupations.
    let occ = natural_occupations(&one_rdm(n, amps));
    assert!(occ[0] < 1.0 - 1e-4 && occ[0] > 0.9, "occupations {occ:?}");
}

/// NaH builds through the full stack (frozen Na core + removed virtual) and
/// the Hartree-Fock state matches the SCF energy through the qubit
/// Hamiltonian.
#[test]
fn nah_active_space_is_consistent() {
    let system = Benchmark::NaH.build(1.89).expect("NaH chemistry");
    assert_eq!(system.num_qubits(), 8);
    let dim = 1usize << 8;
    let mut amps = vec![Complex64::ZERO; dim];
    amps[system.hartree_fock_state() as usize] = Complex64::ONE;
    let e_hf_qubit = system.qubit_hamiltonian().expectation(&amps);
    assert!(
        (e_hf_qubit - system.hartree_fock_energy()).abs() < 1e-7,
        "qubit-side HF {} vs SCF {}",
        e_hf_qubit,
        system.hartree_fock_energy()
    );
    // Correlation exists and VQE captures most of it even at 50%.
    let (ir, _) = compress(
        &UccsdAnsatz::for_system(&system).into_ir(),
        system.qubit_hamiltonian(),
        0.5,
    );
    let run = run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).unwrap();
    assert!(run.energy < system.hartree_fock_energy());
}
