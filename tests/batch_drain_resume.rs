//! Graceful-drain integration tests, end to end through the on-disk
//! manifest: a batch drained mid-flight (checkpoints + manifest written
//! through the v2 container) and resumed must finish bit-identically to
//! an uninterrupted batch — including while faults are injected.

use pauli_codesign::chem::Benchmark;
use pauli_codesign::resilience::checkpoint::CHECKPOINT_VERSION;
use pauli_codesign::resilience::Checkpoint;
use pauli_codesign::supervisor::{
    decode_manifest, run_batch, run_batch_resumed, InjectionPlan, JobSpec, JobState,
    SupervisorConfig,
};

/// A scratch directory for one test's checkpoint files, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pcd-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self, file: &str) -> std::path::PathBuf {
        self.0.join(file)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("h2-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.66 + 0.04 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

fn config(seed: u64, fault_rate: f64) -> SupervisorConfig {
    SupervisorConfig {
        workers: 2,
        batch_seed: seed,
        slice_ticks: 2,
        pipeline_fault_rate: fault_rate * 0.5,
        injection: InjectionPlan::chaos(fault_rate),
        ..SupervisorConfig::default()
    }
}

/// Drains a batch repeatedly (every `drain_ticks` slices), resuming from
/// the manifest each round, until every job is terminal. Returns the
/// final records.
fn run_through_drains(
    jobs: &[JobSpec],
    base: &SupervisorConfig,
    scratch: &ScratchDir,
    drain_ticks: u64,
) -> Vec<pauli_codesign::supervisor::JobRecord> {
    let mut prior: Option<Vec<pauli_codesign::supervisor::JobRecord>> = None;
    for _round in 0..50 {
        let cfg = SupervisorConfig {
            drain_after_ticks: Some(drain_ticks),
            ckpt_dir: Some(scratch.0.clone()),
            ..base.clone()
        };
        let report = run_batch_resumed(jobs, &cfg, prior.as_deref()).expect("batch runs");
        if report.pending() == 0 {
            return report.records;
        }
        // Round-trip through the on-disk manifest, exactly like
        // `pcd batch --resume` would.
        let ck = Checkpoint::read(scratch.path("batch.manifest")).expect("manifest readable");
        let (meta, records) = decode_manifest(&ck).expect("manifest decodes");
        assert_eq!(meta.batch_seed, base.batch_seed);
        assert_eq!(meta.jobs, jobs.len());
        prior = Some(records);
    }
    panic!("batch did not finish within 50 drain rounds");
}

#[test]
fn drained_batch_resumes_bit_identically() {
    let jobs = jobs(4);
    let base = config(21, 0.0);
    let uninterrupted = run_batch(&jobs, &base).expect("batch runs");

    let scratch = ScratchDir::new("drain-clean");
    let drained = run_through_drains(&jobs, &base, &scratch, 3);
    assert_eq!(
        drained, uninterrupted.records,
        "drain/resume must be invisible in the records"
    );
}

#[test]
fn drained_batch_resumes_bit_identically_under_faults() {
    let jobs = jobs(5);
    let base = config(1234, 0.3);
    let uninterrupted = run_batch(&jobs, &base).expect("batch runs");

    let scratch = ScratchDir::new("drain-faulty");
    let drained = run_through_drains(&jobs, &base, &scratch, 4);
    assert_eq!(
        drained, uninterrupted.records,
        "drain/resume must be invisible even with injected faults"
    );
}

#[test]
fn manifest_and_job_checkpoints_use_the_v2_container() {
    let jobs = jobs(3);
    let scratch = ScratchDir::new("drain-format");
    let cfg = SupervisorConfig {
        drain_after_ticks: Some(2),
        ckpt_dir: Some(scratch.0.clone()),
        ..config(5, 0.0)
    };
    let report = run_batch(&jobs, &cfg).expect("batch runs");
    assert!(
        report.pending() > 0,
        "a 2-tick drain must leave pending jobs"
    );

    let manifest_bytes = std::fs::read(scratch.path("batch.manifest")).expect("manifest exists");
    let text = String::from_utf8(manifest_bytes).expect("manifest is UTF-8");
    assert!(
        text.starts_with(&format!(
            "{{\"kind\":\"batch-manifest\",\"lines\":{},\"magic\":\"pcd-ckpt\",\"version\":{CHECKPOINT_VERSION}}}",
            jobs.len() + 1
        )),
        "manifest header: {}",
        text.lines().next().unwrap_or("")
    );

    // Any per-job VQE checkpoint the drain persisted must carry the v2
    // job tag naming the job it belongs to.
    let (_, records) =
        decode_manifest(&Checkpoint::read(scratch.path("batch.manifest")).expect("manifest reads"))
            .expect("manifest decodes");
    for record in &records {
        if let JobState::Pending {
            checkpoint: Some(name),
            ..
        } = &record.state
        {
            let ck = Checkpoint::read(scratch.path(name)).expect("job checkpoint reads");
            assert_eq!(ck.job.as_deref(), Some(record.id.as_str()));
        }
    }
}

#[test]
fn resume_without_checkpoints_still_converges_to_the_same_records() {
    // Deleting every per-job checkpoint between drain and resume loses
    // in-flight optimizer state but not correctness: determinism restarts
    // the interrupted attempts and lands on the same records.
    let jobs = jobs(4);
    let base = config(77, 0.2);
    let uninterrupted = run_batch(&jobs, &base).expect("batch runs");

    let scratch = ScratchDir::new("drain-lost-ckpt");
    let cfg = SupervisorConfig {
        drain_after_ticks: Some(3),
        ckpt_dir: Some(scratch.0.clone()),
        ..base.clone()
    };
    let drained = run_batch(&jobs, &cfg).expect("batch runs");
    if drained.pending() == 0 {
        return; // nothing was interrupted; trivially equal
    }
    let (_, prior) =
        decode_manifest(&Checkpoint::read(scratch.path("batch.manifest")).expect("manifest reads"))
            .expect("manifest decodes");
    for entry in std::fs::read_dir(&scratch.0).expect("scratch listable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            std::fs::remove_file(path).expect("remove job checkpoint");
        }
    }
    let resumed = run_batch_resumed(
        &jobs,
        &SupervisorConfig {
            ckpt_dir: Some(scratch.0.clone()),
            ..base.clone()
        },
        Some(&prior),
    )
    .expect("resume runs");
    assert_eq!(resumed.records, uninterrupted.records);
}
