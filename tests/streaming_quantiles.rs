//! Property tests for the streaming quantile estimator (`obs::stream`).
//!
//! The documented contract: `count`/`min`/`max` are exact, and quantile
//! estimates stay within the [`ALPHA`] *relative* error bound of the
//! exact nearest-rank quantiles ([`obs::exact_stats_of`], the same rank
//! convention). The distributions here are chosen to be adversarial for
//! bucketed estimators: constant (all mass in one bucket), bimodal (two
//! spikes far apart, quantiles jump between them), and heavy-tailed
//! (nine decades of dynamic range).

use obs::stream::ALPHA;
use obs::{exact_stats_of, StreamingHistogram};
use proptest::prelude::*;

/// One violation message, or `None` when every estimate is in bound.
fn check_bound(samples: &[f64]) -> Option<String> {
    let mut hist = StreamingHistogram::new();
    for &s in samples {
        hist.record(s);
    }
    let est = hist.stats().expect("non-empty");
    let exact = exact_stats_of(samples).expect("non-empty");

    if est.count != exact.count {
        return Some(format!("count {} != exact {}", est.count, exact.count));
    }
    if est.min != exact.min || est.max != exact.max {
        return Some(format!(
            "min/max ({}, {}) != exact ({}, {})",
            est.min, est.max, exact.min, exact.max
        ));
    }
    for (name, got, want) in [
        ("p50", est.p50, exact.p50),
        ("p90", est.p90, exact.p90),
        ("p99", est.p99, exact.p99),
    ] {
        if (got - want).abs() > ALPHA * want.abs() + 1e-9 {
            return Some(format!(
                "{name}: estimate {got} vs exact {want} breaks the {ALPHA} relative bound \
                 over {} samples",
                samples.len()
            ));
        }
    }
    None
}

fn constant() -> impl Strategy<Value = Vec<f64>> {
    ((1e-3f64..1e6), 1usize..300).prop_map(|(v, n)| vec![v; n])
}

fn bimodal() -> impl Strategy<Value = Vec<f64>> {
    (
        (0.5f64..5.0),
        (1e3f64..1e5),
        prop::collection::vec(prop_oneof![Just(false), Just(true)], 10..300),
    )
        .prop_map(|(lo, hi, picks)| {
            picks
                .into_iter()
                .map(|high| if high { hi } else { lo })
                .collect()
        })
}

fn heavy_tailed() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..6.0, 10..300)
        .prop_map(|exponents| exponents.into_iter().map(|e| 10f64.powf(e)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constant_distribution_stays_in_bound(samples in constant()) {
        let violation = check_bound(&samples);
        prop_assert!(violation.is_none(), "{}", violation.unwrap_or_default());
    }

    #[test]
    fn bimodal_distribution_stays_in_bound(samples in bimodal()) {
        let violation = check_bound(&samples);
        prop_assert!(violation.is_none(), "{}", violation.unwrap_or_default());
    }

    #[test]
    fn heavy_tailed_distribution_stays_in_bound(samples in heavy_tailed()) {
        let violation = check_bound(&samples);
        prop_assert!(violation.is_none(), "{}", violation.unwrap_or_default());
    }

    /// Merging shards must agree with recording the concatenation — the
    /// property `pcd report` relies on when folding many jobs together.
    #[test]
    fn merge_agrees_with_concatenation(a in heavy_tailed(), b in bimodal()) {
        let mut merged = StreamingHistogram::new();
        for &s in &a {
            merged.record(s);
        }
        let mut other = StreamingHistogram::new();
        for &s in &b {
            other.record(s);
        }
        merged.merge(&other);

        let mut single = StreamingHistogram::new();
        for &s in a.iter().chain(&b) {
            single.record(s);
        }
        let m = merged.stats().expect("non-empty");
        let s = single.stats().expect("non-empty");
        prop_assert_eq!(m.count, s.count);
        prop_assert_eq!(m.min, s.min);
        prop_assert_eq!(m.max, s.max);
        prop_assert_eq!(m.p50, s.p50);
        prop_assert_eq!(m.p99, s.p99);
    }

    /// Memory stays bounded by the bucket universe, not the sample count:
    /// the whole point of replacing the raw `Vec<f64>`.
    #[test]
    fn bucket_count_is_independent_of_sample_count(samples in heavy_tailed()) {
        let mut small = StreamingHistogram::new();
        for &s in &samples {
            small.record(s);
        }
        let mut large = StreamingHistogram::new();
        for _ in 0..50 {
            for &s in &samples {
                large.record(s);
            }
        }
        prop_assert_eq!(large.bucket_count(), small.bucket_count());
        prop_assert_eq!(large.count(), 50 * small.count());
    }
}
