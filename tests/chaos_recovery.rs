//! Integration test: the full H2 pipeline under a 10%-fault chaos plan
//! completes every trial via retries and fallbacks, and the obs trace
//! records every injected fault and every recovery action.
//!
//! This lives in its own test binary so enabling the process-global obs
//! registry cannot interfere with other tests.

use std::sync::Mutex;

use pauli_codesign::resilience::{run_chaos, ChaosOptions, FaultKind, FaultPlan};

/// The obs registry is process-global; serialize the tests in this binary.
static GATE: Mutex<()> = Mutex::new(());

#[test]
fn h2_pipeline_survives_ten_percent_faults_with_full_obs_audit() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let report = run_chaos(&ChaosOptions {
        seed: 42,
        fault_rate: 0.1,
        trials: 40,
        ..Default::default()
    });
    obs::disable();
    let snap = obs::snapshot();

    // Every trial completed, with faults actually injected and at least
    // one recovery from each policy class.
    assert!(report.survived(), "failures: {}", report.failures);
    assert!(report.faults_injected > 0, "plan injected nothing at 10%");
    assert!(
        report.all_policy_classes_recovered(),
        "recovered_by_class: {:?}",
        report.recovered_by_class
    );

    // The obs counter agrees with the report's injection count.
    let injected_counter = snap
        .counters
        .get("resilience.faults_injected")
        .copied()
        .unwrap_or(0);
    assert_eq!(injected_counter as usize, report.faults_injected);

    // Every injected fault has a `resilience.fault` event naming its site.
    let fault_events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "resilience.fault")
        .collect();
    assert_eq!(fault_events.len(), report.faults_injected);
    let event_sites: Vec<&str> = fault_events
        .iter()
        .map(|e| {
            e.fields
                .iter()
                .find(|(k, _)| k == "site")
                .and_then(|(_, v)| match v {
                    obs::Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .expect("fault event has a site field")
        })
        .collect();
    let report_sites: Vec<&str> = report
        .outcomes
        .iter()
        .flat_map(|o| o.faults.iter().map(|k| k.site()))
        .collect();
    assert_eq!(event_sites, report_sites, "trace sites mismatch report");

    // Every retry/fallback shows up as a `resilience.recovery` event, and
    // the counters agree with the per-trial bookkeeping.
    let recovery_events = snap
        .events
        .iter()
        .filter(|e| e.name == "resilience.recovery")
        .count();
    assert!(recovery_events > 0, "no recovery events recorded");
    let retries_counter = snap
        .counters
        .get("resilience.retries")
        .copied()
        .unwrap_or(0);
    let fallbacks_counter = snap
        .counters
        .get("resilience.fallbacks")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        recovery_events as u64,
        retries_counter + fallbacks_counter,
        "every retry and fallback must emit exactly one recovery event"
    );
    let reported_fallbacks = report.outcomes.iter().filter(|o| o.sabre_fallback).count() as u64;
    assert_eq!(fallbacks_counter, reported_fallbacks);

    // Trials that completed despite faults had recoveries recorded: each
    // fault class that fired somewhere has a matching recovered event.
    let recovered_events = snap
        .events
        .iter()
        .filter(|e| e.name == "resilience.recovered")
        .count();
    assert!(recovered_events > 0, "no recovered events in the trace");

    // Energies of completed trials are physical (H2 ground state region).
    for outcome in &report.outcomes {
        let e = outcome.energy.expect("every trial completed");
        assert!(
            (-1.20..=-1.05).contains(&e),
            "trial {} energy {e} out of range",
            outcome.trial
        );
    }
}

#[test]
fn chaos_replay_is_deterministic_across_runs() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    let opts = ChaosOptions {
        seed: 7,
        fault_rate: 0.2,
        trials: 8,
        ..Default::default()
    };
    let a = run_chaos(&opts);
    let b = run_chaos(&opts);
    assert_eq!(a, b, "same seed must replay the identical chaos run");
}

#[test]
fn fault_plan_obs_events_match_injections() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let mut plan = FaultPlan::new(11, 1.0);
    for kind in FaultKind::ALL {
        assert!(plan.should_inject(kind));
    }
    obs::disable();
    let snap = obs::snapshot();
    assert_eq!(
        snap.counters.get("resilience.faults_injected").copied(),
        Some(FaultKind::ALL.len() as u64)
    );
    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.name == "resilience.fault")
            .count(),
        FaultKind::ALL.len()
    );
}
