//! Integration test: the instrumented `CoDesignPipeline::run()` must emit
//! spans for every stage with sane timings, and the compiler metrics
//! recorded in the trace must agree with the `CompiledProgram` bookkeeping.
//!
//! This lives in its own test binary so enabling the process-global obs
//! registry cannot interfere with other tests.

use std::sync::Mutex;

use pauli_codesign::chem::Benchmark;
use pauli_codesign::CoDesignPipeline;

/// The obs registry is process-global; serialize the tests in this binary.
static GATE: Mutex<()> = Mutex::new(());

#[test]
fn pipeline_run_emits_spans_for_every_stage() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let report = CoDesignPipeline::new(Benchmark::H2)
        .compression_ratio(1.0)
        .run()
        .expect("H2 pipeline");
    obs::disable();
    let snap = obs::snapshot();

    // Every stage of the chem → ansatz → compiler → VQE stack shows up.
    for stage in [
        "pipeline.run",
        "pipeline.chemistry",
        "pipeline.ansatz",
        "pipeline.vqe",
        "pipeline.measure",
        "pipeline.compile",
        "chem.scf",
        "chem.encode",
        "ansatz.importance",
        "ansatz.compress",
        "compiler.layout.hierarchical",
        "compiler.mtr",
        "compiler.mtr.merge",
        "vqe.run",
    ] {
        let spans = snap.spans_named(stage);
        assert!(!spans.is_empty(), "no span recorded for stage `{stage}`");
        for s in &spans {
            assert!(
                s.duration_us >= 0.0 && s.duration_us.is_finite(),
                "span `{stage}` has bad duration {}",
                s.duration_us
            );
            assert!(s.start_us >= 0.0, "span `{stage}` starts before the epoch");
        }
    }

    // Stage spans are parented under the pipeline root.
    for stage in [
        "pipeline.chemistry",
        "pipeline.ansatz",
        "pipeline.vqe",
        "pipeline.compile",
    ] {
        assert_eq!(
            snap.span(stage).unwrap().parent.as_deref(),
            Some("pipeline.run"),
            "`{stage}` not parented under pipeline.run"
        );
    }

    // The MtR trace metrics agree with the CompiledProgram bookkeeping.
    let mtr = snap.span("compiler.mtr").expect("compiler.mtr span");
    let field = |key: &str| {
        mtr.field(key)
            .and_then(obs::Value::as_u64)
            .unwrap_or_else(|| panic!("compiler.mtr missing field `{key}`"))
    };
    assert_eq!(field("added_cnots"), report.compiled.added_cnots() as u64);
    assert_eq!(field("swaps"), report.compiled.swap_count() as u64);
    assert_eq!(field("total_cnots"), report.compiled.total_cnots() as u64);
    assert_eq!(
        field("original_cnots"),
        report.compiled.original_cnots() as u64
    );
    assert_eq!(
        snap.counter("compiler.mtr.swaps"),
        report.compiled.swap_count() as u64
    );
    assert_eq!(
        snap.counter("compiler.mtr.added_cnots"),
        report.compiled.added_cnots() as u64
    );

    // The VQE span reflects the optimizer run, and per-iteration events
    // carry the energy trace.
    let vqe = snap.span("vqe.run").expect("vqe.run span");
    assert_eq!(
        vqe.field("iterations").and_then(obs::Value::as_u64),
        Some(report.vqe.iterations as u64)
    );
    assert_eq!(
        vqe.field("evaluations").and_then(obs::Value::as_u64),
        Some(report.vqe.evaluations as u64)
    );
    let iters: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "vqe.iter")
        .collect();
    assert_eq!(iters.len(), report.vqe.trace.len());
    let last_energy = iters
        .last()
        .unwrap()
        .field("energy")
        .and_then(obs::Value::as_f64)
        .unwrap();
    assert!((last_energy - report.vqe.trace.last().unwrap()).abs() < 1e-12);

    // SCF produced per-iteration convergence events.
    let scf_iters = snap
        .events
        .iter()
        .filter(|e| e.name == "chem.scf.iter")
        .count();
    assert!(
        scf_iters >= 2,
        "expected multiple SCF iteration events, got {scf_iters}"
    );
    assert!(snap.counter("chem.scf.iterations") >= scf_iters as u64);

    // The whole trace survives a JSONL round trip.
    let jsonl = obs::export_snapshot_jsonl(&snap);
    let records = obs::parse_jsonl(&jsonl).expect("trace parses back");
    assert_eq!(
        records.len(),
        snap.spans.len() + snap.events.len() + snap.counters.len() + snap.histograms.len()
    );
}

#[test]
fn disabled_pipeline_records_nothing() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable();
    obs::reset();
    CoDesignPipeline::new(Benchmark::H2)
        .compression_ratio(1.0)
        .run()
        .expect("H2 pipeline");
    let snap = obs::snapshot();
    assert!(
        snap.spans.is_empty(),
        "disabled run recorded spans: {:?}",
        snap.spans.len()
    );
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}
