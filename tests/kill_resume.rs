//! Kill-and-resume integration tests: the durability layer's headline
//! guarantee, end to end through the *on-disk* checkpoint format.
//!
//! A run that is interrupted by a tight budget, persisted to a checkpoint
//! file (CRC trailer, hex-encoded floats, atomic rename), read back, and
//! resumed — possibly many times — must finish with results bit-identical
//! to a never-interrupted run. And because the `par` layer's decomposition
//! is thread-count-invariant, that must hold at 1 and 4 worker threads.

use pauli_codesign::ansatz::{compress, uccsd::UccsdAnsatz};
use pauli_codesign::arch::{
    simulate_yield, simulate_yield_resumable, CollisionModel, Topology, YieldRun,
};
use pauli_codesign::chem::Benchmark;
use pauli_codesign::par::{self, Budget};
use pauli_codesign::resilience::{decode_vqe, decode_yield, encode_vqe, encode_yield, Checkpoint};
use pauli_codesign::vqe::driver::{run_vqe, run_vqe_resumable, VqeOptions, VqeResult, VqeRun};

/// A scratch directory for one test's checkpoint files, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pcd-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self, file: &str) -> std::path::PathBuf {
        self.0.join(file)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs LiH VQE killed every `kill_every` optimizer iterations, with each
/// interruption round-tripped through a checkpoint file.
fn vqe_through_kills(kill_every: u64, ckpt: &std::path::Path) -> (VqeResult, usize) {
    let system = Benchmark::LiH
        .build(Benchmark::LiH.equilibrium_bond_length())
        .expect("LiH builds");
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (ir, _) = compress(&full, system.qubit_hamiltonian(), 0.5);
    let x0 = vec![0.0; ir.num_parameters()];
    let _ = std::fs::remove_file(ckpt);
    let mut kills = 0;
    let result = loop {
        let resume = ckpt.exists().then(|| {
            decode_vqe(&Checkpoint::read(ckpt).expect("read checkpoint")).expect("decode")
        });
        let budget = Budget::max_ticks(kill_every);
        match run_vqe_resumable(
            system.qubit_hamiltonian(),
            &ir,
            &x0,
            VqeOptions::default(),
            resume,
            &budget,
        )
        .expect("vqe runs")
        {
            VqeRun::Done(r) => break r,
            VqeRun::Interrupted(state) => {
                kills += 1;
                encode_vqe(&state).write(ckpt).expect("write checkpoint");
            }
        }
    };
    (result, kills)
}

#[test]
fn vqe_kill_and_resume_is_bit_identical_at_1_and_4_threads() {
    let scratch = ScratchDir::new("kill-resume-vqe");
    let system = Benchmark::LiH
        .build(Benchmark::LiH.equilibrium_bond_length())
        .expect("LiH builds");
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (ir, _) = compress(&full, system.qubit_hamiltonian(), 0.5);
    let baseline =
        run_vqe(system.qubit_hamiltonian(), &ir, VqeOptions::default()).expect("baseline");

    for threads in [1, 4] {
        let ckpt = scratch.path(&format!("vqe-{threads}.ckpt"));
        let (resumed, kills) = par::with_threads(threads, || vqe_through_kills(2, &ckpt));
        assert!(kills >= 1, "a 2-tick budget must actually interrupt");
        assert_eq!(
            resumed.energy.to_bits(),
            baseline.energy.to_bits(),
            "threads {threads}: {} vs {}",
            resumed.energy,
            baseline.energy
        );
        assert_eq!(resumed.iterations, baseline.iterations, "threads {threads}");
        for (i, (a, b)) in resumed.params.iter().zip(&baseline.params).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads {threads}: parameter {i} drifted"
            );
        }
        for (i, (a, b)) in resumed.trace.iter().zip(&baseline.trace).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads {threads}: trace entry {i} drifted"
            );
        }
    }
}

#[test]
fn yield_kill_and_resume_is_bit_identical_at_1_and_4_threads() {
    let scratch = ScratchDir::new("kill-resume-yield");
    let topology = Topology::xtree(17);
    let model = CollisionModel::default();
    let (sigma, samples, seed) = (0.04, 3_000, 17);
    let baseline = simulate_yield(&topology, &model, sigma, samples, seed);

    for threads in [1, 4] {
        let ckpt = scratch.path(&format!("yield-{threads}.ckpt"));
        let _ = std::fs::remove_file(&ckpt);
        let (resumed, kills) = par::with_threads(threads, || {
            let mut kills = 0;
            let estimate = loop {
                let resume = ckpt.exists().then(|| {
                    decode_yield(&Checkpoint::read(&ckpt).expect("read checkpoint"))
                        .expect("decode")
                });
                // One chunk wave per segment: the tightest interruption grain.
                let budget = Budget::max_ticks(1);
                match simulate_yield_resumable(
                    &topology, &model, sigma, samples, seed, resume, &budget,
                ) {
                    YieldRun::Done(e) => break e,
                    YieldRun::Interrupted(state) => {
                        kills += 1;
                        encode_yield(&state).write(&ckpt).expect("write checkpoint");
                    }
                }
            };
            (estimate, kills)
        });
        assert!(kills >= 1, "a 1-tick budget must actually interrupt");
        assert_eq!(
            resumed.yield_rate.to_bits(),
            baseline.yield_rate.to_bits(),
            "threads {threads}: {} vs {}",
            resumed.yield_rate,
            baseline.yield_rate
        );
        assert_eq!(
            resumed.mean_collisions.to_bits(),
            baseline.mean_collisions.to_bits(),
            "threads {threads}"
        );
        assert_eq!(resumed.samples, baseline.samples);
    }
}

#[test]
fn resume_after_checkpoint_loss_still_recovers_from_scratch() {
    // Losing the checkpoint file is not fatal — the run restarts clean and
    // still lands on the same answer (determinism is the backstop).
    let scratch = ScratchDir::new("kill-resume-loss");
    let ckpt = scratch.path("vqe.ckpt");
    let (first, _) = vqe_through_kills(3, &ckpt);
    std::fs::remove_file(scratch.path("nonexistent")).ok();
    let _ = std::fs::remove_file(&ckpt);
    let (second, _) = vqe_through_kills(3, &ckpt);
    assert_eq!(first.energy.to_bits(), second.energy.to_bits());
}
