//! Shard-fault-tolerance integration: sharded runs merge bit-identically
//! to 1-shard runs, dead shards are taken over, and the merge is
//! idempotent and commutative over shard counts (property-tested).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use pauli_codesign::chem::Benchmark;
use pauli_codesign::report::{classify as classify_artifact, Artifact, ReportBuilder};
use pauli_codesign::supervisor::{
    encode_manifest, encode_shard_manifest, local_host, merge_shards, run_batch, run_shard,
    shard_manifest_path, BatchMeta, JobRecord, JobSpec, JobState, Lease, ShardMeta, ShardSpec,
    SupervisorConfig,
};
use proptest::prelude::*;

static SCRATCH_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pcd-shardmerge-{}-{tag}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("h2-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.62 + 0.05 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Property: merge idempotence and commutativity over 1/2/4 shards.
// ---------------------------------------------------------------------------

/// An arbitrary terminal (or pending) job state.
fn state_strategy() -> impl Strategy<Value = JobState> {
    let stage = prop_oneof![Just("scf"), Just("compile"), Just("vqe")];
    prop_oneof![
        (0u32..u32::MAX, 1usize..100, 0usize..5).prop_map(|(e, iters, retries)| JobState::Done {
            energy_bits: (-1.0 - f64::from(e) * 1e-9).to_bits(),
            iterations: iters,
            evaluations: iters * 4,
            scf_retries: retries,
            sabre_fallback: e % 2 == 0,
        }),
        (1usize..4, stage).prop_map(|(attempts, stage)| JobState::Quarantined {
            attempts,
            stage: stage.to_string(),
            error: "injected".to_string(),
        }),
        Just(JobState::Shed),
        (0usize..3, 0usize..8).prop_map(|(attempt, slices)| JobState::Pending {
            attempt,
            slices_used: slices,
            checkpoint: None,
            breaker: [0, 0, 0],
        }),
    ]
}

fn write_partition(dir: &Path, specs: &[JobSpec], states: &[JobState], shards: usize) {
    let batch = BatchMeta {
        batch_seed: 7,
        jobs: specs.len(),
        pipeline_fault_rate: 0.125,
    };
    for shard_id in 0..shards {
        let records: Vec<JobRecord> = (0..specs.len())
            .filter(|i| i % shards == shard_id)
            .map(|i| JobRecord {
                index: i,
                id: specs[i].id.clone(),
                state: states[i].clone(),
                retries: i % 3,
                backoff_ms: 0,
            })
            .collect();
        let meta = ShardMeta {
            batch,
            shards,
            shard_id,
            owner: format!("pid:{}/{:08x}", 1000 + shard_id, shard_id),
            epoch: 0,
            taken_over_from: None,
        };
        encode_shard_manifest(&meta, &records)
            .write(shard_manifest_path(dir, shard_id))
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same record set partitioned as 1, 2, and 4 shards seals the
    /// byte-identical batch.manifest, and re-merging is a no-op — the
    /// merge is a pure function of the record set, not of the partition
    /// or the number of merge passes.
    #[test]
    fn merge_is_idempotent_and_commutative_over_shard_counts(
        states in prop::collection::vec(state_strategy(), 1..12),
    ) {
        let specs = jobs(states.len());
        let mut sealed: Vec<Vec<u8>> = Vec::new();
        for shards in [1usize, 2, 4] {
            let dir = scratch("prop");
            write_partition(&dir, &specs, &states, shards);
            let first = merge_shards(&dir, &specs).unwrap();
            let second = merge_shards(&dir, &specs).unwrap();
            prop_assert!(
                first.sealed == second.sealed,
                "merge not idempotent at {} shards", shards
            );
            prop_assert_eq!(first.records.len(), specs.len());
            prop_assert_eq!(first.missing.len(), 0);
            sealed.push(first.sealed);
            let _ = std::fs::remove_dir_all(&dir);
        }
        prop_assert!(sealed[0] == sealed[1], "1-shard vs 2-shard seal differs");
        prop_assert!(sealed[0] == sealed[2], "1-shard vs 4-shard seal differs");
    }
}

// ---------------------------------------------------------------------------
// Real-pipeline equivalence and takeover.
// ---------------------------------------------------------------------------

fn config(batch_seed: u64, ckpt: Option<PathBuf>) -> SupervisorConfig {
    SupervisorConfig {
        batch_seed,
        ckpt_dir: ckpt,
        ..SupervisorConfig::default()
    }
}

fn reference_bytes(specs: &[JobSpec], batch_seed: u64) -> Vec<u8> {
    let report = run_batch(specs, &config(batch_seed, None)).unwrap();
    let meta = BatchMeta {
        batch_seed,
        jobs: specs.len(),
        pipeline_fault_rate: 0.0,
    };
    encode_manifest(&meta, &report.records).to_bytes()
}

#[test]
fn two_shard_run_merges_bit_identically_to_one_shard_reference() {
    let specs = jobs(5);
    let reference = reference_bytes(&specs, 11);
    let dir = scratch("twoshards");
    for shard_id in 0..2 {
        let report = run_shard(
            &specs,
            &config(11, Some(dir.clone())),
            ShardSpec {
                shards: 2,
                shard_id,
            },
        )
        .unwrap();
        assert_eq!(report.pending(), 0, "shard {shard_id} left pending jobs");
        assert!(report.taken_over_from.is_none());
    }
    let outcome = merge_shards(&dir, &specs).unwrap();
    assert!(outcome.complete());
    assert_eq!(outcome.takeovers().count(), 0);
    assert_eq!(
        outcome.sealed, reference,
        "merged manifest differs from the 1-shard reference"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn survivor_takes_over_dead_shard_and_merge_matches_reference() {
    let specs = jobs(4);
    let reference = reference_bytes(&specs, 23);
    let dir = scratch("takeover");
    // Fixture: shard 1 "died" mid-run — its lease names a pid that cannot
    // exist, and no manifest was sealed.
    let dead = Lease {
        shard_id: 1,
        owner_pid: u32::MAX - 1,
        owner_nonce: 0x2a,
        epoch: 0,
        beats: 3,
        done: false,
        taken_over_from: None,
        host: local_host(),
    };
    std::fs::write(Lease::path(&dir, 1), dead.to_json()).unwrap();

    // Shard 0 runs its own partition, then its sweep adopts shard 1.
    let report = run_shard(
        &specs,
        &config(23, Some(dir.clone())),
        ShardSpec {
            shards: 2,
            shard_id: 0,
        },
    )
    .unwrap();
    assert_eq!(
        report.takeovers.len(),
        1,
        "sweep did not adopt the dead shard"
    );
    assert_eq!(report.takeovers[0].shard_id, 1);
    assert_eq!(report.takeovers[0].from, dead.owner());
    assert_eq!(report.takeovers[0].epoch, 1);

    let outcome = merge_shards(&dir, &specs).unwrap();
    assert!(outcome.complete());
    let takeovers: Vec<_> = outcome.takeovers().collect();
    assert_eq!(takeovers.len(), 1, "takeover not visible in merged lineage");
    assert_eq!(takeovers[0].shard_id, 1);
    assert_eq!(
        takeovers[0].taken_over_from.as_deref(),
        Some("pid:4294967294/0000002a")
    );
    assert_eq!(
        outcome.sealed, reference,
        "post-takeover merge differs from the 1-shard reference"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn rerun_of_dead_shard_resumes_and_records_takeover() {
    let specs = jobs(3);
    let dir = scratch("rerun");
    let dead = Lease {
        shard_id: 0,
        owner_pid: u32::MAX - 1,
        owner_nonce: 0x99,
        epoch: 4,
        beats: 17,
        done: false,
        taken_over_from: None,
        host: local_host(),
    };
    std::fs::write(Lease::path(&dir, 0), dead.to_json()).unwrap();
    // Re-running the same shard id claims epoch 5 and records provenance.
    let report = run_shard(
        &specs,
        &config(31, Some(dir.clone())),
        ShardSpec {
            shards: 3,
            shard_id: 0,
        },
    )
    .unwrap();
    assert_eq!(report.epoch, 5);
    assert_eq!(
        report.taken_over_from.as_deref(),
        Some("pid:4294967294/00000099")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_lease_blocks_a_second_claimant() {
    let specs = jobs(2);
    let dir = scratch("held");
    // A lease owned by *this* process is alive by definition.
    let alive = Lease {
        shard_id: 0,
        owner_pid: std::process::id(),
        owner_nonce: 1,
        epoch: 0,
        beats: 1,
        done: false,
        taken_over_from: None,
        host: local_host(),
    };
    std::fs::write(Lease::path(&dir, 0), alive.to_json()).unwrap();
    let err = run_shard(
        &specs,
        &config(5, Some(dir.clone())),
        ShardSpec {
            shards: 2,
            shard_id: 0,
        },
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("lease held"),
        "expected a lease-held error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Report pipeline: shard manifests and merge lineage classify and render.
// ---------------------------------------------------------------------------

#[test]
fn report_classifies_shard_manifests_and_lineage() {
    let specs = jobs(4);
    let dir = scratch("report");
    for shard_id in 0..2 {
        run_shard(
            &specs,
            &config(13, Some(dir.clone())),
            ShardSpec {
                shards: 2,
                shard_id,
            },
        )
        .unwrap();
    }
    merge_shards(&dir, &specs).unwrap();

    let shard_text = std::fs::read_to_string(shard_manifest_path(&dir, 0)).unwrap();
    let artifact = classify_artifact(&shard_text).unwrap();
    assert!(
        matches!(artifact, Artifact::Shard { .. }),
        "shard manifest misclassified"
    );
    let lineage_text = std::fs::read_to_string(dir.join("merge.lineage")).unwrap();
    let lineage = classify_artifact(&lineage_text).unwrap();
    assert!(
        matches!(lineage, Artifact::Lineage(_)),
        "lineage misclassified"
    );

    let mut builder = ReportBuilder::new();
    builder.add("shard-0.manifest", artifact);
    builder.add("merge.lineage", lineage);
    let report = builder.finish(&Default::default(), 0.25);
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.shards[0].0, 0, "wrong shard id in breakdown");
    let rendered = report.render();
    assert!(
        rendered.contains("shards:"),
        "render misses the shard section:\n{rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
