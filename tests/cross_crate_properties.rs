//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;

use pauli_codesign::ansatz::{IrEntry, PauliIr};
use pauli_codesign::arch::{simulate_yield, CollisionModel, Topology};
use pauli_codesign::circuit::{Circuit, Gate};
use pauli_codesign::compiler::layout::hierarchical_initial_layout;
use pauli_codesign::compiler::layout::Layout;
use pauli_codesign::compiler::mtr::{merge_to_root, MtrOptions};
use pauli_codesign::compiler::sabre::{sabre_route, SabreOptions};
use pauli_codesign::numeric::Complex64;
use pauli_codesign::pauli::{Pauli, PauliString, WeightedPauliSum};
use pauli_codesign::sim::Statevector;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(arb_pauli(), n).prop_map(move |ops| {
        let mut s = PauliString::identity(n);
        for (q, p) in ops.into_iter().enumerate() {
            s.set_op(q, p);
        }
        s
    })
}

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = 0..n;
    prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n).prop_map(Gate::X),
        (0..n).prop_map(Gate::S),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rz(q, t)),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| Gate::Ry(q, t)),
        (q, q2).prop_filter_map("distinct", |(a, b)| {
            (a != b).then_some(Gate::Cnot {
                control: a,
                target: b,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pauli string multiplication is associative including phases.
    #[test]
    fn pauli_product_associative(a in arb_string(5), b in arb_string(5), c in arb_string(5)) {
        let (p_ab, ab) = a.mul(&b);
        let (p_ab_c, ab_c) = ab.mul(&c);
        let (p_bc, bc) = b.mul(&c);
        let (p_a_bc, a_bc) = a.mul(&bc);
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(p_ab.mul(p_ab_c), p_bc.mul(p_a_bc));
    }

    /// Commutation is symmetric and consistent with products.
    #[test]
    fn commutation_consistency(a in arb_string(6), b in arb_string(6)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        let (pab, sab) = a.mul(&b);
        let (pba, sba) = b.mul(&a);
        prop_assert_eq!(sab, sba);
        prop_assert_eq!(a.commutes_with(&b), pab == pba);
    }

    /// Circuits preserve statevector norm (unitarity).
    #[test]
    fn circuits_are_norm_preserving(gates in prop::collection::vec(arb_gate(4), 0..40)) {
        let mut c = Circuit::new(4);
        for g in gates {
            c.push(g);
        }
        let mut sv = Statevector::basis_state(4, 0b0110);
        sv.apply_circuit(&c);
        prop_assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    /// The inverse circuit really inverts.
    #[test]
    fn inverse_circuit_round_trips(gates in prop::collection::vec(arb_gate(4), 0..25)) {
        let mut c = Circuit::new(4);
        for g in gates {
            c.push(g);
        }
        let reference = Statevector::basis_state(4, 0b1010);
        let mut sv = reference.clone();
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        prop_assert!(sv.fidelity(&reference) > 1.0 - 1e-10);
    }

    /// Direct Pauli evolution composes to identity with its inverse and
    /// preserves norm for any string/angle.
    #[test]
    fn pauli_evolution_unitary(s in arb_string(5), theta in -6.0f64..6.0) {
        let mut sv = Statevector::basis_state(5, 0b10011);
        sv.apply_gate(&Gate::H(0));
        sv.apply_gate(&Gate::Ry(3, 0.7));
        let reference = sv.clone();
        sv.apply_pauli_evolution(&s, theta);
        prop_assert!((sv.norm() - 1.0).abs() < 1e-10);
        sv.apply_pauli_evolution(&s, -theta);
        prop_assert!(sv.fidelity(&reference) > 1.0 - 1e-10);
    }

    /// Expectation values of Hermitian sums are real and bounded by the
    /// one-norm.
    #[test]
    fn expectation_bounded_by_one_norm(
        strings in prop::collection::vec(arb_string(4), 1..8),
        weights in prop::collection::vec(-2.0f64..2.0, 8),
        seed_gates in prop::collection::vec(arb_gate(4), 0..20),
    ) {
        let mut h = WeightedPauliSum::new(4);
        for (s, w) in strings.iter().zip(&weights) {
            h.push(*w, *s);
        }
        let mut c = Circuit::new(4);
        for g in seed_gates {
            c.push(g);
        }
        let mut sv = Statevector::zero_state(4);
        sv.apply_circuit(&c);
        let e = sv.expectation(&h);
        prop_assert!(e.abs() <= h.one_norm() + 1e-9);
    }

    /// Merge-to-Root compiles arbitrary small IRs correctly: the physical
    /// circuit matches direct evolution through the final layout.
    #[test]
    fn mtr_equivalence_random_ir(
        strings in prop::collection::vec(arb_string(4), 1..6),
        thetas in prop::collection::vec(-1.5f64..1.5, 6),
        init in 0u64..16,
    ) {
        let mut ir = PauliIr::new(4, init);
        for (k, s) in strings.iter().enumerate() {
            ir.push(IrEntry { string: *s, param: k, coefficient: 0.5 });
        }
        let params = &thetas[..ir.num_parameters()];
        let topology = Topology::xtree(8);
        let layout = hierarchical_initial_layout(&ir, &topology);
        let out = merge_to_root(&ir, &topology, layout, params, MtrOptions::default());

        // Reference evolution.
        let mut logical = Statevector::basis_state(4, init);
        for e in ir.entries() {
            logical.apply_pauli_evolution(&e.string, e.rotation_angle(params[e.param]));
        }
        // Compiled path.
        let mut phys = Statevector::zero_state(8);
        phys.apply_circuit(&out.circuit);
        let mut extracted = vec![Complex64::ZERO; 16];
        for (pi, amp) in phys.amplitudes().iter().enumerate() {
            if amp.norm_sqr() < 1e-24 {
                continue;
            }
            let mut li = 0u64;
            for p in 0..8 {
                if (pi >> p) & 1 == 1 {
                    match out.final_layout.logical(p) {
                        Some(l) => li |= 1 << l,
                        None => return Err(TestCaseError::fail("ancilla excited")),
                    }
                }
            }
            extracted[li as usize] += *amp;
        }
        let overlap: Complex64 = logical
            .amplitudes()
            .iter()
            .zip(&extracted)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        prop_assert!((overlap.norm() - 1.0).abs() < 1e-8, "overlap {}", overlap.norm());
    }

    /// The peephole optimizer preserves circuit semantics exactly.
    #[test]
    fn peephole_preserves_semantics(gates in prop::collection::vec(arb_gate(4), 0..40)) {
        use pauli_codesign::compiler::peephole::peephole_optimize;
        let mut c = Circuit::new(4);
        for g in gates {
            c.push(g);
        }
        let (opt, _) = peephole_optimize(&c);
        prop_assert!(opt.gate_count() <= c.gate_count());
        // Compare action on two different input states.
        for seed in [0b0000u64, 0b1011] {
            let mut a = Statevector::basis_state(4, seed);
            a.apply_gate(&Gate::H(0));
            let mut b = a.clone();
            a.apply_circuit(&c);
            b.apply_circuit(&opt);
            let overlap = a.inner(&b);
            prop_assert!(
                (overlap.norm() - 1.0).abs() < 1e-9,
                "peephole changed semantics: |overlap| = {}",
                overlap.norm()
            );
            // Rewrites used are phase-exact, not just up to global phase.
            prop_assert!((overlap.re - 1.0).abs() < 1e-9);
        }
    }

    /// SABRE-routed circuits never violate the coupling graph.
    #[test]
    fn sabre_respects_topology(gates in prop::collection::vec(arb_gate(5), 1..30)) {
        let mut c = Circuit::new(5);
        for g in gates {
            c.push(g);
        }
        let t = Topology::xtree(8);
        let out = sabre_route(&c, &t, Layout::trivial(5, 8), SabreOptions::default());
        for g in out.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                prop_assert!(t.are_connected(qs[0], qs[1]));
            }
        }
    }

    /// Yield estimates are probabilities and (weakly) favor the tree.
    #[test]
    fn yield_is_probability(sigma in 0.0f64..0.3, seed in 0u64..50) {
        let model = CollisionModel::default();
        let x = simulate_yield(&Topology::xtree(8), &model, sigma, 300, seed);
        prop_assert!(x.yield_rate >= 0.0 && x.yield_rate <= 1.0);
        prop_assert!(x.mean_collisions >= 0.0);
    }
}
