//! Property tests pinning the `par` layer's core guarantee: every parallel
//! hot path produces **bit-identical** results at 1, 2, and 4 threads.
//!
//! Work decomposition in `par` is fixed (chunk grids and task orders never
//! depend on the thread count) and reductions fold in ascending order, so
//! floating-point results must not merely be close across thread counts —
//! they must match exactly, bit for bit. Sizes here are chosen to actually
//! cross `par::SERIAL_CUTOFF` so the threaded paths really execute.

use proptest::prelude::*;

use pauli_codesign::arch::{simulate_yield, CollisionModel, Topology};
use pauli_codesign::chem::integrals::EriTensor;
use pauli_codesign::circuit::Gate;
use pauli_codesign::numeric::Complex64;
use pauli_codesign::par;
use pauli_codesign::pauli::{PauliString, WeightedPauliSum};
use pauli_codesign::sim::Statevector;
use pauli_codesign::vqe;

/// Big enough that 2^n amplitudes span multiple `par::DEFAULT_CHUNK` chunks,
/// forcing the statevector kernels onto the threaded path.
const BIG_QUBITS: usize = 14;

fn deterministic_state(num_qubits: usize, seed: u64) -> Statevector {
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let amps: Vec<Complex64> = (0..1usize << num_qubits)
        .map(|_| Complex64::new(next(), next()))
        .collect();
    let norm = amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    Statevector::from_amplitudes(amps.into_iter().map(|z| z / norm).collect())
}

fn deterministic_hamiltonian(num_qubits: usize, terms: usize, seed: u64) -> WeightedPauliSum {
    let mut h = WeightedPauliSum::new(num_qubits);
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for k in 0..terms {
        let x = next() & ((1 << num_qubits) - 1);
        let z = next() & ((1 << num_qubits) - 1);
        h.push(
            0.2 * (k as f64 + 1.0) * if k % 2 == 0 { 1.0 } else { -1.0 },
            PauliString::from_symplectic(num_qubits, x, z),
        );
    }
    h
}

fn assert_bits_equal(a: &Statevector, b: &Statevector, what: &str) {
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i} differs across thread counts: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Single-qubit gate kernels are bit-identical at 1/2/4 threads.
    #[test]
    fn statevector_gates_bit_identical_across_threads(
        seed in 1u64..u64::MAX,
        qubit in 0usize..BIG_QUBITS,
        theta in -3.0f64..3.0,
    ) {
        let base = deterministic_state(BIG_QUBITS, seed);
        let gates = [Gate::H(qubit), Gate::Rx(qubit, theta), Gate::Ry(qubit, theta)];
        for gate in &gates {
            let mut reference: Option<Statevector> = None;
            for threads in [1usize, 2, 4] {
                let mut sv = base.clone();
                par::with_threads(threads, || sv.apply_gate(gate));
                match &reference {
                    None => reference = Some(sv),
                    Some(r) => assert_bits_equal(r, &sv, &format!("{gate:?} @ {threads} threads")),
                }
            }
        }
    }

    /// Pauli-evolution kernels (diagonal and off-diagonal) are
    /// bit-identical at 1/2/4 threads.
    #[test]
    fn pauli_evolution_bit_identical_across_threads(
        seed in 1u64..u64::MAX,
        mask_seed in 1u64..u64::MAX,
        theta in -3.0f64..3.0,
    ) {
        let base = deterministic_state(BIG_QUBITS, seed);
        let full = (1u64 << BIG_QUBITS) - 1;
        let strings = [
            // Diagonal (Z-only) string.
            PauliString::from_symplectic(BIG_QUBITS, 0, mask_seed & full),
            // Off-diagonal with a high X bit (large pair stride).
            PauliString::from_symplectic(
                BIG_QUBITS,
                (mask_seed & full) | (1 << (BIG_QUBITS - 1)),
                mask_seed.rotate_left(17) & full,
            ),
        ];
        for p in &strings {
            let mut reference: Option<Statevector> = None;
            for threads in [1usize, 2, 4] {
                let mut sv = base.clone();
                par::with_threads(threads, || sv.apply_pauli_evolution(p, theta));
                match &reference {
                    None => reference = Some(sv),
                    Some(r) => assert_bits_equal(r, &sv, &format!("evolution {p} @ {threads} threads")),
                }
            }
        }
    }

    /// `WeightedPauliSum::expectation` is bit-identical at 1/2/4 threads,
    /// on both the few-terms (chunk-parallel) and many-terms
    /// (term-parallel) strategies.
    #[test]
    fn expectation_bit_identical_across_threads(
        state_seed in 1u64..u64::MAX,
        ham_seed in 1u64..u64::MAX,
    ) {
        let sv = deterministic_state(BIG_QUBITS, state_seed);
        for terms in [3usize, 20] {
            let h = deterministic_hamiltonian(BIG_QUBITS, terms, ham_seed);
            let e1 = par::with_threads(1, || sv.expectation(&h));
            let e2 = par::with_threads(2, || sv.expectation(&h));
            let e4 = par::with_threads(4, || sv.expectation(&h));
            prop_assert_eq!(e1.to_bits(), e2.to_bits());
            prop_assert_eq!(e1.to_bits(), e4.to_bits());
        }
    }

    /// The symmetric ERI-tensor build is bit-identical at 1/2/4 threads.
    #[test]
    fn eri_tensor_bit_identical_across_threads(scale in 0.1f64..10.0) {
        let f = |p: usize, q: usize, r: usize, s: usize| {
            scale / ((p + 1) as f64 * (q + 1) as f64 + (r as f64 - s as f64).powi(2) + 0.5)
        };
        let t1 = par::with_threads(1, || EriTensor::from_fn_symmetric(6, f));
        let t2 = par::with_threads(2, || EriTensor::from_fn_symmetric(6, f));
        let t4 = par::with_threads(4, || EriTensor::from_fn_symmetric(6, f));
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &t4);
    }

    /// The yield Monte Carlo is exactly reproducible at 1/2/4 threads
    /// (fixed sample-chunk seeding + integer reduction).
    #[test]
    fn yield_sim_identical_across_threads(
        seed in 0u64..u64::MAX,
        sigma in 0.0f64..0.3,
    ) {
        let t = Topology::xtree(9);
        let m = CollisionModel::default();
        let e1 = par::with_threads(1, || simulate_yield(&t, &m, sigma, 300, seed));
        let e2 = par::with_threads(2, || simulate_yield(&t, &m, sigma, 300, seed));
        let e4 = par::with_threads(4, || simulate_yield(&t, &m, sigma, 300, seed));
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(e1, e4);
    }

    /// Parallel finite-difference gradients are bit-identical at 1/2/4
    /// threads (each component owns its probe pair).
    #[test]
    fn fd_gradient_bit_identical_across_threads(
        a in -1.0f64..1.0,
        b in -1.0f64..1.0,
        c in -1.0f64..1.0,
    ) {
        let f = |x: &[f64]| {
            x.iter().enumerate().map(|(i, v)| (v - i as f64).powi(2) * (1.0 + v.sin())).sum::<f64>()
        };
        let x = [a, b, c, a * b, b * c];
        let g1 = par::with_threads(1, || vqe::fd_gradient(f, &x, 1e-6));
        let g2 = par::with_threads(2, || vqe::fd_gradient(f, &x, 1e-6));
        let g4 = par::with_threads(4, || vqe::fd_gradient(f, &x, 1e-6));
        for i in 0..x.len() {
            prop_assert_eq!(g1[i].to_bits(), g2[i].to_bits());
            prop_assert_eq!(g1[i].to_bits(), g4[i].to_bits());
        }
    }
}

/// CNOT and SWAP touch only their quarter subspace: a non-property
/// regression pin that the rewritten enumeration agrees with evolution by
/// the equivalent Pauli construction on a random state.
#[test]
fn cnot_swap_stable_across_threads() {
    // These kernels are serial, but they must commute with the parallel
    // kernels around them: interleave gates and evolutions and compare the
    // final state across thread counts.
    let base = deterministic_state(BIG_QUBITS, 0xDEAD_BEEF);
    let p: PauliString = match "XYZXYZXYZXYZXY".parse() {
        Ok(p) => p,
        Err(e) => panic!("parse: {e:?}"),
    };
    let mut reference: Option<Statevector> = None;
    for threads in [1usize, 2, 4] {
        let mut sv = base.clone();
        par::with_threads(threads, || {
            sv.apply_gate(&Gate::H(3));
            sv.apply_gate(&Gate::Cnot {
                control: 3,
                target: 11,
            });
            sv.apply_pauli_evolution(&p, 0.3);
            sv.apply_gate(&Gate::Swap(0, BIG_QUBITS - 1));
            sv.apply_gate(&Gate::Cnot {
                control: 12,
                target: 2,
            });
        });
        match &reference {
            None => reference = Some(sv),
            Some(r) => {
                assert_bits_equal(r, &sv, &format!("interleaved program @ {threads} threads"))
            }
        }
    }
}
