//! Tests pinning the paper's quantitative claims (the fast ones; the slow
//! sweeps live in the bench targets and EXPERIMENTS.md).

use pauli_codesign::ansatz::uccsd::UccsdAnsatz;
use pauli_codesign::ansatz::{compress, compress_random};
use pauli_codesign::arch::{simulate_yield, CollisionModel, Topology};
use pauli_codesign::chem::Benchmark;
use pauli_codesign::compiler::pipeline::{compile_mtr, compile_sabre};
use pauli_codesign::compiler::synthesis::synthesize_chain_nominal;
use pauli_codesign::vqe::driver::{run_vqe, VqeOptions};

/// Table I: parameter and Pauli-string counts match the paper exactly for
/// all nine molecules, and CNOT counts match for the synthesized circuits.
#[test]
fn table1_counts_match_paper() {
    let cnots = [56usize, 280, 768, 1616, 8064, 8064, 21072, 21072, 42368];
    for (b, &expected_cnots) in Benchmark::ALL.iter().zip(&cnots) {
        let m = b.expected_qubits() / 2;
        let e = match b {
            Benchmark::H2 | Benchmark::LiH | Benchmark::NaH => 2,
            Benchmark::HF => 8,
            Benchmark::BeH2 | Benchmark::H2O => 4,
            Benchmark::BH3 | Benchmark::NH3 => 6,
            Benchmark::CH4 => 8,
        };
        let a = UccsdAnsatz::new(m, e);
        assert_eq!(
            a.ir().num_parameters(),
            b.expected_parameters(),
            "{b} params"
        );
        assert_eq!(
            a.ir().len(),
            b.expected_pauli_strings(),
            "{b} Pauli strings"
        );
        assert_eq!(
            synthesize_chain_nominal(a.ir()).cnot_count(),
            expected_cnots,
            "{b} CNOTs"
        );
    }
}

/// §VI-C: the importance-based 50% selection beats random 50% selection on
/// simulated energy (LiH, 3 seeds).
#[test]
fn importance_selection_beats_random() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let h = system.qubit_hamiltonian();
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (smart, _) = compress(&full, h, 0.5);
    let smart_energy = run_vqe(h, &smart, VqeOptions::default()).unwrap().energy;

    let mut random_energies = Vec::new();
    for seed in 0..3 {
        let (ir, _) = compress_random(&full, 0.5, seed);
        random_energies.push(run_vqe(h, &ir, VqeOptions::default()).unwrap().energy);
    }
    let random_mean = random_energies.iter().sum::<f64>() / random_energies.len() as f64;
    assert!(
        smart_energy <= random_mean + 1e-9,
        "importance {smart_energy} vs random mean {random_mean}"
    );
}

/// §VI-C: the paper's "50% ratio → ~0.05% energy error" claim (relative to
/// the total energy) holds for LiH.
#[test]
fn half_ratio_error_is_tiny() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let h = system.qubit_hamiltonian();
    let (ir, _) = compress(&UccsdAnsatz::for_system(&system).into_ir(), h, 0.5);
    let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();
    let exact = system.exact_ground_state_energy();
    let relative = ((run.energy - exact) / exact).abs();
    assert!(relative < 5e-4, "relative error {relative}");
}

/// §VI-F: Merge-to-Root's overhead on the X-Tree is a tiny fraction of
/// SABRE's on the same architecture (paper: ~1%); checked on NaH at 50%.
#[test]
fn mtr_overhead_fraction_of_sabre() {
    let system = Benchmark::NaH.build(1.89).expect("NaH chemistry");
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let (ir, _) = compress(&full, system.qubit_hamiltonian(), 0.5);
    let xtree = Topology::xtree(17);
    let mtr = compile_mtr(&ir, &xtree);
    let sab = compile_sabre(&ir, &xtree, 1);
    assert!(
        sab.added_cnots() > 0,
        "SABRE must pay overhead on the sparse tree"
    );
    let fraction = mtr.added_cnots() as f64 / sab.added_cnots() as f64;
    assert!(fraction < 0.1, "MtR/SABRE overhead fraction {fraction}");
}

/// §VI-E: the X-Tree's fabrication yield beats the grid's at every
/// dispersion level tested (paper: ≈ 8×).
#[test]
fn xtree_yield_dominates_grid() {
    let model = CollisionModel::default();
    let xtree = Topology::xtree(17);
    let grid = Topology::grid17q();
    for sigma in [0.03, 0.2, 0.4] {
        let x = simulate_yield(&xtree, &model, sigma, 4000, 1);
        let g = simulate_yield(&grid, &model, sigma, 4000, 1);
        assert!(
            x.yield_rate > g.yield_rate,
            "σ={sigma}: xtree {} vs grid {}",
            x.yield_rate,
            g.yield_rate
        );
    }
}

/// §IV: the X-Tree uses the minimum possible number of connections.
#[test]
fn xtree_connection_minimality() {
    for n in [5, 8, 17, 26] {
        let t = Topology::xtree(n);
        assert_eq!(t.num_edges(), n - 1);
        assert!(t.is_connected());
    }
}

/// §VI-C convergence: fewer parameters converge in at most as many
/// iterations, monotonically across the ratio sweep (LiH).
#[test]
fn compression_speeds_convergence() {
    let system = Benchmark::LiH.build(1.6).expect("LiH chemistry");
    let h = system.qubit_hamiltonian();
    let full = UccsdAnsatz::for_system(&system).into_ir();
    let mut last = usize::MAX;
    for ratio in [0.9, 0.5, 0.1] {
        let (ir, _) = compress(&full, h, ratio);
        let run = run_vqe(h, &ir, VqeOptions::default()).unwrap();
        assert!(
            run.iterations <= last,
            "iterations should not grow as parameters shrink"
        );
        last = run.iterations;
    }
}
