//! Property tests pinning the commuting-cluster expectation path against
//! the per-term evaluator, and the qubit-wise measurement grouping's
//! internal consistency.
//!
//! The clustered evaluator rotates the state once per general-commuting
//! cluster (simultaneous diagonalization) instead of sweeping once per
//! term; it must agree with the per-term sweep to floating-point
//! round-off on arbitrary sums, and — because clusters are evaluated with
//! `par::map_slice` over a fixed task grid — be bit-identical at any
//! thread count.

use proptest::prelude::*;

use pauli_codesign::chem::Benchmark;
use pauli_codesign::numeric::Complex64;
use pauli_codesign::par;
use pauli_codesign::pauli::{
    group_qubit_wise, qubit_wise_commute, ClusteredSum, Pauli, PauliString, WeightedPauliSum,
};
use pauli_codesign::sim::Statevector;

fn deterministic_state(num_qubits: usize, seed: u64) -> Statevector {
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let amps: Vec<Complex64> = (0..1usize << num_qubits)
        .map(|_| Complex64::new(next(), next()))
        .collect();
    let norm = amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    Statevector::from_amplitudes(amps.into_iter().map(|z| z / norm).collect())
}

fn deterministic_hamiltonian(num_qubits: usize, terms: usize, seed: u64) -> WeightedPauliSum {
    let mut h = WeightedPauliSum::new(num_qubits);
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for k in 0..terms {
        let x = next() & ((1 << num_qubits) - 1);
        let z = next() & ((1 << num_qubits) - 1);
        h.push(
            0.2 * (k as f64 + 1.0) * if k % 2 == 0 { 1.0 } else { -1.0 },
            PauliString::from_symplectic(num_qubits, x, z),
        );
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `group_qubit_wise` produces mutually consistent groups: every
    /// member matches the group basis on each qubit (or is identity
    /// there), members pairwise qubit-wise commute, and the groups
    /// partition the term indices exactly.
    #[test]
    fn qubit_wise_groups_are_mutually_consistent(
        ham_seed in 1u64..u64::MAX,
        num_qubits in 8usize..13,
        terms in 16usize..48,
    ) {
        let h = deterministic_hamiltonian(num_qubits, terms, ham_seed);
        let groups = group_qubit_wise(&h);
        let mut seen = vec![false; h.len()];
        for g in &groups {
            for &i in &g.term_indices {
                prop_assert!(!seen[i], "term {i} appears in two groups");
                seen[i] = true;
                let (_, term) = h[i];
                for q in 0..num_qubits {
                    let op = term.op(q);
                    prop_assert!(
                        op == Pauli::I || op == g.basis.op(q),
                        "term {i} disagrees with its group basis on qubit {q}"
                    );
                }
            }
            for (pos, &i) in g.term_indices.iter().enumerate() {
                for &j in &g.term_indices[pos + 1..] {
                    prop_assert!(
                        qubit_wise_commute(&h[i].1, &h[j].1),
                        "grouped terms {i} and {j} do not qubit-wise commute"
                    );
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "grouping dropped a term");
    }

    /// The clustered expectation agrees with the per-term evaluator on
    /// random 8–12 qubit sums, and is bit-identical at 1/2/4 threads.
    #[test]
    fn clustered_expectation_agrees_with_per_term(
        state_seed in 1u64..u64::MAX,
        ham_seed in 1u64..u64::MAX,
        num_qubits in 8usize..13,
    ) {
        let sv = deterministic_state(num_qubits, state_seed);
        let h = deterministic_hamiltonian(num_qubits, 32, ham_seed);
        let per_term = sv.expectation(&h);
        // Scale the agreement tolerance by the total weight: term
        // coefficients here grow to ~6.4 and the evaluators sum ~32 of
        // them through different orderings.
        let scale: f64 = (0..h.len()).map(|i| h[i].0.abs()).sum();
        let mut reference: Option<f64> = None;
        for threads in [1usize, 2, 4] {
            let clustered = par::with_threads(threads, || sv.expectation_clustered(&h));
            prop_assert!(
                (clustered - per_term).abs() <= 1e-12 * scale.max(1.0),
                "clustered {clustered} vs per-term {per_term} @ {threads} threads"
            );
            match reference {
                None => reference = Some(clustered),
                Some(r) => prop_assert!(
                    r.to_bits() == clustered.to_bits(),
                    "clustered value differs across thread counts: {r} vs {clustered}"
                ),
            }
        }
    }
}

/// The clustered evaluator agrees with the per-term sweep on the real
/// molecular Hamiltonians the pipeline runs (H2 and LiH under the
/// Jordan–Wigner mapping), and the partition is a genuine compression:
/// fewer clusters than terms.
#[test]
fn clustered_agrees_on_molecular_hamiltonians() {
    let systems = [
        ("H2", Benchmark::H2.build(0.7414).expect("H2 chemistry")),
        ("LiH", Benchmark::LiH.build(1.6).expect("LiH chemistry")),
    ];
    for (label, system) in &systems {
        let h = system.qubit_hamiltonian();
        let sv = deterministic_state(h.num_qubits(), 0xC0FF_EE00_DEAD_BEEF);
        let per_term = sv.expectation(h);
        let clustered = sv.expectation_clustered(h);
        assert!(
            (per_term - clustered).abs() < 1e-10,
            "{label}: clustered {clustered} vs per-term {per_term}"
        );
        let cs = ClusteredSum::build(h);
        let with_prebuilt = sv.expectation_with(&cs);
        assert_eq!(
            clustered.to_bits(),
            with_prebuilt.to_bits(),
            "{label}: prebuilt ClusteredSum diverges from expectation_clustered"
        );
        let stats = cs.stats();
        assert_eq!(stats.terms, h.len(), "{label}: partition dropped terms");
        assert!(
            stats.clusters < h.len(),
            "{label}: {} clusters over {} terms is no compression",
            stats.clusters,
            h.len()
        );
    }
}
