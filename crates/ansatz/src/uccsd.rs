//! The UCCSD ansatz generator (paper §II-C).
//!
//! Excitations are enumerated in block-spin ordering over the active space:
//! spin-conserving singles, same-spin doubles, and opposite-spin doubles.
//! Each excitation carries one variational parameter shared by all the
//! Pauli strings of its Jordan–Wigner expansion (2 strings per single,
//! 8 per double), reproducing the paper's Table I counts.

use chem::fermion::{antihermitian_pauli_terms, spin_orbital, LadderOp};
use chem::MolecularSystem;

use crate::ir::{IrEntry, PauliIr};

/// A spin-conserving excitation in spin-orbital indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Excitation {
    /// Single excitation `occ → virt`.
    Single {
        /// Occupied spin orbital.
        occ: usize,
        /// Virtual spin orbital.
        virt: usize,
    },
    /// Double excitation `(occ0, occ1) → (virt0, virt1)`.
    Double {
        /// Occupied spin-orbital pair.
        occ: (usize, usize),
        /// Virtual spin-orbital pair.
        virt: (usize, usize),
    },
}

impl Excitation {
    /// The cluster operator `T` as a ladder-operator product.
    pub fn cluster_operator(&self) -> Vec<LadderOp> {
        match *self {
            Excitation::Single { occ, virt } => {
                vec![LadderOp::create(virt), LadderOp::annihilate(occ)]
            }
            Excitation::Double { occ, virt } => vec![
                LadderOp::create(virt.0),
                LadderOp::create(virt.1),
                LadderOp::annihilate(occ.1),
                LadderOp::annihilate(occ.0),
            ],
        }
    }

    /// All spin orbitals touched by the excitation.
    pub fn spin_orbitals(&self) -> Vec<usize> {
        match *self {
            Excitation::Single { occ, virt } => vec![occ, virt],
            Excitation::Double { occ, virt } => vec![occ.0, occ.1, virt.0, virt.1],
        }
    }
}

/// Enumerates the UCCSD excitations for `num_spatial` active orbitals and
/// `num_electrons` active electrons (closed shell): singles first, then
/// same-spin doubles (αα, ββ), then opposite-spin doubles.
///
/// # Panics
///
/// Panics if the electron count is odd or does not fit the active space.
pub fn enumerate_excitations(num_spatial: usize, num_electrons: usize) -> Vec<Excitation> {
    assert!(
        num_electrons.is_multiple_of(2),
        "closed-shell UCCSD requires even electrons"
    );
    let nocc = num_electrons / 2;
    assert!(
        nocc >= 1 && nocc <= num_spatial,
        "electrons do not fit the active space"
    );
    let nvirt = num_spatial - nocc;
    let mut out = Vec::new();

    // Singles: α then β.
    for beta in [false, true] {
        for i in 0..nocc {
            for a in nocc..num_spatial {
                out.push(Excitation::Single {
                    occ: spin_orbital(num_spatial, i, beta),
                    virt: spin_orbital(num_spatial, a, beta),
                });
            }
        }
    }

    // Same-spin doubles.
    for beta in [false, true] {
        for i in 0..nocc {
            for j in (i + 1)..nocc {
                for a in nocc..num_spatial {
                    for b in (a + 1)..num_spatial {
                        out.push(Excitation::Double {
                            occ: (
                                spin_orbital(num_spatial, i, beta),
                                spin_orbital(num_spatial, j, beta),
                            ),
                            virt: (
                                spin_orbital(num_spatial, a, beta),
                                spin_orbital(num_spatial, b, beta),
                            ),
                        });
                    }
                }
            }
        }
    }

    // Opposite-spin doubles (α occupied/virtual × β occupied/virtual).
    for i in 0..nocc {
        for j in 0..nocc {
            for a in nocc..num_spatial {
                for b in nocc..num_spatial {
                    out.push(Excitation::Double {
                        occ: (
                            spin_orbital(num_spatial, i, false),
                            spin_orbital(num_spatial, j, true),
                        ),
                        virt: (
                            spin_orbital(num_spatial, a, false),
                            spin_orbital(num_spatial, b, true),
                        ),
                    });
                }
            }
        }
    }

    let _ = nvirt;
    out
}

/// Enumerates *generalized* singles and doubles (Lee et al.-style, the
/// paper's reference \[19\]): excitations between any same-spin orbital
/// pairs, not only occupied→virtual. Used as a richer ADAPT-VQE pool —
/// essential for models like Hubbard where the reference determinant is
/// not a Hartree-Fock stationary point of the plain UCCSD pool.
///
/// # Panics
///
/// Panics if `num_spatial` is zero.
pub fn enumerate_generalized_excitations(num_spatial: usize) -> Vec<Excitation> {
    assert!(num_spatial >= 1, "at least one spatial orbital required");
    let m = num_spatial;
    let mut out = Vec::new();

    // Generalized singles: any ordered same-spin pair p < q.
    for beta in [false, true] {
        for p in 0..m {
            for q in (p + 1)..m {
                out.push(Excitation::Single {
                    occ: spin_orbital(m, p, beta),
                    virt: spin_orbital(m, q, beta),
                });
            }
        }
    }

    // Generalized same-spin doubles: distinct pairs {p<q} → {r<s}.
    for beta in [false, true] {
        for p in 0..m {
            for q in (p + 1)..m {
                for r in 0..m {
                    for s in (r + 1)..m {
                        if (r, s) <= (p, q) {
                            continue; // avoid duplicates and identity pairs
                        }
                        out.push(Excitation::Double {
                            occ: (spin_orbital(m, p, beta), spin_orbital(m, q, beta)),
                            virt: (spin_orbital(m, r, beta), spin_orbital(m, s, beta)),
                        });
                    }
                }
            }
        }
    }

    // Generalized opposite-spin doubles: (pα, qβ) → (rα, sβ), distinct.
    for p in 0..m {
        for q in 0..m {
            for r in 0..m {
                for s in 0..m {
                    if (r, s) <= (p, q) {
                        continue;
                    }
                    if p == r || q == s {
                        // Same mode created and annihilated on one spin
                        // channel: reduces to a single or vanishes.
                        continue;
                    }
                    out.push(Excitation::Double {
                        occ: (spin_orbital(m, p, false), spin_orbital(m, q, true)),
                        virt: (spin_orbital(m, r, false), spin_orbital(m, s, true)),
                    });
                }
            }
        }
    }

    out
}

/// A full UCCSD ansatz: the excitation list and its Pauli IR.
///
/// # Examples
///
/// ```
/// use ansatz::uccsd::UccsdAnsatz;
///
/// // H2-sized problem: 2 spatial orbitals, 2 electrons.
/// let ansatz = UccsdAnsatz::new(2, 2);
/// assert_eq!(ansatz.ir().num_parameters(), 3);
/// assert_eq!(ansatz.ir().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UccsdAnsatz {
    excitations: Vec<Excitation>,
    ir: PauliIr,
}

impl UccsdAnsatz {
    /// Builds the UCCSD ansatz for an active space of `num_spatial` orbitals
    /// and `num_electrons` electrons, with the Hartree-Fock determinant as
    /// the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the electron count is odd or does not fit.
    pub fn new(num_spatial: usize, num_electrons: usize) -> Self {
        let n_qubits = 2 * num_spatial;
        let excitations = enumerate_excitations(num_spatial, num_electrons);
        let hf = chem::fermion::hartree_fock_bitmask(num_spatial, num_electrons);
        let mut ir = PauliIr::new(n_qubits, hf);
        for (param, exc) in excitations.iter().enumerate() {
            for (coefficient, string) in
                antihermitian_pauli_terms(n_qubits, &exc.cluster_operator())
            {
                ir.push(IrEntry {
                    string,
                    param,
                    coefficient,
                });
            }
        }
        UccsdAnsatz { excitations, ir }
    }

    /// Builds the ansatz matching a [`MolecularSystem`]'s active space.
    pub fn for_system(system: &MolecularSystem) -> Self {
        UccsdAnsatz::new(system.num_qubits() / 2, system.num_active_electrons())
    }

    /// The excitation list (one parameter each, in parameter order).
    pub fn excitations(&self) -> &[Excitation] {
        &self.excitations
    }

    /// The Pauli IR.
    pub fn ir(&self) -> &PauliIr {
        &self.ir
    }

    /// Consumes the ansatz, returning the IR.
    pub fn into_ir(self) -> PauliIr {
        self.ir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (spatial, electrons) → expected (params, Pauli strings) per Table I.
    const TABLE1: [(usize, usize, usize, usize); 9] = [
        (2, 2, 3, 12),     // H2
        (3, 2, 8, 40),     // LiH
        (4, 2, 15, 84),    // NaH
        (5, 8, 24, 144),   // HF
        (6, 4, 92, 640),   // BeH2
        (6, 4, 92, 640),   // H2O
        (7, 6, 204, 1488), // BH3
        (7, 6, 204, 1488), // NH3
        (8, 8, 360, 2688), // CH4
    ];

    #[test]
    fn table1_parameter_and_pauli_counts() {
        for (m, ne, params, paulis) in TABLE1 {
            let a = UccsdAnsatz::new(m, ne);
            assert_eq!(a.ir().num_parameters(), params, "params for ({m},{ne})");
            assert_eq!(a.ir().len(), paulis, "paulis for ({m},{ne})");
            assert_eq!(a.excitations().len(), params);
        }
    }

    #[test]
    fn h2_excitation_structure() {
        let a = UccsdAnsatz::new(2, 2);
        // Two singles (0→1 α, 2→3 β) and one double.
        assert_eq!(a.excitations()[0], Excitation::Single { occ: 0, virt: 1 });
        assert_eq!(a.excitations()[1], Excitation::Single { occ: 2, virt: 3 });
        assert_eq!(
            a.excitations()[2],
            Excitation::Double {
                occ: (0, 2),
                virt: (1, 3)
            }
        );
    }

    #[test]
    fn singles_have_two_strings_doubles_eight() {
        let a = UccsdAnsatz::new(3, 2);
        let groups = a.ir().entries_by_parameter();
        for (exc, group) in a.excitations().iter().zip(&groups) {
            match exc {
                Excitation::Single { .. } => assert_eq!(group.len(), 2),
                Excitation::Double { .. } => assert_eq!(group.len(), 8),
            }
        }
    }

    #[test]
    fn initial_state_is_hartree_fock() {
        let a = UccsdAnsatz::new(3, 4);
        // 4 electrons in 3 spatial orbitals: α qubits 0,1; β qubits 3,4.
        assert_eq!(a.ir().initial_state(), 0b011011);
    }

    #[test]
    fn adjacent_single_excitations_have_no_z_chain() {
        // H2's single 0→1 acts on adjacent qubits: weight-2 strings.
        let a = UccsdAnsatz::new(2, 2);
        let groups = a.ir().entries_by_parameter();
        for &idx in &groups[0] {
            assert_eq!(a.ir().entries()[idx].string.weight(), 2);
        }
        // LiH's single 0→2 must carry a Z on qubit 1: weight 3.
        let b = UccsdAnsatz::new(3, 2);
        let exc_with_gap = b
            .excitations()
            .iter()
            .position(|e| matches!(e, Excitation::Single { occ: 0, virt: 2 }))
            .unwrap();
        for &idx in &b.ir().entries_by_parameter()[exc_with_gap] {
            assert_eq!(b.ir().entries()[idx].string.weight(), 3);
        }
    }

    #[test]
    fn all_strings_share_parameter_coefficient_magnitudes() {
        let a = UccsdAnsatz::new(3, 2);
        for e in a.ir().entries() {
            let c = e.coefficient.abs();
            assert!((c - 0.5).abs() < 1e-12 || (c - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn odd_electrons_rejected() {
        let _ = UccsdAnsatz::new(3, 3);
    }

    #[test]
    fn generalized_pool_contains_the_plain_pool() {
        let plain = enumerate_excitations(3, 2);
        let general = enumerate_generalized_excitations(3);
        for exc in &plain {
            let found = match exc {
                Excitation::Single { occ, virt } => general.iter().any(|g| {
                    matches!(g, Excitation::Single { occ: o, virt: v } if o == occ && v == virt)
                }),
                Excitation::Double { occ, virt } => general.iter().any(|g| {
                    matches!(g, Excitation::Double { occ: o, virt: v } if o == occ && v == virt)
                }),
            };
            assert!(found, "missing {exc:?} from the generalized pool");
        }
        assert!(general.len() > plain.len());
    }

    #[test]
    fn generalized_pool_has_no_duplicates() {
        let general = enumerate_generalized_excitations(3);
        let mut seen = std::collections::HashSet::new();
        for exc in &general {
            assert!(seen.insert(format!("{exc:?}")), "duplicate {exc:?}");
        }
    }

    #[test]
    fn generalized_excitations_are_valid_operators() {
        // Every generalized excitation must produce a nonzero
        // anti-Hermitian Pauli expansion.
        for exc in enumerate_generalized_excitations(2) {
            let terms = chem::fermion::antihermitian_pauli_terms(4, &exc.cluster_operator());
            assert!(!terms.is_empty(), "{exc:?} expands to nothing");
        }
    }
}
