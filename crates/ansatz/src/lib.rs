//! UCCSD ansatz generation and the paper's ansatz compression (§III).
//!
//! The ansatz layer works on the paper's key intermediate representation:
//! an ordered sequence of parameterized Pauli strings ([`PauliIr`]) rather
//! than a gate-level circuit. This is what enables the compiler (paper §V)
//! to synthesize each Pauli-string simulation circuit adaptively.
//!
//! * [`uccsd`] — the Unitary Coupled Cluster Singles-and-Doubles generator
//!   in block-spin Jordan–Wigner form, reproducing the paper's Table I
//!   parameter and Pauli-string counts exactly;
//! * [`ir`] — the Pauli IR: parameterized weighted Pauli strings plus the
//!   Hartree-Fock initial state;
//! * [`importance`] — Algorithm 1: parameter importance estimation by
//!   comparing ansatz Pauli strings against the Hamiltonian;
//! * [`compression`] — hardware-friendly compressed-ansatz construction
//!   (§III-B) and the random-selection baseline used in the evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use ansatz::uccsd::UccsdAnsatz;
//! use chem::Benchmark;
//!
//! let system = Benchmark::LiH.build(1.6)?;
//! let ansatz = UccsdAnsatz::for_system(&system);
//! assert_eq!(ansatz.ir().num_parameters(), 8); // Table I
//! assert_eq!(ansatz.ir().len(), 40);           // Pauli strings
//! # Ok::<(), chem::ChemError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod compression;
pub mod importance;
pub mod ir;
pub mod trotter;
pub mod uccsd;

pub use compression::{compress, compress_random, CompressionReport};
pub use importance::{parameter_importance, ImportanceScores};
pub use ir::{IrEntry, PauliIr};
pub use trotter::{trotterize, TrotterOrder};
pub use uccsd::{
    enumerate_excitations, enumerate_generalized_excitations, Excitation, UccsdAnsatz,
};
