//! Trotterized Hamiltonian dynamics as a Pauli IR.
//!
//! The paper's hardware and compiler are built for "the structure of Pauli
//! string simulation circuits that appear in various chemistry and physics
//! applications" (§I) — not only VQE. Product-formula time evolution is the
//! other big consumer of those circuits; this module lowers
//! `exp(-i·H·t)` to the same [`PauliIr`] the Merge-to-Root compiler
//! already understands.
//!
//! The emitted IR has a single formal parameter fixed at `θ = 1`, so every
//! downstream tool (statevector preparation, compilation, gate counting)
//! works unchanged.

use pauli::WeightedPauliSum;

use crate::ir::{IrEntry, PauliIr};

/// Product-formula order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrotterOrder {
    /// First-order Lie–Trotter: error `O(t²/n)`.
    First,
    /// Second-order (symmetric) Suzuki–Trotter: error `O(t³/n²)`.
    Second,
}

/// Lowers `exp(-i·H·t)` with `steps` Trotter steps into a Pauli IR starting
/// from the basis state `initial_state`.
///
/// Evaluate or compile the result with the parameter vector `&[1.0]`.
///
/// # Panics
///
/// Panics if `steps` is zero or `hamiltonian` is empty.
pub fn trotterize(
    hamiltonian: &WeightedPauliSum,
    t: f64,
    steps: usize,
    order: TrotterOrder,
    initial_state: u64,
) -> PauliIr {
    assert!(steps >= 1, "at least one Trotter step required");
    assert!(
        !hamiltonian.is_empty(),
        "cannot Trotterize an empty Hamiltonian"
    );
    let n = hamiltonian.num_qubits();
    let dt = t / steps as f64;
    let mut ir = PauliIr::new(n, initial_state);

    // IR semantics: entry evolves by exp(i·θ·c·P); with θ = 1 we need
    // c = −w·Δ for exp(-i·w·Δ·P).
    let push = |ir: &mut PauliIr, w: f64, p: pauli::PauliString, delta: f64| {
        if p.is_identity() {
            return; // global phase
        }
        ir.push(IrEntry {
            string: p,
            param: 0,
            coefficient: -w * delta,
        });
    };

    for _ in 0..steps {
        match order {
            TrotterOrder::First => {
                for &(w, p) in hamiltonian.iter() {
                    push(&mut ir, w, p, dt);
                }
            }
            TrotterOrder::Second => {
                // Forward half sweep then backward half sweep.
                for &(w, p) in hamiltonian.iter() {
                    push(&mut ir, w, p, dt / 2.0);
                }
                for &(w, p) in hamiltonian.iter().rev() {
                    push(&mut ir, w, p, dt / 2.0);
                }
            }
        }
    }
    ir
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Complex64;
    use pauli::PauliString;

    fn sample_h() -> WeightedPauliSum {
        let mut h = WeightedPauliSum::new(3);
        h.push(0.6, "ZZI".parse().unwrap());
        h.push(-0.4, "IXX".parse().unwrap());
        h.push(0.25, "YIY".parse().unwrap());
        h
    }

    /// Applies an IR (θ = 1) to a basis state and returns the amplitudes.
    fn run_ir(ir: &PauliIr) -> Vec<Complex64> {
        let mut state = vec![Complex64::ZERO; 1 << ir.num_qubits()];
        state[ir.initial_state() as usize] = Complex64::ONE;
        // Inline evolution (avoids a dev-dependency on `sim`): apply each
        // entry as exp(-i·φ/2·P) with φ = −2c.
        for e in ir.entries() {
            let phi = e.rotation_angle(1.0);
            let (c, s) = ((phi / 2.0).cos(), (phi / 2.0).sin());
            let mut next = vec![Complex64::ZERO; state.len()];
            for (b, amp) in state.iter().enumerate() {
                if amp.norm_sqr() == 0.0 {
                    continue;
                }
                let (flip, phase) = e.string.apply_to_basis_state(b as u64);
                next[b] += *amp * c;
                next[flip as usize] += *amp * phase * Complex64::new(0.0, -s);
            }
            state = next;
        }
        state
    }

    fn fidelity(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.conj() * *y)
            .sum::<Complex64>()
            .norm_sqr()
    }

    #[test]
    fn single_term_trotter_is_exact() {
        let mut h = WeightedPauliSum::new(2);
        h.push(0.8, "XY".parse().unwrap());
        let ir = trotterize(&h, 1.3, 1, TrotterOrder::First, 0b01);
        let approx = run_ir(&ir);
        let mut exact = vec![Complex64::ZERO; 4];
        exact[0b01] = Complex64::ONE;
        h.evolve_exact(1.3, &mut exact);
        assert!(fidelity(&approx, &exact) > 1.0 - 1e-12);
    }

    #[test]
    fn trotter_error_shrinks_with_steps() {
        let h = sample_h();
        let mut exact = vec![Complex64::ZERO; 8];
        exact[0b011] = Complex64::ONE;
        h.evolve_exact(2.0, &mut exact);

        let mut last_err = f64::INFINITY;
        for steps in [2usize, 8, 32] {
            let ir = trotterize(&h, 2.0, steps, TrotterOrder::First, 0b011);
            let err = 1.0 - fidelity(&run_ir(&ir), &exact);
            assert!(err < last_err, "error must shrink: {err} vs {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-3, "32-step error {last_err}");
    }

    #[test]
    fn second_order_beats_first_order() {
        let h = sample_h();
        let mut exact = vec![Complex64::ZERO; 8];
        exact[0b101] = Complex64::ONE;
        h.evolve_exact(1.5, &mut exact);

        let first = trotterize(&h, 1.5, 4, TrotterOrder::First, 0b101);
        let second = trotterize(&h, 1.5, 4, TrotterOrder::Second, 0b101);
        let err1 = 1.0 - fidelity(&run_ir(&first), &exact);
        let err2 = 1.0 - fidelity(&run_ir(&second), &exact);
        assert!(err2 < err1, "second order {err2} vs first {err1}");
    }

    #[test]
    fn identity_terms_are_dropped() {
        let mut h = WeightedPauliSum::new(2);
        h.push(-3.0, PauliString::identity(2)); // constant offset
        h.push(0.5, "ZZ".parse().unwrap());
        let ir = trotterize(&h, 1.0, 2, TrotterOrder::First, 0);
        assert!(ir.entries().iter().all(|e| !e.string.is_identity()));
        assert_eq!(ir.len(), 2);
    }

    #[test]
    fn entry_counts_scale_with_steps_and_order() {
        let h = sample_h();
        let f = trotterize(&h, 1.0, 5, TrotterOrder::First, 0);
        let s = trotterize(&h, 1.0, 5, TrotterOrder::Second, 0);
        assert_eq!(f.len(), 3 * 5);
        assert_eq!(s.len(), 6 * 5);
        assert_eq!(f.num_parameters(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_steps_rejected() {
        let _ = trotterize(&sample_h(), 1.0, 0, TrotterOrder::First, 0);
    }
}
