//! The Pauli intermediate representation.
//!
//! "The output of this step is an array of Pauli strings and their
//! parameters, which can be considered as a new intermediate representation
//! (IR) above quantum circuits." (paper §I)

use pauli::PauliString;

/// One parameterized Pauli-evolution entry: the unitary
/// `exp(i·θ_{param}·coefficient·P)`.
///
/// With the rotation-gate convention `Rz(φ) = exp(-i·φ/2·Z)`, the center
/// rotation angle of this entry's simulation circuit is
/// `φ = −2·coefficient·θ` (see [`IrEntry::rotation_angle`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrEntry {
    /// The Pauli string `P`.
    pub string: PauliString,
    /// Index of the shared variational parameter.
    pub param: usize,
    /// Fixed real coefficient `c` multiplying the parameter.
    pub coefficient: f64,
}

impl IrEntry {
    /// The evolution angle `φ` such that this entry equals
    /// `exp(-i·φ/2·P)`, for a parameter value `theta`.
    #[inline]
    pub fn rotation_angle(&self, theta: f64) -> f64 {
        -2.0 * self.coefficient * theta
    }
}

/// An ordered sequence of parameterized Pauli strings plus the initial
/// Hartree-Fock state — the program representation handed to the compiler.
///
/// # Examples
///
/// ```
/// use ansatz::{IrEntry, PauliIr};
///
/// let mut ir = PauliIr::new(2, 0b01);
/// ir.push(IrEntry { string: "XY".parse()?, param: 0, coefficient: 0.5 });
/// ir.push(IrEntry { string: "YX".parse()?, param: 0, coefficient: -0.5 });
/// assert_eq!(ir.num_parameters(), 1);
/// assert_eq!(ir.len(), 2);
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliIr {
    num_qubits: usize,
    initial_state: u64,
    entries: Vec<IrEntry>,
}

impl PauliIr {
    /// Creates an empty IR with the given initial basis state (bitmask of
    /// qubits prepared in `|1⟩` by X gates).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or exceeds 64, or the initial state
    /// has bits outside the register.
    pub fn new(num_qubits: usize, initial_state: u64) -> Self {
        assert!((1..=64).contains(&num_qubits), "1..=64 qubits supported");
        if num_qubits < 64 {
            assert!(
                initial_state < (1u64 << num_qubits),
                "initial state outside register"
            );
        }
        PauliIr {
            num_qubits,
            initial_state,
            entries: Vec::new(),
        }
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if the string width differs from the register.
    pub fn push(&mut self, entry: IrEntry) {
        assert_eq!(
            entry.string.num_qubits(),
            self.num_qubits,
            "string width must match IR"
        );
        self.entries.push(entry);
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The Hartree-Fock initial state bitmask.
    #[inline]
    pub fn initial_state(&self) -> u64 {
        self.initial_state
    }

    /// Number of Pauli-string entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the IR has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrows the entries in program order.
    #[inline]
    pub fn entries(&self) -> &[IrEntry] {
        &self.entries
    }

    /// Number of distinct parameters (`max(param) + 1`, or 0 when empty).
    pub fn num_parameters(&self) -> usize {
        self.entries.iter().map(|e| e.param + 1).max().unwrap_or(0)
    }

    /// Groups entry indices by parameter: element `p` lists the entries
    /// sharing parameter `p`, in program order.
    pub fn entries_by_parameter(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_parameters()];
        for (i, e) in self.entries.iter().enumerate() {
            groups[e.param].push(i);
        }
        groups
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, IrEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a PauliIr {
    type Item = &'a IrEntry;
    type IntoIter = std::slice::Iter<'a, IrEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ir() -> PauliIr {
        let mut ir = PauliIr::new(3, 0b011);
        ir.push(IrEntry {
            string: "IXY".parse().unwrap(),
            param: 0,
            coefficient: 0.5,
        });
        ir.push(IrEntry {
            string: "IYX".parse().unwrap(),
            param: 0,
            coefficient: -0.5,
        });
        ir.push(IrEntry {
            string: "ZZX".parse().unwrap(),
            param: 1,
            coefficient: 0.125,
        });
        ir
    }

    #[test]
    fn accessors() {
        let ir = sample_ir();
        assert_eq!(ir.num_qubits(), 3);
        assert_eq!(ir.initial_state(), 0b011);
        assert_eq!(ir.len(), 3);
        assert_eq!(ir.num_parameters(), 2);
        assert!(!ir.is_empty());
    }

    #[test]
    fn groups_by_parameter() {
        let groups = sample_ir().entries_by_parameter();
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn rotation_angle_convention() {
        let e = IrEntry {
            string: "Z".parse().unwrap(),
            param: 0,
            coefficient: 0.5,
        };
        // exp(iθcP) = exp(-i·φ/2·P) with φ = -2cθ.
        assert_eq!(e.rotation_angle(0.3), -2.0 * 0.5 * 0.3);
    }

    #[test]
    #[should_panic]
    fn rejects_initial_state_outside_register() {
        let _ = PauliIr::new(2, 0b100);
    }

    #[test]
    #[should_panic]
    fn rejects_width_mismatch() {
        let mut ir = PauliIr::new(2, 0);
        ir.push(IrEntry {
            string: "XYZ".parse().unwrap(),
            param: 0,
            coefficient: 1.0,
        });
    }
}
