//! Parameter importance estimation — the paper's Algorithm 1 (§III-A).
//!
//! For every ansatz Pauli string `P_a` and every Hamiltonian string `P_H`,
//! count the qubits on which tuning `P_a`'s parameter is unlikely to affect
//! measuring `P_H` (either operator is `I`, or both are equal) — the decay
//! factor `d` — and accumulate `2^{-d}·|w_H|`. A parameter's importance is
//! the sum over its strings.

use pauli::WeightedPauliSum;

use crate::ir::PauliIr;

/// Importance scores per parameter.
///
/// # Examples
///
/// ```no_run
/// use ansatz::{parameter_importance, uccsd::UccsdAnsatz};
/// use chem::Benchmark;
///
/// let system = Benchmark::H2.build(0.74)?;
/// let ansatz = UccsdAnsatz::for_system(&system);
/// let scores = parameter_importance(ansatz.ir(), system.qubit_hamiltonian());
/// // The double excitation dominates H2's correlation energy.
/// assert_eq!(scores.ranking()[0], 2);
/// # Ok::<(), chem::ChemError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceScores {
    scores: Vec<f64>,
}

impl ImportanceScores {
    /// The raw score of each parameter (index = parameter id).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Parameter ids sorted by decreasing importance; ties broken by the
    /// original parameter order (stable, deterministic).
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]).then(a.cmp(&b)));
        idx
    }

    /// The top `k` parameter ids by importance.
    pub fn top(&self, k: usize) -> Vec<usize> {
        let mut r = self.ranking();
        r.truncate(k);
        r
    }
}

/// The paper's importance decay factor `d` computed on symplectic bitmasks
/// in O(1): the number of qubits where `P_a` is `I`, `P_H` is `I`, or both
/// operators agree.
#[inline]
fn decay_factor(ax: u64, az: u64, hx: u64, hz: u64, mask: u64) -> u32 {
    let a_support = ax | az;
    let h_support = hx | hz;
    let equal = !((ax ^ hx) | (az ^ hz));
    ((!a_support | !h_support | equal) & mask).count_ones()
}

/// Runs Algorithm 1: scores every parameter of the IR against the target
/// Hamiltonian. `O(#P_a · #P_H)` with O(1) per pair.
///
/// # Panics
///
/// Panics if the IR and Hamiltonian qubit counts differ.
pub fn parameter_importance(ir: &PauliIr, hamiltonian: &WeightedPauliSum) -> ImportanceScores {
    assert_eq!(
        ir.num_qubits(),
        hamiltonian.num_qubits(),
        "ansatz and Hamiltonian must share the qubit register"
    );
    let mut span = obs::span("ansatz.importance");
    span.record("ansatz_strings", ir.len());
    span.record("hamiltonian_terms", hamiltonian.len());
    span.record("terms_scored", ir.len() * hamiltonian.len());
    obs::counter_add(
        "ansatz.importance.pairs_scored",
        (ir.len() * hamiltonian.len()) as u64,
    );
    let n = ir.num_qubits();
    let mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    let mut scores = vec![0.0; ir.num_parameters()];
    for entry in ir.entries() {
        let ax = entry.string.x_mask();
        let az = entry.string.z_mask();
        let mut s = 0.0;
        for (w, ph) in hamiltonian.iter() {
            let d = decay_factor(ax, az, ph.x_mask(), ph.z_mask(), mask);
            s += w.abs() * (0.5f64).powi(d as i32);
        }
        scores[entry.param] += s;
    }
    ImportanceScores { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrEntry;
    use pauli::PauliString;

    fn ir_with(strings: &[(&str, usize)]) -> PauliIr {
        let n = strings[0].0.len();
        let mut ir = PauliIr::new(n, 0);
        for &(s, p) in strings {
            ir.push(IrEntry {
                string: s.parse().unwrap(),
                param: p,
                coefficient: 1.0,
            });
        }
        ir
    }

    fn ham(terms: &[(f64, &str)]) -> WeightedPauliSum {
        let n = terms[0].1.len();
        WeightedPauliSum::from_terms(
            n,
            terms
                .iter()
                .map(|&(w, s)| (w, s.parse::<PauliString>().unwrap())),
        )
    }

    #[test]
    fn decay_counts_paper_figure4_example() {
        // From the paper's Figure 4 walk-through: exactly the three rules.
        let pa: PauliString = "XIXY".parse().unwrap();
        let ph: PauliString = "IZXZ".parse().unwrap();
        let d = decay_factor(pa.x_mask(), pa.z_mask(), ph.x_mask(), ph.z_mask(), 0b1111);
        assert_eq!(d, 3);
        assert_eq!(d, pa.importance_decay_factor(&ph));
    }

    #[test]
    fn fast_decay_matches_reference_implementation() {
        // Cross-validate the bitmask version against the per-qubit method
        // on a grid of string pairs.
        let alphabet = ["IIII", "XYZX", "ZZII", "IXIX", "YYYY", "XZYI"];
        for a in alphabet {
            for h in alphabet {
                let pa: PauliString = a.parse().unwrap();
                let ph: PauliString = h.parse().unwrap();
                let fast = decay_factor(pa.x_mask(), pa.z_mask(), ph.x_mask(), ph.z_mask(), 0b1111);
                assert_eq!(fast, pa.importance_decay_factor(&ph), "{a} vs {h}");
            }
        }
    }

    #[test]
    fn identical_strings_decay_fully() {
        let ir = ir_with(&[("XYZ", 0)]);
        let h = ham(&[(2.0, "XYZ")]);
        let s = parameter_importance(&ir, &h);
        // d = 3 on every qubit → score = 2·2⁻³.
        assert!((s.scores()[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fully_different_strings_have_no_decay() {
        let ir = ir_with(&[("XXX", 0)]);
        let h = ham(&[(1.0, "ZZZ")]);
        let s = parameter_importance(&ir, &h);
        assert!((s.scores()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_scores_linearly() {
        let ir = ir_with(&[("XX", 0)]);
        let h1 = ham(&[(1.0, "ZZ")]);
        let h3 = ham(&[(-3.0, "ZZ")]);
        let s1 = parameter_importance(&ir, &h1).scores()[0];
        let s3 = parameter_importance(&ir, &h3).scores()[0];
        assert!((s3 - 3.0 * s1).abs() < 1e-12);
    }

    #[test]
    fn shared_parameters_accumulate() {
        let ir = ir_with(&[("XX", 0), ("YY", 0), ("ZZ", 1)]);
        let h = ham(&[(1.0, "ZZ")]);
        let s = parameter_importance(&ir, &h);
        // Param 0 gets XX and YY contributions; param 1 only ZZ (d=2).
        assert!((s.scores()[0] - 2.0).abs() < 1e-12);
        assert!((s.scores()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_descending_and_stable() {
        let ir = ir_with(&[("XX", 0), ("ZZ", 1), ("YY", 2)]);
        let h = ham(&[(1.0, "ZZ")]);
        let s = parameter_importance(&ir, &h);
        let r = s.ranking();
        // XX and YY tie at score 1.0 (d=0); ZZ decays fully.
        assert_eq!(r, vec![0, 2, 1]);
        assert_eq!(s.top(2), vec![0, 2]);
    }
}
