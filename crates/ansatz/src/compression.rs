//! Hardware-friendly compressed-ansatz construction (paper §III-B).
//!
//! Given a compression ratio α, keep the top ⌈αK⌉ parameters by importance
//! and emit their Pauli strings in *importance-decreasing* order — the
//! ordering the paper credits with improving gate locality for the
//! Merge-to-Root compiler. A seeded random-selection baseline reproduces
//! the evaluation's "Rand. 50%" configuration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pauli::WeightedPauliSum;

use crate::importance::parameter_importance;
use crate::ir::{IrEntry, PauliIr};

/// Metadata about a compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Original parameter count `K`.
    pub original_parameters: usize,
    /// Parameters kept, `⌈αK⌉`.
    pub kept_parameters: usize,
    /// The kept parameters' original ids, in emission (importance) order.
    pub kept_order: Vec<usize>,
    /// Importance score of every original parameter.
    pub scores: Vec<f64>,
}

/// Compresses an ansatz IR to ratio `ratio ∈ (0, 1]` against the target
/// Hamiltonian (Algorithm 1 scores + §III-B construction).
///
/// Returns the compressed IR (parameters renumbered `0..k` in importance
/// order) and the report.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or the qubit registers differ.
pub fn compress(
    ir: &PauliIr,
    hamiltonian: &WeightedPauliSum,
    ratio: f64,
) -> (PauliIr, CompressionReport) {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "compression ratio must be in (0, 1]"
    );
    let mut span = obs::span("ansatz.compress");
    let scores = parameter_importance(ir, hamiltonian);
    let k = ((ratio * ir.num_parameters() as f64).ceil() as usize).max(1);
    let kept = scores.top(k);
    let compressed = rebuild_in_order(ir, &kept);
    span.record("ratio", ratio);
    span.record("original_parameters", ir.num_parameters());
    span.record("kept_parameters", kept.len());
    span.record("dropped_parameters", ir.num_parameters() - kept.len());
    let report = CompressionReport {
        original_parameters: ir.num_parameters(),
        kept_parameters: kept.len(),
        kept_order: kept,
        scores: scores.scores().to_vec(),
    };
    (compressed, report)
}

/// The evaluation's random-selection baseline: keeps ⌈αK⌉ parameters chosen
/// uniformly at random (seeded), in their original program order.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]`.
pub fn compress_random(ir: &PauliIr, ratio: f64, seed: u64) -> (PauliIr, CompressionReport) {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "compression ratio must be in (0, 1]"
    );
    let k_total = ir.num_parameters();
    let k = ((ratio * k_total as f64).ceil() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params: Vec<usize> = (0..k_total).collect();
    params.shuffle(&mut rng);
    let mut kept: Vec<usize> = params.into_iter().take(k).collect();
    kept.sort_unstable(); // original program order
    let compressed = rebuild_in_order(ir, &kept);
    let report = CompressionReport {
        original_parameters: k_total,
        kept_parameters: kept.len(),
        kept_order: kept,
        scores: vec![],
    };
    (compressed, report)
}

/// Rebuilds an IR keeping only `ordered_params`, emitting each parameter's
/// Pauli-string block in the given order and renumbering parameters.
fn rebuild_in_order(ir: &PauliIr, ordered_params: &[usize]) -> PauliIr {
    let groups = ir.entries_by_parameter();
    let mut out = PauliIr::new(ir.num_qubits(), ir.initial_state());
    for (new_param, &old_param) in ordered_params.iter().enumerate() {
        for &idx in &groups[old_param] {
            let e = ir.entries()[idx];
            out.push(IrEntry {
                string: e.string,
                param: new_param,
                coefficient: e.coefficient,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uccsd::UccsdAnsatz;
    use pauli::PauliString;

    fn toy_hamiltonian(n: usize) -> WeightedPauliSum {
        // A Hamiltonian weighted toward low qubits, giving distinct scores.
        let mut h = WeightedPauliSum::new(n);
        let mut z01 = PauliString::identity(n);
        z01.set_op(0, pauli::Pauli::Z);
        z01.set_op(1, pauli::Pauli::Z);
        h.push(2.0, z01);
        let mut xhigh = PauliString::identity(n);
        xhigh.set_op(n - 1, pauli::Pauli::X);
        h.push(0.1, xhigh);
        h
    }

    #[test]
    fn keeps_ceil_of_ratio_times_k() {
        let a = UccsdAnsatz::new(3, 2); // 8 parameters
        let h = toy_hamiltonian(6);
        for (ratio, expect) in [(0.1, 1), (0.3, 3), (0.5, 4), (0.7, 6), (0.9, 8), (1.0, 8)] {
            let (c, r) = compress(a.ir(), &h, ratio);
            assert_eq!(r.kept_parameters, expect, "ratio {ratio}");
            assert_eq!(c.num_parameters(), expect);
        }
    }

    #[test]
    fn full_ratio_keeps_every_string_in_importance_order() {
        let a = UccsdAnsatz::new(3, 2);
        let h = toy_hamiltonian(6);
        let (c, r) = compress(a.ir(), &h, 1.0);
        assert_eq!(c.len(), a.ir().len());
        // Emission order must follow the importance ranking.
        let scores = &r.scores;
        for w in r.kept_order.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]] - 1e-15);
        }
    }

    #[test]
    fn blocks_stay_contiguous_and_renumbered() {
        let a = UccsdAnsatz::new(3, 2);
        let h = toy_hamiltonian(6);
        let (c, _) = compress(a.ir(), &h, 0.5);
        // Parameters must appear as contiguous blocks 0,0,..,1,1,..,2..
        let mut seen_max = 0usize;
        let mut last = 0usize;
        for e in c.entries() {
            assert!(
                e.param == last || e.param == last + 1,
                "non-contiguous parameter blocks"
            );
            last = e.param;
            seen_max = seen_max.max(e.param);
        }
        assert_eq!(seen_max + 1, c.num_parameters());
    }

    #[test]
    fn compressed_ir_preserves_initial_state_and_width() {
        let a = UccsdAnsatz::new(4, 2);
        let h = toy_hamiltonian(8);
        let (c, _) = compress(a.ir(), &h, 0.3);
        assert_eq!(c.num_qubits(), a.ir().num_qubits());
        assert_eq!(c.initial_state(), a.ir().initial_state());
    }

    #[test]
    fn random_baseline_is_seeded_and_sized() {
        let a = UccsdAnsatz::new(4, 2); // 15 parameters
        let (c1, r1) = compress_random(a.ir(), 0.5, 42);
        let (c2, _) = compress_random(a.ir(), 0.5, 42);
        let (c3, _) = compress_random(a.ir(), 0.5, 43);
        assert_eq!(r1.kept_parameters, 8); // ceil(7.5)
        assert_eq!(c1, c2, "same seed must reproduce the selection");
        assert_ne!(c1, c3, "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn random_baseline_keeps_program_order() {
        let a = UccsdAnsatz::new(4, 2);
        let (_, r) = compress_random(a.ir(), 0.5, 7);
        for w in r.kept_order.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ratio_rejected() {
        let a = UccsdAnsatz::new(2, 2);
        let h = toy_hamiltonian(4);
        let _ = compress(a.ir(), &h, 0.0);
    }
}
