//! The serve chaos campaign behind `pcd chaos --serve`.
//!
//! Two layers, both seeded and replayable:
//!
//! - **In-process trials** run a real daemon on a scratch socket and
//!   throw a seeded storm at it: normal requests, clients that vanish
//!   after sending, and cache entries corrupted on disk between
//!   requests — all under the configured fault rate, so the `Accept`
//!   and `CacheWrite` injection sites fire too. Every `done` response is
//!   compared bit-for-bit against an in-process reference computed
//!   through the same content-keyed engine path.
//! - **A subprocess phase** (when the `pcd` binary path is provided)
//!   exercises what only a real process can: a burst of requests, then
//!   SIGTERM mid-compute — the daemon must exit 30 with a sealed
//!   manifest — then a restart that resumes the pending tail, serves
//!   repeats from the cache (no SCF, no VQE in the response trace),
//!   survives an on-disk cache corruption, and finally drains; the
//!   sealed manifest's records must match the reference bit-for-bit,
//!   which is the zero-downtime-restart contract.
//!
//! The campaign never panics on a misbehaving daemon: every broken
//! promise is a line in [`ServeChaosReport::violations`], and an empty
//! list is the pass criterion.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chem::Benchmark;
use obs::json::{self, JsonValue};
use resilience::Checkpoint;
use supervisor::{decode_manifest, JobSpec, JobState, KIND_BATCH_MANIFEST};

use crate::cache::{cache_key, CACHE_EXT};
use crate::daemon::{compute_record, run_serve, ServeConfig, KIND_SERVE_MANIFEST};
use crate::splitmix64;
use crate::sys;

/// Bond lengths the storm draws from. Four distinct computations, so
/// any storm longer than four requests is guaranteed repeat traffic.
const BONDS: [f64; 4] = [0.70, 0.74, 0.78, 0.82];

/// How long to wait for a daemon's socket file to appear.
const SOCKET_WAIT: Duration = Duration::from_secs(30);

/// How long a client waits to connect once the socket exists.
const CONNECT_WAIT: Duration = Duration::from_secs(10);

/// How long a client waits for its response line. A daemon that blows
/// this budget counts as wedged — the violation the campaign exists to
/// catch.
const RESPONSE_WAIT: Duration = Duration::from_secs(60);

/// How long to wait for a subprocess daemon to exit after SIGTERM.
const EXIT_WAIT: Duration = Duration::from_secs(30);

/// Serve chaos campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeChaosOptions {
    /// Campaign seed; trial seeds derive from it.
    pub seed: u64,
    /// In-process storm trials.
    pub trials: usize,
    /// Requests per in-process trial.
    pub requests: usize,
    /// Daemon worker threads for in-process trials.
    pub workers: usize,
    /// Fault rate for in-process trials (pipeline + serve sites).
    pub fault_rate: f64,
    /// Scratch directory for daemon state dirs.
    pub scratch_dir: PathBuf,
    /// Flight-recorder dump directory for the daemons under test.
    pub flight_dir: Option<PathBuf>,
    /// Path to the `pcd` binary. When set, the SIGTERM/restart
    /// subprocess phase runs too; `pcd chaos --serve` passes its own
    /// path here.
    pub pcd_exe: Option<PathBuf>,
}

impl Default for ServeChaosOptions {
    fn default() -> Self {
        ServeChaosOptions {
            seed: 7,
            trials: 2,
            requests: 12,
            workers: 2,
            fault_rate: 0.05,
            scratch_dir: std::env::temp_dir().join("pcd-serve-chaos"),
            flight_dir: None,
            pcd_exe: None,
        }
    }
}

/// What the campaign observed. `violations` empty is the pass criterion;
/// everything else is evidence for the summary line and CI assertions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeChaosReport {
    /// In-process trials run.
    pub trials: usize,
    /// Requests sent across all phases.
    pub requests_sent: usize,
    /// `done` responses received.
    pub done_responses: usize,
    /// `done` responses served from the cache.
    pub cached_responses: usize,
    /// Typed shed responses received.
    pub shed_responses: usize,
    /// Cache entries deliberately corrupted on disk.
    pub corruptions_injected: usize,
    /// SIGTERM → restart cycles survived (subprocess phase).
    pub restarts: usize,
    /// Daemon-side cache hits (from summaries / stats ops).
    pub cache_hits: usize,
    /// Daemon-side cache misses.
    pub cache_misses: usize,
    /// Every broken promise, in the order observed.
    pub violations: Vec<String>,
}

impl ServeChaosReport {
    /// Whether the campaign passed: no violations.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// Cache hits over all cache lookups (0.0 when nothing was looked
    /// up). CI asserts this is positive: repeat traffic must hit.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Runs the campaign. In-process trials always run; the subprocess
/// SIGTERM/restart phase runs when
/// [`pcd_exe`](ServeChaosOptions::pcd_exe) is set.
pub fn run_serve_chaos(options: &ServeChaosOptions) -> ServeChaosReport {
    let mut report = ServeChaosReport {
        trials: options.trials,
        ..ServeChaosReport::default()
    };
    for trial in 0..options.trials {
        let trial_seed = options
            .seed
            .wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_trial_in_process(options, trial, trial_seed, &mut report);
    }
    if let Some(exe) = options.pcd_exe.clone() {
        run_subprocess_phase(options, &exe, &mut report);
    }
    report
}

fn h2_spec(id: String, bond: f64) -> JobSpec {
    JobSpec {
        id,
        benchmark: Benchmark::H2,
        bond: Some(bond),
        ratio: 1.0,
    }
}

fn next(rng: &mut u64) -> u64 {
    *rng = splitmix64(*rng);
    *rng
}

/// Reference outcomes per bond: `Some(energy_bits)` for a converged
/// reference, `None` when the reference itself quarantines under the
/// configured fault rate (the daemon must then quarantine too).
fn reference_outcomes(config: &ServeConfig) -> HashMap<u64, Option<u64>> {
    let mut reference = HashMap::new();
    for (i, bond) in BONDS.iter().enumerate() {
        let spec = h2_spec(format!("ref{i}"), *bond);
        let record = compute_record(&spec, 0, config, None);
        let outcome = match record.state {
            JobState::Done { energy_bits, .. } => Some(energy_bits),
            _ => None,
        };
        reference.insert(bond.to_bits(), outcome);
    }
    reference
}

fn run_trial_in_process(
    options: &ServeChaosOptions,
    trial: usize,
    trial_seed: u64,
    report: &mut ServeChaosReport,
) {
    let state_dir = options.scratch_dir.join(format!("trial{trial}"));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServeConfig {
        state_dir: state_dir.clone(),
        workers: options.workers.max(1),
        seed: trial_seed,
        fault_rate: options.fault_rate,
        flight_dir: options.flight_dir.clone(),
        ..ServeConfig::default()
    };
    let reference = reference_outcomes(&config);
    let socket = config.socket_path();
    let daemon = std::thread::spawn({
        let config = config.clone();
        move || run_serve(&config)
    });
    if !wait_for_path(&socket, SOCKET_WAIT) {
        report
            .violations
            .push(format!("trial {trial}: socket never appeared"));
    }
    let mut rng = splitmix64(trial_seed ^ 0x000C_4A05);
    for i in 0..options.requests {
        let bond = BONDS[(next(&mut rng) % BONDS.len() as u64) as usize];
        let spec = h2_spec(format!("t{trial}-r{i}"), bond);
        report.requests_sent += 1;
        match next(&mut rng) % 5 {
            0 => {
                // The client vanishes right after sending: the daemon
                // must cancel or absorb it, never wedge.
                if let Some(mut stream) = connect_socket(&socket, CONNECT_WAIT) {
                    let _ = writeln!(stream, "{}", spec.to_json_line());
                }
                continue;
            }
            1 => {
                // Corrupt this request's sealed cache entry (if any)
                // before asking again: the daemon must quarantine it and
                // recompute the same bits.
                let key = cache_key(&spec, config.seed, config.fault_rate);
                let entry = state_dir
                    .join("cache")
                    .join(format!("{key:016x}.{CACHE_EXT}"));
                if corrupt_file(&entry, next(&mut rng)) {
                    report.corruptions_injected += 1;
                }
            }
            _ => {}
        }
        match roundtrip(&socket, &spec.to_json_line()) {
            None => report.violations.push(format!(
                "trial {trial} request {i}: no response within {RESPONSE_WAIT:?} (wedged?)"
            )),
            Some(line) => check_response(trial, i, &line, bond, &reference, report),
        }
    }
    // Drain (the op itself can be shed by an injected accept fault —
    // retry until acknowledged).
    let mut drained = false;
    for _ in 0..50 {
        match roundtrip(&socket, "{\"op\":\"drain\"}") {
            Some(line) if response_status(&line).as_deref() == Some("draining") => {
                drained = true;
                break;
            }
            Some(_) => {}
            None => break,
        }
    }
    if !drained {
        report
            .violations
            .push(format!("trial {trial}: drain op never acknowledged"));
    }
    match daemon.join() {
        Ok(Ok(summary)) => {
            if !summary.drained {
                report
                    .violations
                    .push(format!("trial {trial}: daemon exited without draining"));
            }
            report.cache_hits += summary.cache_hits;
            report.cache_misses += summary.cache_misses;
        }
        Ok(Err(e)) => report
            .violations
            .push(format!("trial {trial}: daemon error: {e}")),
        Err(_) => report
            .violations
            .push(format!("trial {trial}: daemon thread panicked")),
    }
    // The sealed manifest must decode under the serve kind.
    match Checkpoint::read(config.manifest_path()) {
        Ok(mut ck) if ck.kind == KIND_SERVE_MANIFEST => {
            ck.kind = KIND_BATCH_MANIFEST.to_string();
            match decode_manifest(&ck) {
                Ok((meta, _)) => {
                    if meta.batch_seed != config.seed {
                        report.violations.push(format!(
                            "trial {trial}: sealed seed {} != {}",
                            meta.batch_seed, config.seed
                        ));
                    }
                }
                Err(e) => report
                    .violations
                    .push(format!("trial {trial}: sealed manifest undecodable: {e}")),
            }
        }
        Ok(ck) => report.violations.push(format!(
            "trial {trial}: manifest kind `{}`, expected `{KIND_SERVE_MANIFEST}`",
            ck.kind
        )),
        Err(e) => report
            .violations
            .push(format!("trial {trial}: sealed manifest unreadable: {e}")),
    }
}

fn check_response(
    trial: usize,
    i: usize,
    line: &str,
    bond: f64,
    reference: &HashMap<u64, Option<u64>>,
    report: &mut ServeChaosReport,
) {
    let Ok(v) = json::parse(line.trim()) else {
        report.violations.push(format!(
            "trial {trial} request {i}: unparseable response {line:?}"
        ));
        return;
    };
    match v.get("status").and_then(JsonValue::as_str) {
        Some("done") => {
            report.done_responses += 1;
            let cached = v
                .get("cached")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            if cached {
                report.cached_responses += 1;
                if stages_contain(&v, "scf") || stages_contain(&v, "vqe") {
                    report.violations.push(format!(
                        "trial {trial} request {i}: cache hit ran pipeline stages"
                    ));
                }
            }
            let bits = v
                .get("energy_bits")
                .and_then(JsonValue::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            match reference.get(&bond.to_bits()) {
                Some(Some(expected)) if bits != Some(*expected) => {
                    report.violations.push(format!(
                        "trial {trial} request {i}: energy bits {bits:?} diverge from reference {expected:016x}"
                    ));
                }
                Some(None) => report.violations.push(format!(
                    "trial {trial} request {i}: daemon served done where reference quarantines"
                )),
                _ => {}
            }
        }
        Some("shed") => report.shed_responses += 1,
        Some("quarantined") => {
            if matches!(reference.get(&bond.to_bits()), Some(Some(_))) {
                report.violations.push(format!(
                    "trial {trial} request {i}: daemon quarantined where reference converges"
                ));
            }
        }
        Some("pending") | Some("deadline") => {}
        other => report.violations.push(format!(
            "trial {trial} request {i}: unexpected response status {other:?}"
        )),
    }
}

fn stages_contain(v: &JsonValue, stage: &str) -> bool {
    match v.get("stages") {
        Some(JsonValue::Array(stages)) => stages.iter().any(|s| s.as_str() == Some(stage)),
        _ => false,
    }
}

fn response_status(line: &str) -> Option<String> {
    let v = json::parse(line.trim()).ok()?;
    Some(v.get("status")?.as_str()?.to_string())
}

fn response_field(line: &str, field: &str) -> Option<f64> {
    let v = json::parse(line.trim()).ok()?;
    match v.get(field)? {
        JsonValue::Number(n) => Some(*n),
        _ => None,
    }
}

fn wait_for_path(path: &Path, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while !path.exists() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    true
}

fn connect_socket(path: &Path, timeout: Duration) -> Option<UnixStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return Some(stream),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return None,
        }
    }
}

fn roundtrip(socket: &Path, line: &str) -> Option<String> {
    let mut stream = connect_socket(socket, CONNECT_WAIT)?;
    stream.set_read_timeout(Some(RESPONSE_WAIT)).ok()?;
    writeln!(stream, "{line}").ok()?;
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    match reader.read_line(&mut out) {
        Ok(n) if n > 0 => Some(out),
        _ => None,
    }
}

/// Flips one seeded byte of `path` in place. Returns whether a file was
/// actually corrupted (a missing entry is not).
fn corrupt_file(path: &Path, salt: u64) -> bool {
    let Ok(mut bytes) = std::fs::read(path) else {
        return false;
    };
    if bytes.is_empty() {
        return false;
    }
    let idx = (splitmix64(salt) as usize) % bytes.len();
    bytes[idx] ^= 0x20;
    std::fs::write(path, &bytes).is_ok()
}

// ---------------------------------------------------------------------
// Subprocess phase: SIGTERM, restart, cache-hit and corruption checks
// against a real `pcd serve` process.
// ---------------------------------------------------------------------

fn spawn_serve(exe: &Path, config: &ServeConfig) -> Option<Child> {
    Command::new(exe)
        .arg("serve")
        .arg("--state-dir")
        .arg(&config.state_dir)
        .arg("--seed")
        .arg(config.seed.to_string())
        .arg("--workers")
        .arg(config.workers.to_string())
        .arg("--fault-rate")
        .arg(config.fault_rate.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .ok()
}

fn wait_child(child: &mut Child, timeout: Duration) -> Option<i32> {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.code(),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
        }
    }
}

/// Decodes the sealed manifest: pending-record count plus the bonds of
/// every journaled request (by id, via `sent`). Journaled bonds are the
/// ones whose repeats must be cache hits after restart.
fn sealed_state(
    config: &ServeConfig,
    sent: &HashMap<String, f64>,
    report: &mut ServeChaosReport,
) -> (usize, HashSet<u64>) {
    let mut pending = 0;
    let mut sealed = HashSet::new();
    match Checkpoint::read(config.manifest_path()) {
        Ok(mut ck) if ck.kind == KIND_SERVE_MANIFEST => {
            ck.kind = KIND_BATCH_MANIFEST.to_string();
            match decode_manifest(&ck) {
                Ok((_, records)) => {
                    for record in records {
                        if !record.state.is_terminal() {
                            pending += 1;
                        }
                        if let Some(bond) = sent.get(&record.id) {
                            sealed.insert(bond.to_bits());
                        }
                    }
                }
                Err(e) => report
                    .violations
                    .push(format!("subprocess: sealed manifest undecodable: {e}")),
            }
        }
        Ok(ck) => report.violations.push(format!(
            "subprocess: manifest kind `{}`, expected `{KIND_SERVE_MANIFEST}`",
            ck.kind
        )),
        Err(e) => report.violations.push(format!(
            "subprocess: sealed manifest unreadable after SIGTERM: {e}"
        )),
    }
    (pending, sealed)
}

fn run_subprocess_phase(options: &ServeChaosOptions, exe: &Path, report: &mut ServeChaosReport) {
    let state_dir = options.scratch_dir.join("subprocess");
    let _ = std::fs::remove_dir_all(&state_dir);
    // Fault rate 0 here: the in-process trials own fault injection; this
    // phase isolates the kill/restart/cache contracts so an injected
    // accept shed cannot mask a missing cache hit.
    let config = ServeConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        seed: splitmix64(options.seed ^ 0x5AB5),
        fault_rate: 0.0,
        ..ServeConfig::default()
    };
    let reference = reference_outcomes(&config);
    let socket = config.socket_path();
    let mut sent: HashMap<String, f64> = HashMap::new();

    // --- Lifetime 1: burst, then SIGTERM mid-compute. ---
    let Some(mut child) = spawn_serve(exe, &config) else {
        report
            .violations
            .push("subprocess: failed to spawn pcd serve".to_string());
        return;
    };
    if !wait_for_path(&socket, SOCKET_WAIT) {
        report
            .violations
            .push("subprocess: socket never appeared".to_string());
        let _ = child.kill();
        let _ = child.wait();
        return;
    }
    // Hold the streams open: a vanished client is *cancelled*, a held
    // one caught by the drain is *pended* — the restart path under test.
    let mut held = Vec::new();
    for (i, bond) in BONDS.iter().enumerate() {
        let spec = h2_spec(format!("s1-{i}"), *bond);
        sent.insert(spec.id.clone(), *bond);
        if let Some(mut stream) = connect_socket(&socket, CONNECT_WAIT) {
            if writeln!(stream, "{}", spec.to_json_line()).is_ok() {
                held.push(stream);
                report.requests_sent += 1;
            }
        }
    }
    // Let the accept loop journal the burst, then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    if !sys::send_sigterm(child.id()) {
        report
            .violations
            .push("subprocess: SIGTERM delivery failed".to_string());
    }
    match wait_child(&mut child, EXIT_WAIT) {
        Some(30) => {}
        code => report.violations.push(format!(
            "subprocess: SIGTERM exit code {code:?}, expected 30 (drained)"
        )),
    }
    drop(held);
    report.restarts += 1;
    let (pending, sealed) = sealed_state(&config, &sent, report);
    if sealed.is_empty() {
        report
            .violations
            .push("subprocess: no requests journaled before SIGTERM".to_string());
    }

    // --- Lifetime 2: resume, repeats hit the cache, survive corruption,
    // drain cleanly. ---
    let Some(mut child) = spawn_serve(exe, &config) else {
        report
            .violations
            .push("subprocess: failed to respawn pcd serve".to_string());
        return;
    };
    if !wait_for_path(&socket, SOCKET_WAIT) {
        report
            .violations
            .push("subprocess: socket never reappeared after restart".to_string());
        let _ = child.kill();
        let _ = child.wait();
        return;
    }
    // Wait until the resumed tail has recomputed (its results seal the
    // cache the repeats below must hit).
    let deadline = Instant::now() + RESPONSE_WAIT;
    loop {
        let resumed = roundtrip(&socket, "{\"op\":\"stats\"}")
            .and_then(|line| response_field(&line, "resumed"))
            .unwrap_or(0.0) as usize;
        if resumed >= pending {
            break;
        }
        if Instant::now() > deadline {
            report
                .violations
                .push("subprocess: resumed tail never completed".to_string());
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Repeats of journaled requests must be O(1) cache hits.
    for (i, bond) in BONDS.iter().enumerate() {
        let spec = h2_spec(format!("s2-{i}"), *bond);
        sent.insert(spec.id.clone(), *bond);
        report.requests_sent += 1;
        let Some(line) = roundtrip(&socket, &spec.to_json_line()) else {
            report
                .violations
                .push(format!("subprocess repeat {i}: no response (wedged?)"));
            continue;
        };
        let Ok(v) = json::parse(line.trim()) else {
            report
                .violations
                .push(format!("subprocess repeat {i}: unparseable response"));
            continue;
        };
        if v.get("status").and_then(JsonValue::as_str) != Some("done") {
            report
                .violations
                .push(format!("subprocess repeat {i}: not done: {}", line.trim()));
            continue;
        }
        report.done_responses += 1;
        let cached = v
            .get("cached")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        if cached {
            report.cached_responses += 1;
        } else if sealed.contains(&bond.to_bits()) {
            report.violations.push(format!(
                "subprocess repeat {i}: journaled request recomputed instead of hitting the cache"
            ));
        }
        if cached && (stages_contain(&v, "scf") || stages_contain(&v, "vqe")) {
            report.violations.push(format!(
                "subprocess repeat {i}: cache hit ran pipeline stages"
            ));
        }
        let bits = v
            .get("energy_bits")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        if let Some(Some(expected)) = reference.get(&bond.to_bits()) {
            if bits != Some(*expected) {
                report.violations.push(format!(
                    "subprocess repeat {i}: energy bits diverge from reference"
                ));
            }
        }
    }
    // Corrupt a sealed entry on disk; the daemon must quarantine it and
    // recompute the same bits — never serve the corrupt seal.
    let bond = BONDS[0];
    let corrupt_spec = h2_spec("s2-corrupt".to_string(), bond);
    sent.insert(corrupt_spec.id.clone(), bond);
    let key = cache_key(&corrupt_spec, config.seed, config.fault_rate);
    let entry = state_dir
        .join("cache")
        .join(format!("{key:016x}.{CACHE_EXT}"));
    if corrupt_file(&entry, options.seed ^ 0x0B17_F11B) {
        report.corruptions_injected += 1;
        report.requests_sent += 1;
        match roundtrip(&socket, &corrupt_spec.to_json_line()) {
            None => report
                .violations
                .push("subprocess corruption probe: no response (wedged?)".to_string()),
            Some(line) => {
                check_response(usize::MAX, 0, &line, bond, &reference, report);
                let mut quarantined = entry.as_os_str().to_os_string();
                quarantined.push(".quarantined");
                if !PathBuf::from(quarantined).exists() {
                    report.violations.push(
                        "subprocess corruption probe: corrupt entry not quarantined aside"
                            .to_string(),
                    );
                }
            }
        }
    }
    // Grab the daemon-side cache stats before draining.
    if let Some(line) = roundtrip(&socket, "{\"op\":\"stats\"}") {
        report.cache_hits += response_field(&line, "cache_hits").unwrap_or(0.0) as usize;
        report.cache_misses += response_field(&line, "cache_misses").unwrap_or(0.0) as usize;
    }
    // Final drain via the op, then the sealed record-level replay check.
    let mut acked = false;
    for _ in 0..10 {
        if let Some(line) = roundtrip(&socket, "{\"op\":\"drain\"}") {
            if response_status(&line).as_deref() == Some("draining") {
                acked = true;
                break;
            }
        }
    }
    if !acked {
        report
            .violations
            .push("subprocess: final drain never acknowledged".to_string());
    }
    match wait_child(&mut child, EXIT_WAIT) {
        Some(30) => {}
        code => report.violations.push(format!(
            "subprocess: final drain exit code {code:?}, expected 30"
        )),
    }
    report.restarts += 1;
    // Every sealed Done record — including the resumed tail — must match
    // the in-process reference bit-for-bit: the restart replay contract.
    match Checkpoint::read(config.manifest_path()) {
        Ok(mut ck) if ck.kind == KIND_SERVE_MANIFEST => {
            ck.kind = KIND_BATCH_MANIFEST.to_string();
            match decode_manifest(&ck) {
                Ok((_, records)) => {
                    for record in &records {
                        let JobState::Done { energy_bits, .. } = record.state else {
                            continue;
                        };
                        let Some(bond) = sent.get(&record.id) else {
                            continue;
                        };
                        if reference.get(&bond.to_bits()) != Some(&Some(energy_bits)) {
                            report.violations.push(format!(
                                "subprocess: sealed record `{}` diverges from reference",
                                record.id
                            ));
                        }
                    }
                }
                Err(e) => report
                    .violations
                    .push(format!("subprocess: final manifest undecodable: {e}")),
            }
        }
        Ok(ck) => report.violations.push(format!(
            "subprocess: final manifest kind `{}`, expected `{KIND_SERVE_MANIFEST}`",
            ck.kind
        )),
        Err(e) => report
            .violations
            .push(format!("subprocess: final manifest unreadable: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_campaign_passes_clean() {
        let options = ServeChaosOptions {
            seed: 11,
            trials: 1,
            requests: 6,
            workers: 2,
            fault_rate: 0.0,
            scratch_dir: std::env::temp_dir()
                .join(format!("pcd-serve-chaos-clean-{}", std::process::id())),
            flight_dir: None,
            pcd_exe: None,
        };
        let report = run_serve_chaos(&options);
        assert!(report.pass(), "violations: {:?}", report.violations);
        assert!(report.done_responses > 0, "storm produced no answers");
        let _ = std::fs::remove_dir_all(&options.scratch_dir);
    }

    #[test]
    fn in_process_campaign_survives_fault_injection() {
        let options = ServeChaosOptions {
            seed: 23,
            trials: 1,
            requests: 8,
            workers: 2,
            fault_rate: 0.15,
            scratch_dir: std::env::temp_dir()
                .join(format!("pcd-serve-chaos-faulty-{}", std::process::id())),
            flight_dir: None,
            pcd_exe: None,
        };
        let report = run_serve_chaos(&options);
        assert!(report.pass(), "violations: {:?}", report.violations);
        let _ = std::fs::remove_dir_all(&options.scratch_dir);
    }
}
