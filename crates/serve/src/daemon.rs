//! The long-lived serve daemon: accept loop, admission, worker pool,
//! graceful drain, and the sealed restart manifest.
//!
//! # Execution model
//!
//! One accept thread owns the Unix listener and the admission decision;
//! `workers` threads pull work from a bounded two-lane queue (interactive
//! client requests ride the fast lane, resumed backlog the slow lane —
//! the same [`Lane`](supervisor::Lane) discipline as the batch engine).
//! Each job request runs as a single-job supervised batch, which buys
//! the whole robustness stack for free: panic isolation (`catch_unwind`
//! at the worker boundary — the watchdog that turns a panicking kernel
//! into a quarantine record instead of a dead daemon), the retry ladder,
//! circuit breakers, and per-request wall-clock deadlines via the
//! engine's drain budget.
//!
//! # Determinism by content, not arrival
//!
//! A batch keys each job's seed by *arrival index*; a daemon has no
//! stable arrival order, so serve keys by *content* instead: the
//! per-request engine seed is [`request_seed`]`(serve_seed,
//! cache_key(spec))`. The same request therefore computes the same bits
//! whether it arrives first or last, before or after a restart, from
//! the cache or recomputed after a quarantine — which is exactly the
//! property the chaos campaign's replay check asserts.
//!
//! # Drain and restart protocol
//!
//! SIGTERM (or the `drain` op) flips a flag; the accept loop stops
//! accepting; in-flight jobs finish; queued-but-unstarted requests are
//! answered `pending` and journaled as pending records. The daemon then
//! seals `serve.jobs` (the specs, in admission order) and
//! `serve.manifest` (a batch-manifest-schema checkpoint under the
//! `serve-manifest` kind) and exits. A restarted daemon replays the
//! pair, re-enqueues every pending record on the slow lane, and serves
//! new traffic immediately — zero downtime, bit-identical resume. A
//! corrupt manifest is quarantined aside and the daemon starts fresh:
//! an always-on front door must come up even when its own state is
//! damaged.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use resilience::{Checkpoint, CheckpointError, FaultPlan};
use supervisor::engine::InjectionPlan;
use supervisor::{
    decode_manifest, encode_manifest, parse_jobs, run_batch, BatchMeta, JobRecord, JobSpec,
    JobState, ShedPolicy, SupervisorConfig, KIND_BATCH_MANIFEST,
};

use crate::cache::{cache_key, Cache, CacheProbe, CachedResult};
use crate::protocol::{self, Request};
use crate::splitmix64;
use crate::sys;

/// Checkpoint kind tag for the sealed serve manifest. The payload schema
/// is exactly the batch manifest's; the distinct kind lets `pcd report`
/// render a serve section instead of a batch section.
pub const KIND_SERVE_MANIFEST: &str = "serve-manifest";

/// Sealed manifest filename inside the state dir.
pub const MANIFEST_NAME: &str = "serve.manifest";

/// Sealed jobs-journal filename inside the state dir (spec lines in
/// admission order; deliberately *not* `.jsonl` so a report scan does
/// not try to parse it as a trace).
pub const JOBS_NAME: &str = "serve.jobs";

/// Serve daemon configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// State directory: socket (by default), cache, sealed manifest.
    pub state_dir: PathBuf,
    /// Socket path override (default `<state_dir>/serve.sock`).
    pub socket: Option<PathBuf>,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Serve seed: the root of every content-keyed derivation.
    pub seed: u64,
    /// Admission cap on waiting requests (`0` = unbounded).
    pub queue_cap: usize,
    /// What to shed when arrivals exceed the cap.
    pub shed: ShedPolicy,
    /// Supervisor-level retries per job.
    pub max_retries: usize,
    /// Budget ticks per VQE slice (engine timeout grain).
    pub slice_ticks: u64,
    /// Slices an attempt may consume before timing out.
    pub max_slices: usize,
    /// Per-job circuit-breaker threshold.
    pub breaker_threshold: usize,
    /// Pipeline fault rate (chaos; also drives the CacheWrite/Accept
    /// serve fault plan).
    pub fault_rate: f64,
    /// Default per-request deadline when the request carries none.
    pub request_deadline: Option<Duration>,
    /// Stop accepting after this many connections (CI and tests; `None`
    /// = serve forever).
    pub max_requests: Option<usize>,
    /// Stop accepting after this long with no traffic and an empty
    /// queue (CI safety net; `None` = serve forever).
    pub idle_exit: Option<Duration>,
    /// Directory for flight-recorder dumps.
    pub flight_dir: Option<PathBuf>,
    /// Result-cache size cap in bytes (`None` = the cache only grows).
    /// Over-cap seals trigger deterministic second-chance eviction.
    pub cache_max_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: PathBuf::from("serve-state"),
            socket: None,
            workers: 2,
            seed: 42,
            queue_cap: 0,
            shed: ShedPolicy::RejectNew,
            max_retries: 3,
            slice_ticks: 0,
            max_slices: 64,
            breaker_threshold: 3,
            fault_rate: 0.0,
            request_deadline: None,
            max_requests: None,
            idle_exit: None,
            flight_dir: None,
            cache_max_bytes: None,
        }
    }
}

impl ServeConfig {
    /// The socket path this configuration binds.
    pub fn socket_path(&self) -> PathBuf {
        self.socket
            .clone()
            .unwrap_or_else(|| self.state_dir.join("serve.sock"))
    }

    /// The sealed manifest path.
    pub fn manifest_path(&self) -> PathBuf {
        self.state_dir.join(MANIFEST_NAME)
    }

    /// The sealed jobs-journal path.
    pub fn jobs_path(&self) -> PathBuf {
        self.state_dir.join(JOBS_NAME)
    }
}

/// A failure of the daemon itself (job failures end in quarantine
/// records and typed responses, never here).
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or socket I/O.
    Io {
        /// Path involved.
        path: String,
        /// Underlying error message.
        message: String,
    },
    /// The sealed restart state does not belong to this configuration
    /// (different seed, fault rate, or job ids).
    ManifestMismatch(String),
    /// A sealed artifact failed validation in a way quarantine cannot
    /// absorb.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, message } => write!(f, "serve I/O on {path}: {message}"),
            ServeError::ManifestMismatch(msg) => write!(f, "serve manifest mismatch: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "serve checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

fn io_err(path: &std::path::Path, e: &std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// What one daemon lifetime did, for the CLI summary and the chaos
/// harness's assertions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Job requests admitted (journaled).
    pub accepted: usize,
    /// Requests answered `done`.
    pub done: usize,
    /// Connections shed (cap or injected accept fault).
    pub shed: usize,
    /// Admitted requests whose client disconnected before compute (or
    /// before the response could be written).
    pub cancelled: usize,
    /// Requests quarantined after exhausting their retry budget.
    pub quarantined: usize,
    /// Requests answered from the sealed cache.
    pub cache_hits: usize,
    /// Requests that had to compute.
    pub cache_misses: usize,
    /// Corrupt cache entries quarantined aside.
    pub cache_quarantined: usize,
    /// Pending records recomputed from a prior lifetime's manifest.
    pub resumed: usize,
    /// Requests left pending in the sealed manifest (drain cut them).
    pub pending: usize,
    /// Whether a drain (SIGTERM or `drain` op) ended this lifetime, as
    /// opposed to `max_requests`/`idle_exit` running out.
    pub drained: bool,
}

/// The engine seed for a request: a pure function of the serve seed and
/// the request's content key — never of arrival order — so the same
/// request computes the same bits at any position in the traffic, before
/// or after a restart.
pub fn request_seed(serve_seed: u64, content_key: u64) -> u64 {
    splitmix64(serve_seed ^ content_key.rotate_left(17))
}

/// Computes one request through the supervised engine, exactly as the
/// daemon would on a cache miss. Public because the chaos campaign and
/// the drain/restart tests use it as the in-process reference: whatever
/// the daemon answers must match this, bit for bit.
pub fn compute_record(
    spec: &JobSpec,
    index: usize,
    config: &ServeConfig,
    deadline: Option<Duration>,
) -> JobRecord {
    let engine = SupervisorConfig {
        workers: 1,
        batch_seed: request_seed(config.seed, cache_key(spec, config.seed, config.fault_rate)),
        max_retries: config.max_retries,
        queue_cap: 0,
        shed: ShedPolicy::RejectNew,
        slice_ticks: config.slice_ticks,
        slice_wall: None,
        max_slices: config.max_slices,
        breaker_threshold: config.breaker_threshold,
        backoff: supervisor::BackoffPolicy::default(),
        pipeline_fault_rate: config.fault_rate,
        injection: InjectionPlan::none(),
        drain_after_ticks: None,
        deadline,
        ckpt_dir: None,
        flight_dir: config.flight_dir.clone(),
        progress_interval: None,
        progress_stderr: false,
    };
    match run_batch(std::slice::from_ref(spec), &engine) {
        Ok(mut report) => {
            let mut record = report.records.swap_remove(0);
            record.index = index;
            record
        }
        Err(e) => JobRecord {
            index,
            id: spec.id.clone(),
            state: JobState::Quarantined {
                attempts: 0,
                stage: "serve".to_string(),
                error: e.to_string(),
            },
            retries: 0,
            backoff_ms: 0,
        },
    }
}

/// One unit of worker work.
enum Work {
    /// An admitted client connection (request not yet read).
    Client(UnixStream),
    /// A pending journal entry from a prior lifetime's manifest.
    Resume(usize),
}

struct LaneState {
    fast: VecDeque<Work>,
    slow: VecDeque<Work>,
    closed: bool,
}

/// The daemon's bounded two-lane work queue. Client connections ride
/// the fast lane, resumed backlog the slow lane; capacity is enforced by
/// the (single-threaded) admission path, not here.
struct WorkQueue {
    state: Mutex<LaneState>,
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new(LaneState {
                fast: VecDeque::new(),
                slow: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, LaneState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push_fast(&self, work: Work) {
        self.lock().fast.push_back(work);
        self.ready.notify_one();
    }

    fn push_slow(&self, work: Work) {
        self.lock().slow.push_back(work);
        self.ready.notify_one();
    }

    /// Oldest waiting client connection, for `drop-oldest` eviction.
    /// Resumed backlog is never evicted — it is already journaled.
    fn evict_oldest_client(&self) -> Option<UnixStream> {
        let mut state = self.lock();
        match state.fast.pop_front() {
            Some(Work::Client(stream)) => Some(stream),
            Some(other) => {
                // Not a client (cannot happen today — resumes ride the
                // slow lane) — put it back rather than lose it.
                state.fast.push_front(other);
                None
            }
            None => None,
        }
    }

    fn len(&self) -> usize {
        let state = self.lock();
        state.fast.len() + state.slow.len()
    }

    fn pop(&self) -> Option<Work> {
        let mut state = self.lock();
        loop {
            if let Some(work) = state.fast.pop_front() {
                return Some(work);
            }
            if let Some(work) = state.slow.pop_front() {
                return Some(work);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// One journaled request: the spec in admission order, and its record
/// once known. `None` seals as a pending record.
struct Entry {
    spec: JobSpec,
    record: Option<JobRecord>,
}

#[derive(Default)]
struct Stats {
    accepted: AtomicUsize,
    done: AtomicUsize,
    shed: AtomicUsize,
    cancelled: AtomicUsize,
    quarantined: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    cache_quarantined: AtomicUsize,
    resumed: AtomicUsize,
}

impl Stats {
    fn bump(field: &AtomicUsize) -> usize {
        field.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn get(field: &AtomicUsize) -> usize {
        field.load(Ordering::Relaxed)
    }
}

struct Shared {
    config: ServeConfig,
    cache: Cache,
    queue: WorkQueue,
    journal: Mutex<Vec<Entry>>,
    stats: Stats,
    /// Serve-level fault plan: `CacheWrite` and `Accept` draws.
    serve_faults: Mutex<FaultPlan>,
    /// Set by the `drain` op (SIGTERM sets the process-global flag in
    /// [`sys`]; either one drains).
    drain: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || sys::drain_requested()
    }

    fn flight_dump(&self, reason: &str) {
        if let Some(dir) = &self.config.flight_dir {
            let _ = obs::flight::dump(dir, "serve", reason);
        }
    }
}

const READ_TIMEOUT: Duration = Duration::from_secs(10);
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn write_line(stream: &mut UnixStream, line: &str) -> bool {
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut bytes = line.as_bytes().to_vec();
    bytes.push(b'\n');
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}

fn read_request_line(stream: &UnixStream) -> Option<String> {
    stream.set_nonblocking(false).ok()?;
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line),
        Err(_) => None,
    }
}

/// Whether the client hung up without waiting for a response: a
/// nonblocking read that returns EOF means the peer closed its end,
/// while `WouldBlock` means "still connected, nothing new to say" — the
/// normal state of a client waiting for its result. The protocol is one
/// request line per connection (already consumed), so there are no
/// legitimate bytes for this probe to swallow.
fn client_disconnected(stream: &UnixStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let gone = matches!((&mut &*stream).read(&mut probe), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

/// Runs the daemon until a drain (SIGTERM / `drain` op) or a configured
/// stop (`max_requests`, `idle_exit`), then seals the restart state.
///
/// # Errors
///
/// [`ServeError`] on socket/state-dir I/O or a resume manifest that
/// belongs to a different configuration. A *corrupt* manifest is not an
/// error: it is quarantined aside and the daemon starts fresh.
pub fn run_serve(config: &ServeConfig) -> Result<ServeSummary, ServeError> {
    sys::reset_drain();
    sys::arm_sigterm_drain();
    std::fs::create_dir_all(&config.state_dir).map_err(|e| io_err(&config.state_dir, &e))?;
    if let Some(dir) = &config.flight_dir {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    }
    let cache = Cache::open(config.state_dir.join("cache"))
        .map_err(|e| io_err(&config.state_dir.join("cache"), &e))?
        .with_max_bytes(config.cache_max_bytes);

    let shared = Shared {
        config: config.clone(),
        cache,
        queue: WorkQueue::new(),
        journal: Mutex::new(Vec::new()),
        stats: Stats::default(),
        serve_faults: Mutex::new(FaultPlan::new(
            splitmix64(config.seed ^ 0x5E21_E5E2),
            config.fault_rate,
        )),
        drain: AtomicBool::new(false),
    };

    let resumed_pending = load_restart_state(&shared)?;
    for index in &resumed_pending {
        shared.queue.push_slow(Work::Resume(*index));
    }

    let socket_path = config.socket_path();
    let _ = std::fs::remove_file(&socket_path);
    let listener = UnixListener::bind(&socket_path).map_err(|e| io_err(&socket_path, &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err(&socket_path, &e))?;
    obs::event!(
        "serve.listening",
        socket = socket_path.display().to_string(),
        resumed = resumed_pending.len()
    );

    std::thread::scope(|scope| {
        let workers = config.workers.max(1);
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared));
        }
        accept_loop(&shared, &listener);
        shared.queue.close();
    });

    let _ = std::fs::remove_file(&socket_path);
    seal(&shared)?;

    let journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
    let pending = journal
        .iter()
        .filter(|e| !e.record.as_ref().is_some_and(|r| r.state.is_terminal()))
        .count();
    Ok(ServeSummary {
        accepted: Stats::get(&shared.stats.accepted),
        done: Stats::get(&shared.stats.done),
        shed: Stats::get(&shared.stats.shed),
        cancelled: Stats::get(&shared.stats.cancelled),
        quarantined: Stats::get(&shared.stats.quarantined),
        cache_hits: Stats::get(&shared.stats.cache_hits),
        cache_misses: Stats::get(&shared.stats.cache_misses),
        cache_quarantined: Stats::get(&shared.stats.cache_quarantined),
        resumed: Stats::get(&shared.stats.resumed),
        pending,
        drained: shared.draining(),
    })
}

/// Replays a prior lifetime's sealed state into the journal. Returns the
/// indices that must be recomputed (pending records). A corrupt seal is
/// quarantined aside (the daemon must come up); a seal that belongs to a
/// *different configuration* is a hard error (resuming it would not be
/// bit-identical).
fn load_restart_state(shared: &Shared) -> Result<Vec<usize>, ServeError> {
    let manifest_path = shared.config.manifest_path();
    let jobs_path = shared.config.jobs_path();
    if !manifest_path.exists() {
        return Ok(Vec::new());
    }
    let quarantine = |path: &std::path::Path, reason: String| {
        let mut target = path.as_os_str().to_os_string();
        target.push(".quarantined");
        obs::counter_add("serve.manifest.quarantined", 1);
        obs::event!(
            "serve.manifest_quarantine",
            path = path.display().to_string(),
            reason = reason
        );
        let _ = std::fs::rename(path, std::path::PathBuf::from(target));
    };
    let mut ck = match Checkpoint::read(&manifest_path) {
        Ok(ck) => ck,
        Err(e) => {
            quarantine(&manifest_path, e.to_string());
            return Ok(Vec::new());
        }
    };
    if ck.kind != KIND_SERVE_MANIFEST {
        quarantine(&manifest_path, format!("unexpected kind `{}`", ck.kind));
        return Ok(Vec::new());
    }
    // The payload schema is the batch manifest's; reuse its decoder.
    ck.kind = KIND_BATCH_MANIFEST.to_string();
    let (meta, records) = match decode_manifest(&ck) {
        Ok(decoded) => decoded,
        Err(e) => {
            quarantine(&manifest_path, e.to_string());
            return Ok(Vec::new());
        }
    };
    if meta.batch_seed != shared.config.seed {
        return Err(ServeError::ManifestMismatch(format!(
            "sealed seed {} != serve seed {}",
            meta.batch_seed, shared.config.seed
        )));
    }
    if meta.pipeline_fault_rate.to_bits() != shared.config.fault_rate.to_bits() {
        return Err(ServeError::ManifestMismatch(format!(
            "sealed fault rate {} != serve fault rate {}",
            meta.pipeline_fault_rate, shared.config.fault_rate
        )));
    }
    let jobs_text = std::fs::read_to_string(&jobs_path).map_err(|e| io_err(&jobs_path, &e))?;
    let specs = if records.is_empty() {
        Vec::new()
    } else {
        parse_jobs(&jobs_text).map_err(ServeError::ManifestMismatch)?
    };
    if specs.len() != records.len() {
        return Err(ServeError::ManifestMismatch(format!(
            "{} sealed specs vs {} sealed records",
            specs.len(),
            records.len()
        )));
    }
    let mut pending = Vec::new();
    let mut journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
    for (spec, record) in specs.into_iter().zip(records) {
        if spec.id != record.id {
            return Err(ServeError::ManifestMismatch(format!(
                "sealed spec `{}` vs record `{}` at index {}",
                spec.id, record.id, record.index
            )));
        }
        let index = record.index;
        let resolved = if record.state.is_terminal() {
            Some(record)
        } else {
            pending.push(index);
            None
        };
        journal.push(Entry {
            spec,
            record: resolved,
        });
    }
    Ok(pending)
}

fn accept_loop(shared: &Shared, listener: &UnixListener) {
    let mut connections = 0usize;
    let mut last_activity = Instant::now();
    loop {
        if shared.draining() {
            return;
        }
        if shared
            .config
            .max_requests
            .is_some_and(|max| connections >= max)
        {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                connections += 1;
                last_activity = Instant::now();
                admit_connection(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared
                    .config
                    .idle_exit
                    .is_some_and(|idle| last_activity.elapsed() > idle && shared.queue.len() == 0)
                {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                obs::event!("serve.accept_error", error = e.to_string());
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Admission: the [`FaultKind::Accept`](resilience::FaultKind) site may
/// force a shed; otherwise the queue cap and [`ShedPolicy`] decide.
/// Every shed is a *typed* response on the wire plus a counter, an obs
/// event, and a flight dump — never a silent drop.
fn admit_connection(shared: &Shared, stream: UnixStream) {
    let depth = shared.queue.len();
    let forced = {
        let mut plan = shared
            .serve_faults
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        plan.should_inject(resilience::FaultKind::Accept)
    };
    if forced {
        shed_connection(shared, stream, "accept-fault", depth);
        return;
    }
    let cap = shared.config.queue_cap;
    if cap > 0 && depth >= cap {
        match shared.config.shed {
            ShedPolicy::RejectNew => {
                shed_connection(shared, stream, ShedPolicy::RejectNew.name(), depth);
            }
            ShedPolicy::DropOldest => {
                if let Some(victim) = shared.queue.evict_oldest_client() {
                    shed_connection(shared, victim, ShedPolicy::DropOldest.name(), depth);
                    shared.queue.push_fast(Work::Client(stream));
                } else {
                    // Nothing evictable (the queue is all resumed
                    // backlog, which is already journaled) — the
                    // newcomer bounces instead.
                    shed_connection(shared, stream, ShedPolicy::RejectNew.name(), depth);
                }
            }
        }
        return;
    }
    shared.queue.push_fast(Work::Client(stream));
}

fn shed_connection(shared: &Shared, mut stream: UnixStream, policy: &str, depth: usize) {
    Stats::bump(&shared.stats.shed);
    obs::counter_add("serve.shed", 1);
    obs::counter_add(
        match policy {
            "reject-new" => "serve.shed.reject_new",
            "drop-oldest" => "serve.shed.drop_oldest",
            _ => "serve.shed.accept_fault",
        },
        1,
    );
    obs::event!("serve.shed", policy = policy, queue_depth = depth);
    shared.flight_dump("shed");
    let _ = write_line(&mut stream, &protocol::shed_response(policy, depth));
}

fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.queue.pop() {
        match work {
            Work::Client(stream) => {
                if shared.draining() {
                    pend_client(shared, stream);
                } else {
                    handle_client(shared, stream);
                }
            }
            Work::Resume(index) => {
                if shared.draining() {
                    // Stays pending in the journal; the next lifetime
                    // picks it up.
                    continue;
                }
                let spec = {
                    let journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
                    journal[index].spec.clone()
                };
                let (record, _) = compute_via_cache(shared, index, &spec, None);
                finish_entry(shared, index, record);
                Stats::bump(&shared.stats.resumed);
                obs::counter_add("serve.resumed", 1);
            }
        }
    }
}

/// Drain mode: the request is read and journaled as pending (so the
/// sealed manifest covers it) and the client gets a typed `pending`
/// response instead of an answer.
fn pend_client(shared: &Shared, mut stream: UnixStream) {
    let Some(line) = read_request_line(&stream) else {
        return;
    };
    match protocol::parse_request(&line) {
        Ok(Request::Job { spec, .. }) => {
            let id = spec.id.clone();
            let index = {
                let mut journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
                journal.push(Entry { spec, record: None });
                journal.len() - 1
            };
            Stats::bump(&shared.stats.accepted);
            obs::event!("serve.pending", id = id.clone(), index = index);
            let _ = write_line(&mut stream, &protocol::pending_response(&id));
        }
        Ok(Request::Ping) => {
            let _ = write_line(&mut stream, &protocol::pong_response());
        }
        Ok(Request::Stats) => {
            let _ = write_line(&mut stream, &stats_line(shared));
        }
        Ok(Request::Drain) => {
            let _ = write_line(&mut stream, &protocol::draining_response());
        }
        Err(msg) => {
            let _ = write_line(&mut stream, &protocol::error_response(&msg));
        }
    }
}

fn stats_line(shared: &Shared) -> String {
    protocol::stats_response(
        Stats::get(&shared.stats.accepted),
        Stats::get(&shared.stats.done),
        Stats::get(&shared.stats.shed),
        Stats::get(&shared.stats.cancelled),
        Stats::get(&shared.stats.quarantined),
        Stats::get(&shared.stats.cache_hits),
        Stats::get(&shared.stats.cache_misses),
        Stats::get(&shared.stats.cache_quarantined),
        Stats::get(&shared.stats.resumed),
    )
}

fn handle_client(shared: &Shared, mut stream: UnixStream) {
    let Some(line) = read_request_line(&stream) else {
        obs::counter_add("serve.bad_request", 1);
        return;
    };
    let request = match protocol::parse_request(&line) {
        Ok(request) => request,
        Err(msg) => {
            obs::counter_add("serve.bad_request", 1);
            let _ = write_line(&mut stream, &protocol::error_response(&msg));
            return;
        }
    };
    match request {
        Request::Ping => {
            let _ = write_line(&mut stream, &protocol::pong_response());
        }
        Request::Stats => {
            let _ = write_line(&mut stream, &stats_line(shared));
        }
        Request::Drain => {
            shared.drain.store(true, Ordering::SeqCst);
            obs::event!("serve.drain_requested", source = "op");
            let _ = write_line(&mut stream, &protocol::draining_response());
        }
        Request::Job { spec, deadline } => {
            let deadline = deadline.or(shared.config.request_deadline);
            let index = {
                let mut journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
                journal.push(Entry {
                    spec: spec.clone(),
                    record: None,
                });
                journal.len() - 1
            };
            Stats::bump(&shared.stats.accepted);
            obs::counter_add("serve.accepted", 1);
            if client_disconnected(&stream) {
                // Cancelled while queued: the job never spends compute.
                // Journaled as shed — it never ran and never will.
                Stats::bump(&shared.stats.cancelled);
                obs::counter_add("serve.cancelled", 1);
                obs::event!("serve.cancelled", id = spec.id.clone(), index = index);
                let id = spec.id.clone();
                finish_entry(
                    shared,
                    index,
                    JobRecord {
                        index,
                        id,
                        state: JobState::Shed,
                        retries: 0,
                        backoff_ms: 0,
                    },
                );
                return;
            }
            let (record, cached) = compute_via_cache(shared, index, &spec, deadline);
            let response = match &record.state {
                JobState::Done { .. } => {
                    Stats::bump(&shared.stats.done);
                    protocol::done_response(&record, cached)
                }
                JobState::Quarantined { .. } => {
                    Stats::bump(&shared.stats.quarantined);
                    protocol::quarantined_response(&record)
                }
                JobState::Pending { .. } => protocol::deadline_response(&record.id),
                JobState::Shed => protocol::shed_response(shared.config.shed.name(), 0),
            };
            finish_entry(shared, index, record);
            if !write_line(&mut stream, &response) {
                Stats::bump(&shared.stats.cancelled);
                obs::counter_add("serve.cancelled", 1);
            }
        }
    }
}

fn finish_entry(shared: &Shared, index: usize, record: JobRecord) {
    let mut journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
    journal[index].record = Some(record);
}

/// The cache-or-compute path every job request takes. The probe
/// quarantines corrupt entries itself; a miss (cold or quarantined)
/// computes through [`compute_record`] and reseals — with the
/// `CacheWrite` fault site deciding whether the seal is torn.
fn compute_via_cache(
    shared: &Shared,
    index: usize,
    spec: &JobSpec,
    deadline: Option<Duration>,
) -> (JobRecord, bool) {
    let key = cache_key(spec, shared.config.seed, shared.config.fault_rate);
    match shared.cache.probe(key) {
        CacheProbe::Hit(result) => {
            Stats::bump(&shared.stats.cache_hits);
            let record = JobRecord {
                index,
                id: spec.id.clone(),
                state: result.to_state(),
                retries: 0,
                backoff_ms: 0,
            };
            return (record, true);
        }
        CacheProbe::Quarantined => {
            Stats::bump(&shared.stats.cache_quarantined);
            shared.flight_dump("cache-quarantine");
            Stats::bump(&shared.stats.cache_misses);
        }
        CacheProbe::Miss => {
            Stats::bump(&shared.stats.cache_misses);
        }
    }
    obs::counter_add("serve.cache.miss", 1);
    let record = compute_record(spec, index, &shared.config, deadline);
    if let Some(result) = CachedResult::from_state(&record.state) {
        let mut plan = shared
            .serve_faults
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shared.cache.store(key, result, &mut plan);
    }
    (record, false)
}

/// Seals the restart state: `serve.jobs` (specs, admission order) and
/// `serve.manifest` (batch-manifest schema under the serve kind), both
/// through the atomic write path. Entries without a record seal as
/// pending and are recomputed by the next lifetime.
fn seal(shared: &Shared) -> Result<(), ServeError> {
    let journal = shared.journal.lock().unwrap_or_else(|e| e.into_inner());
    let jobs_text: String = journal
        .iter()
        .map(|e| format!("{}\n", e.spec.to_json_line()))
        .collect();
    let jobs_path = shared.config.jobs_path();
    obs::atomic_write(&jobs_path, jobs_text.as_bytes()).map_err(|e| io_err(&jobs_path, &e))?;
    let records: Vec<JobRecord> = journal
        .iter()
        .enumerate()
        .map(|(index, entry)| match &entry.record {
            Some(record) => record.clone(),
            None => JobRecord {
                index,
                id: entry.spec.id.clone(),
                state: JobState::Pending {
                    attempt: 0,
                    slices_used: 0,
                    checkpoint: None,
                    breaker: [0; 3],
                },
                retries: 0,
                backoff_ms: 0,
            },
        })
        .collect();
    let meta = BatchMeta {
        batch_seed: shared.config.seed,
        jobs: records.len(),
        pipeline_fault_rate: shared.config.fault_rate,
    };
    let mut ck = encode_manifest(&meta, &records);
    ck.kind = KIND_SERVE_MANIFEST.to_string();
    let manifest_path = shared.config.manifest_path();
    ck.write(&manifest_path)?;
    obs::event!(
        "serve.sealed",
        manifest = manifest_path.display().to_string(),
        requests = records.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chem::Benchmark;
    use std::io::{BufRead, BufReader};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pcd-daemon-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn roundtrip(socket: &std::path::Path, line: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut stream = loop {
            match UnixStream::connect(socket) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                    let _ = e;
                }
                Err(e) => panic!("connect: {e}"),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let mut payload = line.as_bytes().to_vec();
        payload.push(b'\n');
        stream.write_all(&payload).unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out
    }

    #[test]
    fn request_seed_is_content_pure() {
        assert_eq!(request_seed(7, 99), request_seed(7, 99));
        assert_ne!(request_seed(7, 99), request_seed(8, 99));
        assert_ne!(request_seed(7, 99), request_seed(7, 100));
    }

    #[test]
    fn compute_record_is_index_independent_in_outcome() {
        let spec = JobSpec {
            id: "a".to_string(),
            benchmark: Benchmark::H2,
            bond: Some(0.74),
            ratio: 1.0,
        };
        let config = ServeConfig {
            state_dir: scratch("idx"),
            ..ServeConfig::default()
        };
        let r0 = compute_record(&spec, 0, &config, None);
        let r5 = compute_record(&spec, 5, &config, None);
        assert_eq!(r0.state, r5.state, "outcome keyed by content, not index");
        assert_eq!(r5.index, 5);
    }

    #[test]
    fn serve_round_trip_with_cache_hit_and_drain() {
        let config = ServeConfig {
            state_dir: scratch("roundtrip"),
            workers: 2,
            seed: 99,
            ..ServeConfig::default()
        };
        let socket = config.socket_path();
        let daemon = std::thread::spawn({
            let config = config.clone();
            move || run_serve(&config)
        });
        let pong = roundtrip(&socket, "{\"op\":\"ping\"}");
        assert!(pong.contains("pong"), "got {pong}");
        let job = "{\"id\":\"a\",\"molecule\":\"H2\",\"bond\":0.74,\"ratio\":1.0}";
        let first = roundtrip(&socket, job);
        assert!(first.contains("\"status\":\"done\""), "got {first}");
        assert!(first.contains("\"cached\":false"), "got {first}");
        let second = roundtrip(
            &socket,
            "{\"id\":\"b\",\"molecule\":\"H2\",\"bond\":0.74,\"ratio\":1.0}",
        );
        assert!(
            second.contains("\"cached\":true"),
            "repeat must hit: {second}"
        );
        assert!(
            second.contains("\"stages\":[\"cache\"]"),
            "cache hit must skip stages: {second}"
        );
        let drain = roundtrip(&socket, "{\"op\":\"drain\"}");
        assert!(drain.contains("draining"), "got {drain}");
        let summary = daemon.join().unwrap().unwrap();
        assert!(summary.drained);
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.done, 2);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.pending, 0);
        // The sealed manifest replays: a second lifetime starts with the
        // journal intact and no pending work.
        assert!(config.manifest_path().exists());
        let reread = run_serve(&ServeConfig {
            max_requests: Some(0),
            ..config.clone()
        })
        .unwrap();
        assert_eq!(reread.resumed, 0);
        assert!(!reread.drained);
        let _ = std::fs::remove_dir_all(&config.state_dir);
    }
}
