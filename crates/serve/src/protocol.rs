//! The serve wire protocol: JSONL over a Unix socket, one request and
//! one response line per connection.
//!
//! A job request is the same spec object `pcd batch` reads from a jobs
//! file (`{"id":..,"molecule":..,"bond":..,"ratio":..}`), optionally
//! extended with `deadline_ms`. Control requests carry an `"op"` field
//! instead (`ping`, `stats`, `drain`). Every response is a single JSON
//! object whose `status` field is the type tag — a client never has to
//! guess whether it was shed, quarantined, served from cache, or cut by
//! a deadline:
//!
//! | `status`      | meaning                                            |
//! |---------------|----------------------------------------------------|
//! | `done`        | converged result (`cached` tells you which path)   |
//! | `shed`        | admission refused the request (typed, not a drop)  |
//! | `quarantined` | the job exhausted its retry budget                 |
//! | `deadline`    | the per-request deadline cut the job; it resumes   |
//! | `pending`     | a drain caught the request queued; it resumes      |
//! | `error`       | the request line itself was malformed              |
//! | `draining`    | drain acknowledged                                 |
//! | `stats`, `pong` | control responses                                |

use std::collections::BTreeMap;
use std::time::Duration;

use obs::json::{self, JsonValue};
use supervisor::{parse_jobs, JobRecord, JobSpec, JobState};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one co-design job.
    Job {
        /// The job spec, exactly as `pcd batch` would parse it.
        spec: JobSpec,
        /// Per-request deadline, from `deadline_ms`.
        deadline: Option<Duration>,
    },
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Graceful drain: stop accepting, seal the manifest, exit 30.
    Drain,
}

/// Parses one request line.
///
/// # Errors
///
/// A message suitable for an `error` response: malformed JSON, an
/// unknown `op`, or a bad job spec.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
    if let Some(op) = value.get("op").and_then(JsonValue::as_str) {
        return match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            other => Err(format!("unknown op `{other}`")),
        };
    }
    let deadline = value
        .get("deadline_ms")
        .and_then(JsonValue::as_u64)
        .map(Duration::from_millis);
    let specs = parse_jobs(line)?;
    let [spec] = specs.as_slice() else {
        return Err("request must be exactly one job line".to_string());
    };
    Ok(Request::Job {
        spec: spec.clone(),
        deadline,
    })
}

fn obj(fields: Vec<(&str, JsonValue)>) -> String {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
    .to_string()
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn n(v: usize) -> JsonValue {
    JsonValue::Number(v as f64)
}

/// The `done` response for a record, tagging whether the result came
/// from the cache. `stages` is the trace a client can assert on: a cache
/// hit lists only `"cache"` — no SCF, no VQE — which is the O(1)
/// repeat-traffic contract.
pub fn done_response(record: &JobRecord, cached: bool) -> String {
    let JobState::Done {
        energy_bits,
        iterations,
        evaluations,
        scf_retries,
        sabre_fallback,
    } = &record.state
    else {
        return error_response("internal: done_response on a non-done record");
    };
    let stages = if cached {
        vec![s("cache")]
    } else {
        vec![s("scf"), s("ansatz"), s("vqe"), s("compile")]
    };
    obj(vec![
        ("status", s("done")),
        ("id", s(&record.id)),
        ("cached", JsonValue::Bool(cached)),
        ("stages", JsonValue::Array(stages)),
        ("energy", JsonValue::Number(f64::from_bits(*energy_bits))),
        ("energy_bits", s(&format!("{energy_bits:016x}"))),
        ("iterations", n(*iterations)),
        ("evaluations", n(*evaluations)),
        ("scf_retries", n(*scf_retries)),
        ("sabre_fallback", JsonValue::Bool(*sabre_fallback)),
        ("retries", n(record.retries)),
    ])
}

/// The typed load-shed response. `policy` names what shed the request
/// (`reject-new`, `drop-oldest`, or `accept-fault` for an injected
/// accept failure); `queue_depth` is the depth that triggered it.
pub fn shed_response(policy: &str, queue_depth: usize) -> String {
    obj(vec![
        ("status", s("shed")),
        ("policy", s(policy)),
        ("queue_depth", n(queue_depth)),
    ])
}

/// The quarantine response for a job that exhausted its retry budget.
pub fn quarantined_response(record: &JobRecord) -> String {
    let JobState::Quarantined {
        attempts,
        stage,
        error,
    } = &record.state
    else {
        return error_response("internal: quarantined_response on a non-quarantined record");
    };
    obj(vec![
        ("status", s("quarantined")),
        ("id", s(&record.id)),
        ("attempts", n(*attempts)),
        ("stage", s(stage)),
        ("error", s(error)),
    ])
}

/// The deadline response: the per-request deadline cut the job mid-run;
/// it stays journaled as pending and resumes after a restart.
pub fn deadline_response(id: &str) -> String {
    obj(vec![("status", s("deadline")), ("id", s(id))])
}

/// The pending response: a drain caught the request before it started;
/// it is sealed into the manifest and recomputed after restart.
pub fn pending_response(id: &str) -> String {
    obj(vec![("status", s("pending")), ("id", s(id))])
}

/// The malformed-request response.
pub fn error_response(message: &str) -> String {
    obj(vec![("status", s("error")), ("error", s(message))])
}

/// Drain acknowledgement.
pub fn draining_response() -> String {
    obj(vec![("status", s("draining"))])
}

/// Liveness response.
pub fn pong_response() -> String {
    obj(vec![("status", s("pong"))])
}

/// The stats response. Field names match the obs counters they mirror.
#[allow(clippy::too_many_arguments)]
pub fn stats_response(
    accepted: usize,
    done: usize,
    shed: usize,
    cancelled: usize,
    quarantined: usize,
    cache_hits: usize,
    cache_misses: usize,
    cache_quarantined: usize,
    resumed: usize,
) -> String {
    obj(vec![
        ("status", s("stats")),
        ("accepted", n(accepted)),
        ("done", n(done)),
        ("shed", n(shed)),
        ("cancelled", n(cancelled)),
        ("quarantined", n(quarantined)),
        ("cache_hits", n(cache_hits)),
        ("cache_misses", n(cache_misses)),
        ("cache_quarantined", n(cache_quarantined)),
        ("resumed", n(resumed)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chem::Benchmark;

    #[test]
    fn job_requests_parse_like_batch_lines() {
        let req = parse_request(
            "{\"id\":\"a\",\"molecule\":\"H2\",\"bond\":0.74,\"ratio\":1.0,\"deadline_ms\":250}",
        )
        .unwrap();
        let Request::Job { spec, deadline } = req else {
            panic!("expected a job");
        };
        assert_eq!(spec.id, "a");
        assert_eq!(spec.benchmark, Benchmark::H2);
        assert_eq!(deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn ops_parse() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"op\":\"drain\"}").unwrap(), Request::Drain);
        assert!(parse_request("{\"op\":\"reboot\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"molecule\":\"Xe\"}").is_err());
    }

    #[test]
    fn responses_are_single_json_lines_with_status_tags() {
        use obs::json;
        for (line, status) in [
            (shed_response("reject-new", 4), "shed"),
            (deadline_response("a"), "deadline"),
            (pending_response("a"), "pending"),
            (error_response("nope"), "error"),
            (draining_response(), "draining"),
            (pong_response(), "pong"),
            (stats_response(1, 2, 3, 4, 5, 6, 7, 8, 9), "stats"),
        ] {
            assert!(!line.contains('\n'));
            let v = json::parse(&line).unwrap();
            assert_eq!(v.get("status").and_then(|s| s.as_str()), Some(status));
        }
    }

    #[test]
    fn done_response_distinguishes_cache_hits() {
        use obs::json;
        let record = JobRecord {
            index: 0,
            id: "a".to_string(),
            state: JobState::Done {
                energy_bits: (-1.1372f64).to_bits(),
                iterations: 4,
                evaluations: 16,
                scf_retries: 0,
                sabre_fallback: false,
            },
            retries: 0,
            backoff_ms: 0,
        };
        let hit = json::parse(&done_response(&record, true)).unwrap();
        assert_eq!(hit.get("cached").and_then(|v| v.as_bool()), Some(true));
        let stages = format!("{:?}", hit.get("stages"));
        assert!(stages.contains("cache") && !stages.contains("scf") && !stages.contains("vqe"));
        let miss = json::parse(&done_response(&record, false)).unwrap();
        assert_eq!(miss.get("cached").and_then(|v| v.as_bool()), Some(false));
        assert!(format!("{:?}", miss.get("stages")).contains("vqe"));
        assert_eq!(
            hit.get("energy_bits").and_then(|v| v.as_str()),
            Some(format!("{:016x}", (-1.1372f64).to_bits()).as_str())
        );
    }
}
