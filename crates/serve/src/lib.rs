//! The always-on co-design daemon behind `pcd serve`.
//!
//! The supervisor crate made one *batch* survivable; this crate makes the
//! *process* survivable. `pcd serve` listens on a Unix socket for JSONL
//! job requests (the same spec lines `pcd batch` reads), runs each one
//! through the supervised engine, and is hardened for continuous
//! operation:
//!
//! - **Admission control** ([`daemon`]) — a bounded two-lane request
//!   queue reusing the supervisor's [`ShedPolicy`](supervisor::ShedPolicy)
//!   and [`Lane`](supervisor::Lane): interactive requests ride the fast
//!   lane, resumed backlog the slow lane, and when arrivals exceed the
//!   cap the daemon answers with a *typed* shed response — never a silent
//!   drop. Per-request deadlines propagate into the engine's wall-clock
//!   drain, and a client that disconnects while queued is cancelled
//!   before its job spends any compute.
//! - **Content-addressed result cache** ([`cache`]) — a request's
//!   identity (molecule, basis, bond bits, compression ratio bits,
//!   topology, serve seed, fault rate) hashes to a CRC-sealed cache
//!   entry. Repeat traffic is O(1): a hit answers from the sealed entry
//!   without touching SCF or VQE. A truncated or bit-flipped entry fails
//!   its CRC *before* being trusted, is quarantined aside as
//!   `*.quarantined` (mirroring shard-manifest handling), and the request
//!   is recomputed — corruption degrades throughput, never correctness.
//! - **Zero-downtime restart** ([`daemon`]) — SIGTERM (or a `drain` op)
//!   gracefully drains: in-flight jobs finish, queued requests are
//!   journaled as `pending`, and the daemon seals a `serve.manifest` in
//!   the batch-manifest schema. A restarted daemon replays the manifest,
//!   recomputes the pending tail through the same content-keyed path, and
//!   produces records bit-identical to an uninterrupted run.
//! - **Chaos campaign** ([`chaos`]) — `pcd chaos --serve` runs seeded
//!   kill/corrupt/disconnect storms against real daemon subprocesses and
//!   asserts the daemon never wedges, never serves a corrupt cached
//!   result, and replays bit-identically to an in-process reference.
//!
//! Determinism carries over from the batch engine, but keyed by
//! *content* instead of arrival order: a request's outcome is a pure
//! function of `(serve seed, spec)`, so a cache hit, a recompute after
//! quarantine, and a post-restart resume all produce the same bits.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod chaos;
pub mod daemon;
pub mod protocol;
pub mod sys;

pub use cache::{cache_key, Cache, CacheProbe, CachedResult, CACHE_EXT, KIND_SERVE_CACHE};
pub use chaos::{run_serve_chaos, ServeChaosOptions, ServeChaosReport};
pub use daemon::{
    compute_record, request_seed, run_serve, ServeConfig, ServeError, ServeSummary,
    KIND_SERVE_MANIFEST,
};
pub use protocol::{parse_request, Request};

/// SplitMix64 finalizer — the same constants as the supervisor's and the
/// fault plan's mixers, so the whole fleet shares one notion of
/// "decorrelate this key".
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
