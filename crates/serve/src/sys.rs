//! Minimal signal shims for the daemon's graceful-drain path.
//!
//! The workspace is zero-dependency and `std` exposes no signal API, but
//! `std` already links the platform libc on Unix — declaring the two
//! symbols we need (`signal` to install a handler, `kill` to send
//! SIGTERM from the chaos harness) costs nothing and keeps the build
//! hermetic.
//!
//! The handler is async-signal-safe by construction: it stores one
//! atomic flag and returns. Everything else — closing the listener,
//! pending queued work, sealing the manifest — happens on the daemon's
//! own threads when they next observe the flag.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX SIGTERM.
pub const SIGTERM: i32 = 15;

static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
}

extern "C" fn on_sigterm(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM → drain-flag handler for this process. Safe to
/// call repeatedly; later installs are no-ops as far as behavior goes.
pub fn arm_sigterm_drain() {
    // SAFETY: `signal` with a function pointer whose ABI matches
    // `void (*)(int)` is the documented libc contract; the handler only
    // touches one atomic.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

/// Whether a drain has been requested (SIGTERM or [`request_drain`]).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Requests a drain from inside the process (the socket `drain` op and
/// tests use this; SIGTERM uses the handler).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Clears the drain flag. The daemon calls this on startup so a restart
/// in the same process (tests, in-process chaos trials) starts clean.
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

/// Sends SIGTERM to `pid` (the chaos harness's graceful-kill primitive —
/// `std`'s `Child::kill` is SIGKILL and would skip the drain path).
pub fn send_sigterm(pid: u32) -> bool {
    // SAFETY: plain syscall wrapper; an invalid pid returns -1.
    unsafe { kill(pid as i32, SIGTERM) == 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_round_trips() {
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }

    #[test]
    fn sigterm_to_nonexistent_pid_fails_cleanly() {
        // pid 0 would signal our own process group; use an (almost
        // certainly) unused high pid instead.
        assert!(!send_sigterm(4_000_000));
    }

    #[test]
    fn handler_installs_without_error() {
        arm_sigterm_drain();
        arm_sigterm_drain();
    }
}
