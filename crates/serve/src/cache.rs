//! Content-addressed, CRC-sealed result cache.
//!
//! A request's identity — molecule, basis set, bond length bits,
//! compression ratio bits, topology, plus the serve seed and fault rate
//! the result would be computed under — hashes to a 64-bit key; the key
//! names a `<key>.cache` file holding the converged result inside the
//! versioned, CRC-guarded checkpoint container. The cache is an
//! *accelerator*, never a source of truth:
//!
//! - a **hit** answers without touching SCF or VQE (the O(1) path the
//!   "millions of users" shape depends on);
//! - a **corrupt entry** (truncated, bit-flipped, torn write) fails its
//!   CRC before any field is trusted, is renamed aside to
//!   `<key>.cache.quarantined` — mirroring shard-manifest quarantine in
//!   `supervisor::merge` — and the caller recomputes;
//! - a **write** goes through the atomic temp-file + fsync + rename
//!   path, except when the [`FaultKind::CacheWrite`] injection site
//!   orders a torn write, which the next read then detects and
//!   quarantines (the end-to-end property `pcd chaos --serve` asserts).
//!
//! Key hashing is a pure function of the request fields — stable across
//! runs, thread counts, and processes — pinned by a proptest.

use std::path::{Path, PathBuf};

use obs::json::JsonValue;
use resilience::{Checkpoint, FaultKind, FaultPlan};
use supervisor::{JobSpec, JobState};

use crate::splitmix64;

/// Checkpoint kind tag for cache entries.
pub const KIND_SERVE_CACHE: &str = "serve-cache";

/// File extension for cache entries. Deliberately *not* one of the
/// extensions `pcd report` scans, so a report over a serve state dir
/// aggregates the manifest and flight dumps without parsing thousands of
/// cache entries.
pub const CACHE_EXT: &str = "cache";

/// The basis set every benchmark runs in (part of the cache identity so
/// a future multi-basis serve cannot alias entries).
const BASIS: &str = "sto-3g";

/// 64-bit content hash of a request's identity under a serve
/// configuration. Two requests collide only if they would compute the
/// identical result: the key covers the molecule, basis, exact bond
/// length bits, exact compression ratio bits, the topology the compiler
/// targets, and the `(seed, fault_rate)` pair that parameterizes the
/// engine's deterministic retry/fault draws.
pub fn cache_key(spec: &JobSpec, serve_seed: u64, fault_rate: f64) -> u64 {
    // Same X-Tree sizing rule as the engine's compile stage.
    let xtree_nodes = spec.benchmark.expected_qubits().max(5) + 1;
    let identity = format!(
        "{}|{}|{:016x}|{:016x}|xtree{}|{}|{:016x}",
        spec.benchmark.name(),
        BASIS,
        spec.bond_length().to_bits(),
        spec.ratio.to_bits(),
        xtree_nodes,
        serve_seed,
        fault_rate.to_bits(),
    );
    let mut h = splitmix64(0x5EED_CAFE ^ serve_seed);
    for byte in identity.bytes() {
        h = splitmix64(h ^ u64::from(byte));
    }
    h
}

/// A converged result as the cache stores it — exactly the fields of a
/// `Done` [`JobState`], so a hit reconstructs the record bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedResult {
    /// VQE energy as raw IEEE-754 bits.
    pub energy_bits: u64,
    /// Optimizer outer iterations.
    pub iterations: usize,
    /// Objective evaluations.
    pub evaluations: usize,
    /// SCF ladder retries.
    pub scf_retries: usize,
    /// Whether the compiler fell back to SABRE.
    pub sabre_fallback: bool,
}

impl CachedResult {
    /// Extracts the cacheable fields from a terminal `Done` state.
    pub fn from_state(state: &JobState) -> Option<CachedResult> {
        match state {
            JobState::Done {
                energy_bits,
                iterations,
                evaluations,
                scf_retries,
                sabre_fallback,
            } => Some(CachedResult {
                energy_bits: *energy_bits,
                iterations: *iterations,
                evaluations: *evaluations,
                scf_retries: *scf_retries,
                sabre_fallback: *sabre_fallback,
            }),
            _ => None,
        }
    }

    /// Rebuilds the `Done` state a hit answers with.
    pub fn to_state(self) -> JobState {
        JobState::Done {
            energy_bits: self.energy_bits,
            iterations: self.iterations,
            evaluations: self.evaluations,
            scf_retries: self.scf_retries,
            sabre_fallback: self.sabre_fallback,
        }
    }
}

fn field_u64(record: &JsonValue, field: &str) -> Option<u64> {
    record.get(field)?.as_u64()
}

fn field_bits(record: &JsonValue, field: &str) -> Option<u64> {
    let s = record.get(field)?.as_str()?;
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// What a [`Cache::probe`] found: a verified entry, nothing, or a
/// corrupt entry that was just quarantined aside (the caller recomputes
/// on the latter two, but only the last one is a robustness event worth
/// counting separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum CacheProbe {
    /// A sealed entry verified and decoded.
    Hit(CachedResult),
    /// No entry for this key.
    Miss,
    /// A corrupt entry was detected and moved aside.
    Quarantined,
}

/// The clock state behind second-chance eviction: which keys were
/// referenced since the sweep last passed them, and where the sweep
/// hand stands. Shared across clones so every handle sees one clock.
#[derive(Debug, Default)]
struct ClockState {
    referenced: std::collections::BTreeSet<u64>,
    hand: u64,
}

/// The on-disk cache: one sealed entry per key under `dir`, optionally
/// capped by total bytes with deterministic second-chance eviction.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    clock: std::sync::Arc<std::sync::Mutex<ClockState>>,
}

impl Cache {
    /// Opens (creating if needed) the cache directory, uncapped.
    ///
    /// # Errors
    ///
    /// The `create_dir_all` failure, if any.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache {
            dir,
            max_bytes: None,
            clock: std::sync::Arc::default(),
        })
    }

    /// Caps the cache at `max_bytes` total sealed bytes (`None` =
    /// unbounded). Over-cap stores trigger a second-chance sweep: keys
    /// are visited in ascending order from a persistent hand; a key
    /// probed since the hand last passed it is spared once (its
    /// reference bit clears), an unreferenced key is evicted. The sweep
    /// is a pure function of the operation sequence — no clocks, no
    /// randomness — so two daemons replaying the same requests evict
    /// the same entries.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Cache {
        self.max_bytes = max_bytes;
        self
    }

    /// The entry path for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{CACHE_EXT}"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up, distinguishing a clean miss from a corrupt entry.
    /// An unreadable or corrupt entry (CRC mismatch, wrong kind, wrong
    /// key, malformed fields) is quarantined aside to `*.quarantined` —
    /// the caller recomputes either way, so corruption costs latency,
    /// never correctness.
    pub fn probe(&self, key: u64) -> CacheProbe {
        let path = self.entry_path(key);
        if !path.exists() {
            return CacheProbe::Miss;
        }
        match Self::decode_entry(&path, key) {
            Ok(result) => {
                obs::counter_add("serve.cache.hit", 1);
                self.lock_clock().referenced.insert(key);
                CacheProbe::Hit(result)
            }
            Err(reason) => {
                self.quarantine(&path, &reason);
                CacheProbe::Quarantined
            }
        }
    }

    /// [`probe`](Self::probe) collapsed to an `Option` for callers that
    /// do not care why an entry was unusable.
    pub fn load(&self, key: u64) -> Option<CachedResult> {
        match self.probe(key) {
            CacheProbe::Hit(result) => Some(result),
            CacheProbe::Miss | CacheProbe::Quarantined => None,
        }
    }

    fn decode_entry(path: &Path, key: u64) -> Result<CachedResult, String> {
        let ck = Checkpoint::read(path).map_err(|e| e.to_string())?;
        ck.expect_kind(KIND_SERVE_CACHE)
            .map_err(|e| e.to_string())?;
        let [header, result] = ck.payload.as_slice() else {
            return Err(format!(
                "cache entry has {} lines, expected 2",
                ck.payload.len()
            ));
        };
        let stored_key = field_bits(header, "key").ok_or("cache entry missing key")?;
        if stored_key != key {
            return Err(format!(
                "cache entry keyed {stored_key:016x}, expected {key:016x}"
            ));
        }
        Ok(CachedResult {
            energy_bits: field_bits(result, "energy").ok_or("cache entry missing energy")?,
            iterations: field_u64(result, "iterations").ok_or("bad iterations")? as usize,
            evaluations: field_u64(result, "evaluations").ok_or("bad evaluations")? as usize,
            scf_retries: field_u64(result, "scf_retries").ok_or("bad scf_retries")? as usize,
            sabre_fallback: result
                .get("sabre_fallback")
                .and_then(JsonValue::as_bool)
                .ok_or("bad sabre_fallback")?,
        })
    }

    /// Renames a corrupt entry aside (best effort — a failed rename
    /// leaves the corrupt file in place, where the next load will try to
    /// quarantine it again) and records the event.
    fn quarantine(&self, path: &Path, reason: &str) {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantined");
        obs::counter_add("serve.cache.quarantined", 1);
        obs::event!(
            "serve.cache_quarantine",
            path = path.display().to_string(),
            reason = reason.to_string()
        );
        let _ = std::fs::rename(path, &target);
    }

    /// Seals `result` under `key`. The write is atomic
    /// (temp + fsync + rename) unless the [`FaultKind::CacheWrite`] site
    /// orders a torn write, in which case a deliberately truncated seal
    /// lands on disk — the next [`load`](Self::load) detects and
    /// quarantines it. Returns whether a *good* seal was written.
    pub fn store(&self, key: u64, result: CachedResult, plan: &mut FaultPlan) -> bool {
        let path = self.entry_path(key);
        let header = JsonValue::Object(
            [("key".to_string(), JsonValue::String(format!("{key:016x}")))]
                .into_iter()
                .collect(),
        );
        let body = JsonValue::Object(
            [
                (
                    "energy".to_string(),
                    JsonValue::String(format!("{:016x}", result.energy_bits)),
                ),
                (
                    "iterations".to_string(),
                    JsonValue::Number(result.iterations as f64),
                ),
                (
                    "evaluations".to_string(),
                    JsonValue::Number(result.evaluations as f64),
                ),
                (
                    "scf_retries".to_string(),
                    JsonValue::Number(result.scf_retries as f64),
                ),
                (
                    "sabre_fallback".to_string(),
                    JsonValue::Bool(result.sabre_fallback),
                ),
            ]
            .into_iter()
            .collect(),
        );
        let ck = Checkpoint::new(KIND_SERVE_CACHE, vec![header, body]);
        if plan.should_inject(FaultKind::CacheWrite) {
            // Torn write: drop the CRC trailer (and then some) so the
            // seal cannot verify. The entry is poison until the next
            // read quarantines it.
            let bytes = ck.to_bytes();
            let torn = &bytes[..bytes.len().saturating_sub(24)];
            let _ = obs::atomic_write(&path, torn);
            obs::counter_add("serve.cache.torn_writes", 1);
            return false;
        }
        match ck.write(&path) {
            Ok(()) => {
                obs::counter_add("serve.cache.sealed", 1);
                self.enforce_cap(key);
                true
            }
            Err(e) => {
                // A failed seal is a lost optimization, not an error:
                // count it and move on.
                obs::event!(
                    "serve.cache_write_failed",
                    path = path.display().to_string(),
                    error = e.to_string()
                );
                false
            }
        }
    }

    fn lock_clock(&self) -> std::sync::MutexGuard<'_, ClockState> {
        self.clock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Every sealed entry on disk, ascending by key: `(key, bytes)`.
    /// Only canonical `<16-hex>.cache` names count — quarantined files
    /// are forensics, not cache contents.
    fn sealed_entries(&self) -> Vec<(u64, u64)> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries: Vec<(u64, u64)> = read
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                let hex = name.strip_suffix(&format!(".{CACHE_EXT}"))?;
                if hex.len() != 16 {
                    return None;
                }
                let key = u64::from_str_radix(hex, 16).ok()?;
                Some((key, e.metadata().ok()?.len()))
            })
            .collect();
        entries.sort_unstable();
        entries
    }

    /// Second-chance sweep bringing the cache back under `max_bytes`.
    /// `just_stored` is never evicted (the entry the caller is about to
    /// rely on), which also guarantees the sweep terminates: every other
    /// key is evicted after at most two visits.
    fn enforce_cap(&self, just_stored: u64) {
        let Some(cap) = self.max_bytes else { return };
        let entries = self.sealed_entries();
        let mut total: u64 = entries.iter().map(|(_, bytes)| bytes).sum();
        if total <= cap {
            return;
        }
        let mut clock = self.lock_clock();
        let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        let sizes: std::collections::BTreeMap<u64, u64> = entries.into_iter().collect();
        let mut idx = keys.partition_point(|&k| k < clock.hand);
        for _ in 0..keys.len() * 2 {
            if total <= cap {
                break;
            }
            if idx >= keys.len() {
                idx = 0;
            }
            let key = keys[idx];
            idx += 1;
            clock.hand = key.wrapping_add(1);
            if key == just_stored {
                continue;
            }
            if clock.referenced.remove(&key) {
                // Referenced since the hand last passed: one more chance.
                continue;
            }
            if std::fs::remove_file(self.entry_path(key)).is_ok() {
                total -= sizes.get(&key).copied().unwrap_or(0);
                obs::counter_add("serve.cache_evicted", 1);
                obs::event!(
                    "serve.cache_evict",
                    key = format!("{key:016x}"),
                    total_bytes = total
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chem::Benchmark;

    fn spec(bond: f64) -> JobSpec {
        JobSpec {
            id: "t".to_string(),
            benchmark: Benchmark::H2,
            bond: Some(bond),
            ratio: 1.0,
        }
    }

    fn sample() -> CachedResult {
        CachedResult {
            energy_bits: (-1.1372f64).to_bits(),
            iterations: 9,
            evaluations: 40,
            scf_retries: 1,
            sabre_fallback: false,
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pcd-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_content_pure_and_sensitive() {
        let a = cache_key(&spec(0.74), 7, 0.0);
        assert_eq!(a, cache_key(&spec(0.74), 7, 0.0), "same content, same key");
        assert_ne!(a, cache_key(&spec(0.75), 7, 0.0), "bond changes key");
        assert_ne!(a, cache_key(&spec(0.74), 8, 0.0), "seed changes key");
        assert_ne!(a, cache_key(&spec(0.74), 7, 0.1), "fault rate changes key");
        let mut other = spec(0.74);
        other.ratio = 0.5;
        assert_ne!(a, cache_key(&other, 7, 0.0), "ratio changes key");
        // The id is *not* part of the identity: two clients naming the
        // same computation differently share the entry.
        let mut renamed = spec(0.74);
        renamed.id = "other".to_string();
        assert_eq!(a, cache_key(&renamed, 7, 0.0));
    }

    #[test]
    fn round_trip_hit() {
        let cache = Cache::open(scratch("roundtrip")).unwrap();
        let key = cache_key(&spec(0.74), 1, 0.0);
        assert_eq!(cache.load(key), None, "cold cache misses");
        assert!(cache.store(key, sample(), &mut FaultPlan::none()));
        assert_eq!(cache.load(key), Some(sample()));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let cache = Cache::open(scratch("truncated")).unwrap();
        let key = cache_key(&spec(0.74), 2, 0.0);
        assert!(cache.store(key, sample(), &mut FaultPlan::none()));
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.load(key), None, "truncation must not serve");
        assert!(!path.exists(), "corrupt entry moved aside");
        assert!(
            path.with_extension(format!("{CACHE_EXT}.quarantined"))
                .exists(),
            "quarantined alongside"
        );
        // The slot is clean again: a recompute can reseal it.
        assert!(cache.store(key, sample(), &mut FaultPlan::none()));
        assert_eq!(cache.load(key), Some(sample()));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bit_flipped_entry_is_quarantined() {
        let cache = Cache::open(scratch("bitflip")).unwrap();
        let key = cache_key(&spec(0.70), 3, 0.0);
        assert!(cache.store(key, sample(), &mut FaultPlan::none()));
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load(key), None, "bit flip must not serve");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn injected_torn_write_is_caught_on_read() {
        let cache = Cache::open(scratch("torn")).unwrap();
        let key = cache_key(&spec(0.66), 4, 0.0);
        let mut always = FaultPlan::new(0, 1.0);
        assert!(
            !cache.store(key, sample(), &mut always),
            "torn seal reported"
        );
        assert!(cache.entry_path(key).exists(), "poison landed on disk");
        assert_eq!(cache.load(key), None, "poison must not serve");
        assert!(!cache.entry_path(key).exists(), "poison quarantined");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// Total sealed bytes currently in `cache`'s directory.
    fn sealed_bytes(cache: &Cache) -> u64 {
        cache.sealed_entries().iter().map(|(_, b)| b).sum()
    }

    #[test]
    fn capped_cache_stays_under_cap_across_a_storm() {
        obs::enable();
        let uncapped = Cache::open(scratch("capsize")).unwrap();
        let probe_key = cache_key(&spec(0.5), 0, 0.0);
        assert!(uncapped.store(probe_key, sample(), &mut FaultPlan::none()));
        let entry_bytes = sealed_bytes(&uncapped);
        let _ = std::fs::remove_dir_all(uncapped.dir());

        let cap = entry_bytes * 4;
        let cache = Cache::open(scratch("storm"))
            .unwrap()
            .with_max_bytes(Some(cap));
        let before = obs::snapshot()
            .counters
            .get("serve.cache_evicted")
            .copied()
            .unwrap_or(0);
        for i in 0..32 {
            let key = cache_key(&spec(0.5 + 0.01 * i as f64), 1, 0.0);
            assert!(cache.store(key, sample(), &mut FaultPlan::none()));
            assert!(
                sealed_bytes(&cache) <= cap,
                "store {i} left {} bytes over the {cap}-byte cap",
                sealed_bytes(&cache)
            );
        }
        let after = obs::snapshot()
            .counters
            .get("serve.cache_evicted")
            .copied()
            .unwrap_or(0);
        assert!(after >= before + 28, "32 stores into 4 slots must evict");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn second_chance_spares_the_recently_probed_entry() {
        // Cap sized for two entries: store two, probe the first (setting
        // its reference bit), then store a third. The sweep must clear
        // the probed entry's bit and spare it, evicting the unprobed one.
        let sizing = Cache::open(scratch("chance-size")).unwrap();
        let k = cache_key(&spec(0.9), 2, 0.0);
        assert!(sizing.store(k, sample(), &mut FaultPlan::none()));
        let entry_bytes = sealed_bytes(&sizing);
        let _ = std::fs::remove_dir_all(sizing.dir());

        let cache = Cache::open(scratch("chance"))
            .unwrap()
            .with_max_bytes(Some(entry_bytes * 2));
        let k1 = cache_key(&spec(0.6), 2, 0.0);
        let k2 = cache_key(&spec(0.7), 2, 0.0);
        let k3 = cache_key(&spec(0.8), 2, 0.0);
        assert!(cache.store(k1, sample(), &mut FaultPlan::none()));
        assert!(cache.store(k2, sample(), &mut FaultPlan::none()));
        assert_eq!(cache.load(k1), Some(sample()), "probe marks k1 referenced");
        assert!(cache.store(k3, sample(), &mut FaultPlan::none()));
        assert_eq!(cache.load(k1), Some(sample()), "referenced entry spared");
        assert_eq!(cache.load(k3), Some(sample()), "fresh store never evicted");
        assert_eq!(cache.load(k2), None, "unreferenced entry evicted");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn eviction_is_deterministic_across_replays() {
        let run = |tag: &str| -> Vec<String> {
            let sizing = Cache::open(scratch(&format!("{tag}-size"))).unwrap();
            let k = cache_key(&spec(0.9), 3, 0.0);
            assert!(sizing.store(k, sample(), &mut FaultPlan::none()));
            let entry_bytes = sealed_bytes(&sizing);
            let _ = std::fs::remove_dir_all(sizing.dir());

            let cache = Cache::open(scratch(tag))
                .unwrap()
                .with_max_bytes(Some(entry_bytes * 3));
            for i in 0..12 {
                let key = cache_key(&spec(0.5 + 0.02 * i as f64), 3, 0.0);
                assert!(cache.store(key, sample(), &mut FaultPlan::none()));
                if i % 3 == 0 {
                    let _ = cache.load(key);
                }
            }
            let mut survivors: Vec<String> = cache
                .sealed_entries()
                .iter()
                .map(|(k, _)| format!("{k:016x}"))
                .collect();
            survivors.sort();
            let _ = std::fs::remove_dir_all(cache.dir());
            survivors
        };
        assert_eq!(run("replay-a"), run("replay-b"));
    }

    #[test]
    fn wrong_key_entry_is_rejected() {
        let cache = Cache::open(scratch("wrongkey")).unwrap();
        let key_a = cache_key(&spec(0.74), 5, 0.0);
        let key_b = cache_key(&spec(0.78), 5, 0.0);
        assert!(cache.store(key_a, sample(), &mut FaultPlan::none()));
        // Simulate an aliased file: copy A's sealed bytes into B's slot.
        std::fs::copy(cache.entry_path(key_a), cache.entry_path(key_b)).unwrap();
        assert_eq!(cache.load(key_b), None, "key mismatch must not serve");
        assert_eq!(cache.load(key_a), Some(sample()), "A is untouched");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
