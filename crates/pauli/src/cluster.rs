//! Simultaneous diagonalization of general-commuting Pauli clusters.
//!
//! The per-term expectation sweep in [`WeightedPauliSum::expectation`] pays
//! one full amplitude pass per Pauli term. But any set of *mutually
//! commuting* terms can be rotated into the computational basis together by
//! a single Clifford circuit (van den Berg & Temme, Quantum 4, 322 (2020)):
//! after the rotation every member is a `±Z…Z` string, and all member
//! expectations read off one probability sweep. This module provides
//!
//! - [`CliffordOp`]: the H/S/S†/CNOT/CZ vocabulary with exact
//!   sign-tracking Pauli conjugation,
//! - [`DiagonalFrame`]: the diagonalizing circuit for one commuting set,
//!   built by symplectic (GF(2)) elimination,
//! - [`ClusteredSum`]: a [`WeightedPauliSum`] partitioned greedily into
//!   general-commuting (not merely qubit-wise commuting) clusters, with a
//!   fused diagonal-frame expectation evaluator.
//!
//! The evaluator never applies the Clifford gate-by-gate. The circuit is
//! staged as `U = H_P · D · L` — a CNOT network `L`, a diagonal layer `D`
//! of S/S†/CZ, then Hadamards on the pivot qubits `P` — and each stage is
//! fused: `L` collapses to one table-driven GF(2) gather, `D` to one
//! table-driven phase pass, `H_P` to one butterfly pass per pivot with the
//! `2^{-r/2}` normalization folded into the readout weights. Clusters where
//! the rotation would cost more than sweeping the members individually
//! (e.g. singletons) fall back to the per-term kernel, so clustering never
//! loses more than the partition bookkeeping.
//!
//! Determinism: clusters are evaluated with [`par::map_slice`] (fixed task
//! order) and every in-cluster loop is a fixed-order fold, so results are
//! bit-identical at any thread count — the same guarantee the per-term
//! evaluator makes.

use numeric::Complex64;

use crate::string::PauliString;
use crate::sum::WeightedPauliSum;

/// One gate of a diagonalizing Clifford circuit.
///
/// Qubit indices are `u8` to match [`PauliString`]'s 64-qubit symplectic
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordOp {
    /// Hadamard on one qubit: swaps `X ↔ Z`.
    H(u8),
    /// Phase gate `S = diag(1, i)`: `X → Y → −X`.
    S(u8),
    /// Inverse phase gate `S† = diag(1, −i)`: `Y → X → −Y`.
    Sdg(u8),
    /// Controlled-X.
    Cnot {
        /// Control qubit.
        control: u8,
        /// Target qubit.
        target: u8,
    },
    /// Controlled-Z (symmetric in its operands).
    Cz(u8, u8),
}

impl CliffordOp {
    /// Conjugates a Pauli string through this gate: given `P` with
    /// symplectic masks `(x, z)`, returns `(x', z', neg)` such that
    /// `U·P·U† = (−1)^neg · P'`.
    ///
    /// Clifford conjugation of a Hermitian Pauli is always `±` another
    /// Hermitian Pauli — no `±i` phases arise — so a sign bit is exact.
    #[inline]
    #[must_use]
    pub fn conjugate(self, x: u64, z: u64) -> (u64, u64, bool) {
        match self {
            CliffordOp::H(q) => {
                let bx = (x >> q) & 1;
                let bz = (z >> q) & 1;
                // X ↔ Z; Y → −Y.
                let x2 = (x & !(1u64 << q)) | (bz << q);
                let z2 = (z & !(1u64 << q)) | (bx << q);
                (x2, z2, bx & bz == 1)
            }
            CliffordOp::S(q) => {
                let bx = (x >> q) & 1;
                let bz = (z >> q) & 1;
                // X → Y, Y → −X, Z → Z.
                (x, z ^ (bx << q), bx & bz == 1)
            }
            CliffordOp::Sdg(q) => {
                let bx = (x >> q) & 1;
                let bz = (z >> q) & 1;
                // X → −Y, Y → X, Z → Z.
                (x, z ^ (bx << q), bx & (bz ^ 1) == 1)
            }
            CliffordOp::Cnot { control, target } => {
                let xa = (x >> control) & 1;
                let za = (z >> control) & 1;
                let xb = (x >> target) & 1;
                let zb = (z >> target) & 1;
                // X_c → X_c·X_t, Z_t → Z_c·Z_t; sign per Aaronson–Gottesman.
                let neg = xa & zb & (xb ^ za ^ 1) == 1;
                (x ^ (xa << target), z ^ (zb << control), neg)
            }
            CliffordOp::Cz(a, b) => {
                let xa = (x >> a) & 1;
                let za = (z >> a) & 1;
                let xb = (x >> b) & 1;
                let zb = (z >> b) & 1;
                // X_a → X_a·Z_b, X_b → Z_a·X_b.
                let neg = xa & xb & (za ^ zb) == 1;
                (x, z ^ (xb << a) ^ (xa << b), neg)
            }
        }
    }

    /// The inverse gate (`U†`).
    #[must_use]
    pub fn inverse(self) -> CliffordOp {
        match self {
            CliffordOp::S(q) => CliffordOp::Sdg(q),
            CliffordOp::Sdg(q) => CliffordOp::S(q),
            other => other,
        }
    }

    /// The qubit(s) this gate touches.
    #[must_use]
    pub fn qubits(self) -> (u8, Option<u8>) {
        match self {
            CliffordOp::H(q) | CliffordOp::S(q) | CliffordOp::Sdg(q) => (q, None),
            CliffordOp::Cnot { control, target } => (control, Some(target)),
            CliffordOp::Cz(a, b) => (a, Some(b)),
        }
    }
}

/// Errors from [`DiagonalFrame::for_commuting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// Two input strings anti-commute (indices into the input slice).
    NonCommuting(usize, usize),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NonCommuting(a, b) => {
                write!(f, "strings {a} and {b} anti-commute")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A Clifford circuit `U` (H/S/S†/CNOT/CZ) that conjugates every member of
/// one commuting Pauli set to a `±Z…Z` string: `U·P·U† = ±Z_{z'}`.
///
/// The gate list is staged — CNOTs first, then the diagonal S/S†/CZ layer,
/// then Hadamards on the pivot qubits — which both the fused evaluator and
/// the compiler pass rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalFrame {
    num_qubits: usize,
    ops: Vec<CliffordOp>,
    pivots: u64,
}

impl DiagonalFrame {
    /// Builds the diagonalizing circuit for a set of mutually commuting
    /// Pauli strings.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NonCommuting`] if any pair anti-commutes.
    ///
    /// # Panics
    ///
    /// Panics if a string's qubit count exceeds `num_qubits`.
    pub fn for_commuting(
        num_qubits: usize,
        strings: &[PauliString],
    ) -> Result<DiagonalFrame, ClusterError> {
        for (i, a) in strings.iter().enumerate() {
            assert!(
                a.num_qubits() <= num_qubits,
                "string wider than the register"
            );
            for (j, b) in strings.iter().enumerate().skip(i + 1) {
                if !a.commutes_with(b) {
                    return Err(ClusterError::NonCommuting(i, j));
                }
            }
        }
        Ok(Self::for_commuting_unchecked(num_qubits, strings))
    }

    /// As [`for_commuting`](Self::for_commuting) but trusting the caller's
    /// commutation guarantee (the partitioner has already checked pairs).
    fn for_commuting_unchecked(num_qubits: usize, strings: &[PauliString]) -> DiagonalFrame {
        // 1. GF(2) basis of the symplectic span of the members. Row
        //    products (XORs) stay inside the generated group, so any basis
        //    that diagonalizes also diagonalizes every member.
        let mut rows: Vec<(u64, u64)> = Vec::new();
        for s in strings {
            let mut v = (s.x_mask(), s.z_mask());
            // A string that reduces to identity is dependent and dropped.
            while let Some(lead) = leading_bit(v) {
                match rows.iter().find(|r| leading_bit(**r) == Some(lead)) {
                    Some(r) => {
                        v.0 ^= r.0;
                        v.1 ^= r.1;
                    }
                    None => {
                        rows.push(v);
                        break;
                    }
                }
            }
        }

        // 2. Reduced row echelon form of the X-block (row ops only — free,
        //    they never leave the group). Afterwards rows[0..r] carry the
        //    pivots and rows[r..] are pure-Z.
        let mut pivot_cols: Vec<u32> = Vec::new();
        let mut rank = 0usize;
        for col in 0..num_qubits as u32 {
            let Some(hit) = (rank..rows.len()).find(|&i| (rows[i].0 >> col) & 1 == 1) else {
                continue;
            };
            rows.swap(rank, hit);
            for j in 0..rows.len() {
                if j != rank && (rows[j].0 >> col) & 1 == 1 {
                    let (px, pz) = rows[rank];
                    rows[j].0 ^= px;
                    rows[j].1 ^= pz;
                }
            }
            pivot_cols.push(col);
            rank += 1;
        }

        let mut ops: Vec<CliffordOp> = Vec::new();
        let conj_all = |op: CliffordOp, rows: &mut [(u64, u64)]| {
            for row in rows.iter_mut() {
                let (x, z, _) = op.conjugate(row.0, row.1);
                *row = (x, z);
            }
        };

        // 3. CNOT stage: clear every off-pivot X bit. After RREF the pivot
        //    column q_i is set only in row i, so CNOT(q_i → c) touches the
        //    X-block of row i alone.
        for (i, &q) in pivot_cols.iter().enumerate() {
            let mut extra = rows[i].0 & !(1u64 << q);
            while extra != 0 {
                let c = extra.trailing_zeros();
                extra &= extra - 1;
                let op = CliffordOp::Cnot {
                    control: q as u8,
                    target: c as u8,
                };
                conj_all(op, &mut rows);
                ops.push(op);
            }
        }

        // 4. Diagonal stage: per pivot row, S† turns a Y pivot into X, then
        //    CZ(q_i, c) clears the remaining Z bits. Commutation makes the
        //    Z-block symmetric across pivot rows, so clearing row i's bit at
        //    q_j simultaneously clears row j's bit at q_i — sequential
        //    processing never revisits a row.
        for (i, &q) in pivot_cols.iter().enumerate() {
            if (rows[i].1 >> q) & 1 == 1 {
                let op = CliffordOp::Sdg(q as u8);
                conj_all(op, &mut rows);
                ops.push(op);
            }
            let mut zb = rows[i].1 & !(1u64 << q);
            while zb != 0 {
                let c = zb.trailing_zeros();
                zb &= zb - 1;
                let op = CliffordOp::Cz(q as u8, c as u8);
                conj_all(op, &mut rows);
                ops.push(op);
            }
        }

        // 5. Hadamard stage: X_{q_i} → Z_{q_i}. Pure-Z rows carry no Z bits
        //    on pivot columns (forced by commutation with the pivot rows),
        //    so they stay diagonal.
        let mut pivots = 0u64;
        for &q in &pivot_cols {
            pivots |= 1u64 << q;
            ops.push(CliffordOp::H(q as u8));
        }

        debug_assert!(rows
            .iter()
            .skip(rank)
            .all(|r| r.0 == 0 && r.1 & pivots == 0));

        DiagonalFrame {
            num_qubits,
            ops,
            pivots,
        }
    }

    /// The gate list, in application order (first gate acts first on the
    /// state).
    #[must_use]
    pub fn ops(&self) -> &[CliffordOp] {
        &self.ops
    }

    /// Bit mask of the pivot qubits (the Hadamard layer's support).
    #[must_use]
    pub fn pivot_mask(&self) -> u64 {
        self.pivots
    }

    /// Number of pivot qubits `r` (the cluster's entangling rank).
    #[must_use]
    pub fn num_pivots(&self) -> u32 {
        self.pivots.count_ones()
    }

    /// Register width this frame was built for.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Conjugates `p` through the circuit. Returns `(z', sign)` with
    /// `U·P·U† = sign·Z_{z'}` when the result is diagonal, `None` otherwise
    /// (never for a member of the group the frame was built from).
    #[must_use]
    pub fn diagonalize(&self, p: &PauliString) -> Option<(u64, f64)> {
        let (mut x, mut z) = (p.x_mask(), p.z_mask());
        let mut neg = false;
        for op in &self.ops {
            let (nx, nz, n) = op.conjugate(x, z);
            x = nx;
            z = nz;
            neg ^= n;
        }
        if x != 0 {
            return None;
        }
        Some((z, if neg { -1.0 } else { 1.0 }))
    }

    /// Greedy layered depth of the circuit (each gate occupies its qubits
    /// for one layer; CZ counts as one layer).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0usize;
        for op in &self.ops {
            let (a, b) = op.qubits();
            let d = match b {
                Some(b) => level[a as usize].max(level[b as usize]) + 1,
                None => level[a as usize] + 1,
            };
            level[a as usize] = d;
            if let Some(b) = b {
                level[b as usize] = d;
            }
            depth = depth.max(d);
        }
        depth
    }
}

/// Leading set bit of a symplectic vector, X-block above Z-block.
fn leading_bit(v: (u64, u64)) -> Option<u32> {
    if v.0 != 0 {
        Some(64 + (63 - v.0.leading_zeros()))
    } else if v.1 != 0 {
        Some(63 - v.1.leading_zeros())
    } else {
        None
    }
}

/// Per-amplitude cost units for the fused-vs-per-term decision. Only the
/// ratios matter; these are calibrated to the repo's kernels (a per-term
/// sweep does a conjugated multiply + popcount per amplitude, the fused
/// stages are table lookups or add/sub butterflies).
const COST_COPY: f64 = 1.0;
const COST_GATHER: f64 = 3.0;
const COST_PHASE: f64 = 2.5;
const COST_BUTTERFLY: f64 = 2.5;
const COST_READOUT_PER_MEMBER: f64 = 2.0;
const COST_TERM_PER_MEMBER: f64 = 8.0;

/// Widest register the fused evaluator builds half-index tables for; the
/// statevector simulator caps at 24 qubits, so this is never the binding
/// limit in practice.
const MAX_FUSED_QUBITS: usize = 26;

/// Fused evaluation tables for one cluster: the diagonalizing circuit
/// collapsed to (gather, phase, butterflies, readout).
#[derive(Debug, Clone)]
struct FusedEval {
    /// Low half width of the index split.
    lo_bits: u32,
    /// GF(2) gather tables: source index = `glo[lo] ^ ghi[hi]`. Empty when
    /// the circuit has no CNOTs.
    glo: Vec<u64>,
    ghi: Vec<u64>,
    /// Phase-exponent tables (powers of `i`, mod 4) for the diagonal layer,
    /// plus the cross-half CZ parity masks. Empty when the layer is empty.
    plo: Vec<u8>,
    phi: Vec<u8>,
    mcross: Vec<u64>,
    /// Pivot qubits (butterfly passes).
    pivots: u64,
    /// Per member: diagonal mask `z'` and readout weight
    /// `w·sign·2^{−r}` (normalization of the unnormalized butterflies).
    diag: Vec<(u64, f64)>,
}

impl FusedEval {
    fn build(
        num_qubits: usize,
        frame: &DiagonalFrame,
        members: &[(f64, PauliString)],
    ) -> Option<FusedEval> {
        let lo_bits = (num_qubits as u32).div_ceil(2);
        let hi_bits = num_qubits as u32 - lo_bits;

        // Split the staged op list; the builder guarantees CNOTs, then
        // diagonal, then H, but verify and bail to the per-term path if a
        // future frame violates it.
        let mut cnots: Vec<(u8, u8)> = Vec::new();
        let mut diag_ops: Vec<CliffordOp> = Vec::new();
        let mut stage = 0u8;
        for &op in frame.ops() {
            match op {
                CliffordOp::Cnot { control, target } => {
                    if stage > 0 {
                        return None;
                    }
                    cnots.push((control, target));
                }
                CliffordOp::S(_) | CliffordOp::Sdg(_) | CliffordOp::Cz(..) => {
                    if stage > 1 {
                        return None;
                    }
                    stage = 1;
                    diag_ops.push(op);
                }
                CliffordOp::H(_) => stage = 2,
            }
        }

        // Gather tables: maintain the columns of T⁻¹ where T is the CNOT
        // network's basis permutation. Appending CNOT(c→t) maps
        // col_c ^= col_t; then src(j) = ⊕_{q ∈ j} col_q, tabulated per
        // index half.
        let (glo, ghi) = if cnots.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let mut cols: Vec<u64> = (0..num_qubits).map(|q| 1u64 << q).collect();
            for &(c, t) in &cnots {
                cols[c as usize] ^= cols[t as usize];
            }
            (
                subset_xor_table(&cols[..lo_bits as usize], 0),
                subset_xor_table(&cols[lo_bits as usize..], 0),
            )
        };

        // Phase tables: exponent of i per basis index, mod 4. S adds 1·b_q,
        // S† adds 3·b_q, CZ adds 2·b_a·b_b. Within-half contributions are
        // tabulated; cross-half CZ pairs become a per-hi parity mask over
        // the low half. XOR-accumulating pair masks makes duplicate CZs
        // cancel exactly as the phases do.
        let (plo, phi, mcross) = if diag_ops.is_empty() {
            (Vec::new(), Vec::new(), Vec::new())
        } else {
            let n = num_qubits;
            let mut e1 = vec![0u8; n];
            let mut pair = vec![0u64; n];
            let mut cross_of_hi = vec![0u64; hi_bits as usize];
            for &op in &diag_ops {
                match op {
                    CliffordOp::S(q) => e1[q as usize] = (e1[q as usize] + 1) & 3,
                    CliffordOp::Sdg(q) => e1[q as usize] = (e1[q as usize] + 3) & 3,
                    CliffordOp::Cz(a, b) => {
                        let (a, b) = (a as u32, b as u32);
                        if a < lo_bits && b < lo_bits || a >= lo_bits && b >= lo_bits {
                            pair[a as usize] ^= 1u64 << b;
                            pair[b as usize] ^= 1u64 << a;
                        } else {
                            let (lo, hi) = if a < lo_bits { (a, b) } else { (b, a) };
                            cross_of_hi[(hi - lo_bits) as usize] ^= 1u64 << lo;
                        }
                    }
                    _ => return None,
                }
            }
            let plo = phase_table(&e1[..lo_bits as usize], &pair[..lo_bits as usize], 0);
            let phi = phase_table(&e1[lo_bits as usize..], &pair[lo_bits as usize..], lo_bits);
            let mcross = subset_xor_table(&cross_of_hi, 0);
            (plo, phi, mcross)
        };

        let r = frame.num_pivots();
        let norm = (0.5f64).powi(r as i32);
        let mut diag = Vec::with_capacity(members.len());
        for &(w, p) in members {
            let (z, sign) = frame.diagonalize(&p)?;
            diag.push((z, w * sign * norm));
        }

        Some(FusedEval {
            lo_bits,
            glo,
            ghi,
            plo,
            phi,
            mcross,
            pivots: frame.pivot_mask(),
            diag,
        })
    }

    /// Estimated per-amplitude cost of this fused evaluation.
    fn cost(&self) -> f64 {
        let gather = if self.glo.is_empty() {
            COST_COPY
        } else {
            COST_GATHER
        };
        let phase = if self.plo.is_empty() { 0.0 } else { COST_PHASE };
        gather
            + phase
            + COST_BUTTERFLY * f64::from(self.pivots.count_ones())
            + COST_READOUT_PER_MEMBER * self.diag.len() as f64
    }

    /// `Σ_m w_m·⟨ψ|P_m|ψ⟩` for every member at once: rotate `ψ` into the
    /// diagonal frame (gather and phase fused into one pass, then
    /// butterflies) and read all member expectations from one probability
    /// sweep. Inner loops are branchless — the phase rotation multiplies
    /// by a 4-entry `i^e` table and the readout flips the sign bit
    /// directly — because `e` and the member parities are effectively
    /// random and a conditional would mispredict half the time.
    fn expectation(&self, state: &[Complex64]) -> f64 {
        let dim = state.len();
        let lo_mask = (1usize << self.lo_bits) - 1;
        const PH: [Complex64; 4] = [
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(-1.0, 0.0),
            Complex64::new(0.0, -1.0),
        ];

        // Stages L and D in one pass: gather through the CNOT network and
        // apply the diagonal phase as the amplitude lands.
        let has_gather = !self.glo.is_empty();
        let has_phase = !self.plo.is_empty();
        let mut buf: Vec<Complex64> = match (has_gather, has_phase) {
            (false, false) => state.to_vec(),
            (true, false) => (0..dim)
                .map(|j| {
                    let src = self.glo[j & lo_mask] ^ self.ghi[j >> self.lo_bits];
                    state[src as usize]
                })
                .collect(),
            (gather, true) => {
                let mut buf = Vec::with_capacity(dim);
                let blocks = dim >> self.lo_bits;
                for hi in 0..blocks {
                    let pe = self.phi[hi];
                    let m = self.mcross[hi];
                    let base = hi << self.lo_bits;
                    let ghi = if gather { self.ghi[hi] } else { 0 };
                    for lo in 0..=lo_mask {
                        let a = if gather {
                            state[(self.glo[lo] ^ ghi) as usize]
                        } else {
                            state[base + lo]
                        };
                        let cross = (((lo as u64 & m).count_ones() & 1) as u8) << 1;
                        let e = (self.plo[lo] + pe + cross) & 3;
                        buf.push(a * PH[e as usize]);
                    }
                }
                buf
            }
        };

        // Stage H_P: unnormalized butterflies per pivot qubit; the 2^{-r}
        // lives in the readout weights. The split borrows let the add/sub
        // loop run without bounds checks.
        let mut piv = self.pivots;
        while piv != 0 {
            let q = piv.trailing_zeros();
            piv &= piv - 1;
            let stride = 1usize << q;
            if stride == 1 {
                for pair in buf.chunks_exact_mut(2) {
                    let a = pair[0];
                    let b = pair[1];
                    pair[0] = a + b;
                    pair[1] = a - b;
                }
            } else {
                for block in buf.chunks_exact_mut(stride << 1) {
                    let (lhs, rhs) = block.split_at_mut(stride);
                    for (a, b) in lhs.iter_mut().zip(rhs) {
                        let x = *a;
                        let y = *b;
                        *a = x + y;
                        *b = x - y;
                    }
                }
            }
        }

        // Readout: every member from one probability sweep, sign applied
        // by XOR-ing the parity into the f64 sign bit.
        let mut acc = vec![0.0f64; self.diag.len()];
        for (b, a) in buf.iter().enumerate() {
            let p = a.norm_sqr().to_bits();
            for (s, &(zm, _)) in acc.iter_mut().zip(&self.diag) {
                let parity = (u64::from((b as u64 & zm).count_ones()) & 1) << 63;
                *s += f64::from_bits(p ^ parity);
            }
        }
        self.diag.iter().zip(&acc).map(|(&(_, c), &s)| c * s).sum()
    }
}

/// `out[v] = ⊕_{q ∈ v} cols[q]` for every subset `v`, built incrementally.
/// `_offset` documents which global qubit `cols[0]` corresponds to.
fn subset_xor_table(cols: &[u64], _offset: u32) -> Vec<u64> {
    let mut out = vec![0u64; 1usize << cols.len()];
    for v in 1..out.len() {
        let t = v.trailing_zeros() as usize;
        out[v] = out[v & (v - 1)] ^ cols[t];
    }
    out
}

/// Phase-exponent table over one index half: `out[v] = Σ_{q ∈ v} e1[q] +
/// 2·#{CZ pairs inside v}` (mod 4). `pair[q]` holds the half-local partner
/// mask of qubit `offset + q`, shifted to global bit positions.
fn phase_table(e1: &[u8], pair: &[u64], offset: u32) -> Vec<u8> {
    let mut out = vec![0u8; 1usize << e1.len()];
    for v in 1..out.len() {
        let t = v.trailing_zeros() as usize;
        let rest = (v & (v - 1)) as u64;
        // `rest` only holds bits above t, so the symmetric partner mask
        // counts each pair exactly once.
        let pairs = (rest & (pair[t] >> offset)).count_ones() as u8;
        out[v] = (out[v & (v - 1)] + e1[t] + ((pairs & 1) << 1)) & 3;
    }
    out
}

/// One general-commuting cluster of a [`ClusteredSum`].
#[derive(Debug, Clone)]
struct Cluster {
    /// Original `(weight, string)` members, in descending-|weight| pick
    /// order.
    members: Vec<(f64, PauliString)>,
    frame: DiagonalFrame,
    /// Fused tables when the rotation beats the per-term sweep.
    fused: Option<FusedEval>,
}

impl Cluster {
    fn new(num_qubits: usize, members: Vec<(f64, PauliString)>) -> Cluster {
        let strings: Vec<PauliString> = members.iter().map(|&(_, p)| p).collect();
        let frame = DiagonalFrame::for_commuting_unchecked(num_qubits, &strings);
        let fused = if num_qubits <= MAX_FUSED_QUBITS {
            FusedEval::build(num_qubits, &frame, &members)
                .filter(|f| f.cost() < COST_TERM_PER_MEMBER * members.len() as f64)
        } else {
            None
        };
        Cluster {
            members,
            frame,
            fused,
        }
    }

    fn expectation(&self, state: &[Complex64]) -> f64 {
        match &self.fused {
            Some(f) => f.expectation(state),
            None => self
                .members
                .iter()
                .map(|&(w, p)| crate::sum::term_expectation(state, w, p))
                .sum(),
        }
    }
}

/// Aggregate structure of a [`ClusteredSum`], for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Number of clusters (measurement settings).
    pub clusters: usize,
    /// Total terms across clusters.
    pub terms: usize,
    /// Largest cluster size.
    pub largest: usize,
    /// Clusters with a single member.
    pub singletons: usize,
    /// Clusters evaluated on the fused diagonal-frame path.
    pub fused: usize,
    /// Total Clifford ops across all frames (CZ counted once).
    pub clifford_ops: usize,
    /// Maximum layered depth of any frame's circuit.
    pub clifford_depth: usize,
}

/// A [`WeightedPauliSum`] partitioned into general-commuting clusters, each
/// with its diagonalizing Clifford frame and fused evaluation tables.
///
/// Build once, evaluate many times (a VQE loop calls
/// [`expectation`](Self::expectation) thousands of times against the same
/// Hamiltonian).
#[derive(Debug, Clone)]
pub struct ClusteredSum {
    num_qubits: usize,
    clusters: Vec<Cluster>,
}

impl ClusteredSum {
    /// Partitions `sum` greedily: terms in descending |weight| order, each
    /// placed in the first cluster whose every member commutes with it
    /// (general symplectic commutation, not merely qubit-wise).
    #[must_use]
    pub fn build(sum: &WeightedPauliSum) -> ClusteredSum {
        let n = sum.num_qubits();
        // Every cluster pays a fixed transform cost, so fewer, larger
        // clusters win. Grow one clique of the commutation graph at a
        // time: seed with the heaviest unassigned term, then repeatedly
        // add the compatible term that keeps the most other compatible
        // terms alive (greedy max-retention). Ties break by weight then
        // index, so the partition is deterministic.
        let terms = sum.len();
        let words = terms.div_ceil(64).max(1);
        // Commutation graph as bitset rows: retention counts below reduce
        // to AND + popcount sweeps, keeping the build near-linear in
        // practice for thousand-term molecular Hamiltonians.
        let mut commute: Vec<Vec<u64>> = vec![vec![0u64; words]; terms];
        for i in 0..terms {
            for j in 0..terms {
                if sum[i].1.commutes_with(&sum[j].1) {
                    commute[i][j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        let mut order: Vec<usize> = (0..terms).collect();
        order.sort_by(|&i, &j| sum[j].0.abs().total_cmp(&sum[i].0.abs()).then(i.cmp(&j)));
        let mut rank = vec![0usize; terms];
        for (r, &t) in order.iter().enumerate() {
            rank[t] = r;
        }

        let mut unassigned = vec![0u64; words];
        for t in 0..terms {
            unassigned[t / 64] |= 1u64 << (t % 64);
        }
        let mut groups: Vec<Vec<(f64, PauliString)>> = Vec::new();
        for &seed in &order {
            if unassigned[seed / 64] & (1u64 << (seed % 64)) == 0 {
                continue;
            }
            unassigned[seed / 64] &= !(1u64 << (seed % 64));
            let mut members = vec![seed];
            let mut cand: Vec<u64> = unassigned
                .iter()
                .zip(&commute[seed])
                .map(|(&u, &c)| u & c)
                .collect();
            loop {
                // Pick the candidate retaining the most of the rest; ties
                // break by weight rank.
                let mut best: Option<(usize, usize)> = None;
                for w in 0..words {
                    let mut bits = cand[w];
                    while bits != 0 {
                        let c = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let kept: usize = cand
                            .iter()
                            .zip(&commute[c])
                            .map(|(&a, &m)| (a & m).count_ones() as usize)
                            .sum();
                        let better = match best {
                            None => true,
                            Some((bk, br)) => kept > bk || (kept == bk && rank[c] < br),
                        };
                        if better {
                            best = Some((kept, rank[c]));
                        }
                    }
                }
                let Some((_, r)) = best else { break };
                let chosen = order[r];
                let (cw, cb) = (chosen / 64, 1u64 << (chosen % 64));
                unassigned[cw] &= !cb;
                members.push(chosen);
                for (a, &m) in cand.iter_mut().zip(&commute[chosen]) {
                    *a &= m;
                }
                cand[cw] &= !cb;
            }
            groups.push(members.iter().map(|&t| sum[t]).collect());
        }

        let clusters = groups
            .into_iter()
            .map(|members| Cluster::new(n, members))
            .collect();
        ClusteredSum {
            num_qubits: n,
            clusters,
        }
    }

    /// Register width.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Aggregate structure for reports.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        let mut s = ClusterStats {
            clusters: self.clusters.len(),
            terms: 0,
            largest: 0,
            singletons: 0,
            fused: 0,
            clifford_ops: 0,
            clifford_depth: 0,
        };
        for c in &self.clusters {
            s.terms += c.members.len();
            s.largest = s.largest.max(c.members.len());
            if c.members.len() == 1 {
                s.singletons += 1;
            }
            if c.fused.is_some() {
                s.fused += 1;
            }
            s.clifford_ops += c.frame.ops().len();
            s.clifford_depth = s.clifford_depth.max(c.frame.depth());
        }
        s
    }

    /// `⟨ψ|H|ψ⟩` via one diagonal-frame rotation per cluster.
    ///
    /// Clusters are evaluated in fixed order (parallel across clusters,
    /// serial within), so the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^num_qubits`.
    #[must_use]
    pub fn expectation(&self, state: &[Complex64]) -> f64 {
        let dim = match 1usize.checked_shl(self.num_qubits as u32) {
            Some(d) => d,
            None => panic!("dimension 2^{} overflows usize", self.num_qubits),
        };
        assert_eq!(state.len(), dim, "state length must be 2^n");
        let per_cluster: Vec<f64> = par::map_slice(&self.clusters, |c| c.expectation(state));
        per_cluster.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    fn random_state(n: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed | 1;
        let mut next = || (xorshift(&mut s) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let amps: Vec<Complex64> = (0..1usize << n)
            .map(|_| Complex64::new(next(), next()))
            .collect();
        let norm = amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        amps.into_iter().map(|z| z / norm).collect()
    }

    fn random_sum(n: usize, terms: usize, seed: u64) -> WeightedPauliSum {
        let mut s = seed | 1;
        let mut h = WeightedPauliSum::new(n);
        for k in 0..terms {
            let x = xorshift(&mut s) & ((1 << n) - 1);
            let z = xorshift(&mut s) & ((1 << n) - 1);
            h.push(
                0.1 * (k as f64 + 1.0) * if k % 2 == 0 { 1.0 } else { -1.0 },
                PauliString::from_symplectic(n, x, z),
            );
        }
        h
    }

    /// Dense application of one Clifford gate to a state.
    fn apply_op_dense(op: CliffordOp, v: &[Complex64]) -> Vec<Complex64> {
        let dim = v.len();
        let mut out = vec![Complex64::ZERO; dim];
        for b in 0..dim {
            match op {
                CliffordOp::H(q) => {
                    let s = std::f64::consts::FRAC_1_SQRT_2;
                    let b0 = b & !(1usize << q);
                    let b1 = b | (1usize << q);
                    out[b] = if (b >> q) & 1 == 0 {
                        (v[b0] + v[b1]) * s
                    } else {
                        (v[b0] - v[b1]) * s
                    };
                }
                CliffordOp::S(q) => {
                    out[b] = if (b >> q) & 1 == 1 {
                        Complex64::new(-v[b].im, v[b].re)
                    } else {
                        v[b]
                    };
                }
                CliffordOp::Sdg(q) => {
                    out[b] = if (b >> q) & 1 == 1 {
                        Complex64::new(v[b].im, -v[b].re)
                    } else {
                        v[b]
                    };
                }
                CliffordOp::Cnot { control, target } => {
                    let src = b ^ (((b >> control) & 1) << target);
                    out[b] = v[src];
                }
                CliffordOp::Cz(a, c) => {
                    out[b] = if (b >> a) & 1 == 1 && (b >> c) & 1 == 1 {
                        -v[b]
                    } else {
                        v[b]
                    };
                }
            }
        }
        out
    }

    /// Dense application of a bare Pauli string (by symplectic masks).
    fn apply_pauli_dense(n: usize, x: u64, z: u64, v: &[Complex64]) -> Vec<Complex64> {
        let p = PauliString::from_symplectic(n, x, z);
        let mut out = vec![Complex64::ZERO; v.len()];
        for b in 0..v.len() as u64 {
            let (flip, phase) = p.apply_to_basis_state(b);
            out[flip as usize] += v[b as usize] * phase;
        }
        out
    }

    /// Every conjugation rule, exhaustively on 2 qubits: `U·P·v` must equal
    /// `sign·P'·(U·v)` for all 16 Paulis and a dense random state.
    #[test]
    fn conjugation_rules_match_dense_references() {
        let v = random_state(2, 0xC0FFEE);
        let ops = [
            CliffordOp::H(0),
            CliffordOp::H(1),
            CliffordOp::S(0),
            CliffordOp::S(1),
            CliffordOp::Sdg(0),
            CliffordOp::Sdg(1),
            CliffordOp::Cnot {
                control: 0,
                target: 1,
            },
            CliffordOp::Cnot {
                control: 1,
                target: 0,
            },
            CliffordOp::Cz(0, 1),
        ];
        for op in ops {
            for x in 0u64..4 {
                for z in 0u64..4 {
                    let (x2, z2, neg) = op.conjugate(x, z);
                    let lhs = apply_op_dense(op, &apply_pauli_dense(2, x, z, &v));
                    let sign = if neg { -1.0 } else { 1.0 };
                    let rhs: Vec<Complex64> = apply_pauli_dense(2, x2, z2, &apply_op_dense(op, &v))
                        .into_iter()
                        .map(|a| a * sign)
                        .collect();
                    for (a, b) in lhs.iter().zip(&rhs) {
                        assert!(
                            a.approx_eq(*b, 1e-12),
                            "{op:?} on (x={x},z={z}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Conjugating twice through S then S† (and H twice) round-trips.
    #[test]
    fn inverse_round_trips() {
        for op in [
            CliffordOp::H(2),
            CliffordOp::S(1),
            CliffordOp::Sdg(0),
            CliffordOp::Cnot {
                control: 0,
                target: 2,
            },
            CliffordOp::Cz(1, 2),
        ] {
            for x in 0u64..8 {
                for z in 0u64..8 {
                    let (x1, z1, n1) = op.conjugate(x, z);
                    let (x2, z2, n2) = op.inverse().conjugate(x1, z1);
                    assert_eq!((x2, z2, n1 ^ n2), (x, z, false), "{op:?}");
                }
            }
        }
    }

    /// The frame really diagonalizes: dense check `U·P·v = sign·Z_{z'}·U·v`
    /// for hand-picked non-qubit-wise-commuting clusters.
    #[test]
    fn frame_diagonalizes_general_commuting_sets() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["XX", "ZZ", "YY"],
            vec!["XX", "YZ"],
            vec!["XZ", "ZX", "YY"],
            vec!["XXXX", "ZZZZ", "YYII"],
            vec!["ZZI", "IZZ", "XXX"],
            vec!["III", "ZIZ"],
            vec!["YYI", "IYY", "XZX"],
        ];
        for case in cases {
            let strings: Vec<PauliString> = case.iter().map(|s| s.parse().unwrap()).collect();
            let n = strings[0].num_qubits();
            let frame = DiagonalFrame::for_commuting(n, &strings).unwrap();
            let v = random_state(n, 0xDECAF ^ n as u64);
            let uv = frame
                .ops()
                .iter()
                .fold(v.clone(), |acc, &op| apply_op_dense(op, &acc));
            for p in &strings {
                let (z, sign) = frame.diagonalize(p).expect("member must diagonalize");
                let lhs = frame.ops().iter().fold(
                    apply_pauli_dense(n, p.x_mask(), p.z_mask(), &v),
                    |acc, &op| apply_op_dense(op, &acc),
                );
                let rhs: Vec<Complex64> = apply_pauli_dense(n, 0, z, &uv)
                    .into_iter()
                    .map(|a| a * sign)
                    .collect();
                for (a, b) in lhs.iter().zip(&rhs) {
                    assert!(a.approx_eq(*b, 1e-12), "{case:?} member {p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn frame_rejects_anticommuting_pairs() {
        let strings: Vec<PauliString> = vec!["XI".parse().unwrap(), "ZI".parse().unwrap()];
        assert_eq!(
            DiagonalFrame::for_commuting(2, &strings),
            Err(ClusterError::NonCommuting(0, 1))
        );
    }

    /// Frame op lists are staged CNOT → diagonal → H (the fused evaluator
    /// and the compiler pass both rely on this shape).
    #[test]
    fn frame_ops_are_staged() {
        let mut seed = 0xFEED_BEEF;
        for trial in 0..20 {
            let sum = random_sum(5, 10, xorshift(&mut seed) + trial);
            let clustered = ClusteredSum::build(&sum);
            for c in &clustered.clusters {
                let mut stage = 0u8;
                for op in c.frame.ops() {
                    let s = match op {
                        CliffordOp::Cnot { .. } => 0,
                        CliffordOp::S(_) | CliffordOp::Sdg(_) | CliffordOp::Cz(..) => 1,
                        CliffordOp::H(_) => 2,
                    };
                    assert!(s >= stage, "ops not staged: {:?}", c.frame.ops());
                    stage = s;
                }
            }
        }
    }

    /// Clustered expectation agrees with the per-term evaluator on random
    /// dense sums (whatever mix of fused and fallback clusters results).
    #[test]
    fn clustered_expectation_matches_per_term_on_random_sums() {
        let mut seed = 0xAB1E;
        for n in 3..=6 {
            for trial in 0..8 {
                let sum = random_sum(n, 4 + 3 * trial as usize, xorshift(&mut seed) + trial);
                let state = random_state(n, xorshift(&mut seed));
                let reference = sum.expectation(&state);
                let clustered = ClusteredSum::build(&sum).expectation(&state);
                assert!(
                    (reference - clustered).abs() < 1e-10,
                    "n={n} trial={trial}: {reference} vs {clustered}"
                );
            }
        }
    }

    /// A fully commuting set lands in one cluster and the fused path is
    /// exercised (rank > 0, CNOTs present).
    #[test]
    fn commuting_set_forms_one_fused_cluster() {
        let mut h = WeightedPauliSum::new(3);
        for (w, s) in [(0.9, "XXI"), (0.7, "ZZI"), (-0.5, "YYI"), (0.3, "IIZ")] {
            h.push(w, s.parse().unwrap());
        }
        let clustered = ClusteredSum::build(&h);
        assert_eq!(clustered.num_clusters(), 1);
        let stats = clustered.stats();
        assert_eq!(stats.terms, 4);
        assert_eq!(stats.fused, 1);
        assert!(stats.clifford_ops > 0);
        assert!(stats.clifford_depth > 0);

        let state = random_state(3, 0x5EED);
        let reference = h.expectation(&state);
        assert!((clustered.expectation(&state) - reference).abs() < 1e-12);
    }

    /// Pure-Z sums need no Clifford ops at all: one cluster, zero gates.
    #[test]
    fn diagonal_sum_needs_no_clifford() {
        let mut h = WeightedPauliSum::new(4);
        for (w, s) in [(1.0, "ZZII"), (0.5, "IZZI"), (-0.25, "ZIIZ")] {
            h.push(w, s.parse().unwrap());
        }
        let clustered = ClusteredSum::build(&h);
        let stats = clustered.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.clifford_ops, 0);
        let state = random_state(4, 0x7777);
        assert!((clustered.expectation(&state) - h.expectation(&state)).abs() < 1e-12);
    }

    /// Identity terms ride along as constant offsets.
    #[test]
    fn identity_terms_contribute_their_weight() {
        let mut h = WeightedPauliSum::new(2);
        h.push(-3.25, PauliString::identity(2));
        h.push(0.5, "XY".parse().unwrap());
        let state = random_state(2, 0x1234);
        let clustered = ClusteredSum::build(&h);
        assert!((clustered.expectation(&state) - h.expectation(&state)).abs() < 1e-12);
    }

    /// Bit-identical across thread counts: the cluster grid and in-cluster
    /// fold order never depend on the worker count.
    #[test]
    fn clustered_expectation_bit_identical_across_threads() {
        let sum = random_sum(8, 24, 0xFACE);
        let state = random_state(8, 0xB00C);
        let clustered = ClusteredSum::build(&sum);
        let e1 = par::with_threads(1, || clustered.expectation(&state));
        let e2 = par::with_threads(2, || clustered.expectation(&state));
        let e4 = par::with_threads(4, || clustered.expectation(&state));
        assert_eq!(e1.to_bits(), e2.to_bits());
        assert_eq!(e1.to_bits(), e4.to_bits());
    }

    /// `expectation_clustered` on the sum itself is the same one-call API.
    #[test]
    fn sum_level_entry_point_agrees() {
        let sum = random_sum(6, 12, 0xEE);
        let state = random_state(6, 0xFF);
        assert!((sum.expectation_clustered(&state) - sum.expectation(&state)).abs() < 1e-10);
    }
}
