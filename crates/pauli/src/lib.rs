//! Pauli strings — the paper's central abstraction layer.
//!
//! The ISCA 2021 co-design coordinates algorithm, compiler, and hardware
//! optimizations through *Pauli strings*: tensor products of the single-qubit
//! operators `I`, `X`, `Y`, `Z`. This crate provides
//!
//! * [`Pauli`] — the single-qubit operator alphabet;
//! * [`PauliString`] — an n-qubit string in compact symplectic form, with the
//!   group algebra (products, commutation, phases);
//! * [`WeightedPauliSum`] — weighted sums of Pauli strings, i.e. Hermitian
//!   observables such as molecular Hamiltonians, with fast statevector
//!   action, expectation values, and exact ground states via Lanczos;
//! * [`ClusteredSum`] — the same sum partitioned into general-commuting
//!   clusters, each simultaneously diagonalized by one Clifford circuit,
//!   with a fused diagonal-frame expectation evaluator.
//!
//! # Examples
//!
//! ```
//! use pauli::{Pauli, PauliString};
//!
//! // The paper's Figure 2 example on four qubits: X I Y Z
//! // (leftmost operator acts on the highest qubit, q3).
//! let p: PauliString = "XIYZ".parse()?;
//! assert_eq!(p.num_qubits(), 4);
//! assert_eq!(p.op(3), Pauli::X);
//! assert_eq!(p.op(2), Pauli::I);
//! assert_eq!(p.op(1), Pauli::Y);
//! assert_eq!(p.op(0), Pauli::Z);
//! assert_eq!(p.weight(), 3); // three non-identity operators
//! # Ok::<(), pauli::ParsePauliError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod grouping;
pub mod string;
pub mod sum;

pub use cluster::{CliffordOp, ClusterError, ClusterStats, ClusteredSum, DiagonalFrame};
pub use grouping::{group_qubit_wise, qubit_wise_commute, MeasurementGroup};
pub use string::{ParsePauliError, Pauli, PauliString, Phase};
pub use sum::WeightedPauliSum;
