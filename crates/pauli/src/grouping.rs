//! Qubit-wise commuting measurement grouping.
//!
//! Evaluating `E(θ) = Σ w_i ⟨P_i⟩` on hardware requires one circuit
//! execution per *measurement basis*, not per term: strings that commute
//! qubit-wise (on every qubit their operators are equal or one is identity)
//! can be measured simultaneously after one shared basis change. The paper
//! cites this family of optimizations as orthogonal to its own ("this type
//! of optimization reduces the number of iterations of the inner loop …
//! and can be employed together with our techniques" — §VIII-A); this
//! module provides the standard greedy first-fit grouping so the inner
//! loop's execution count can be reported alongside the outer-loop savings.

use crate::string::{Pauli, PauliString};
use crate::sum::WeightedPauliSum;

/// A set of qubit-wise commuting terms and their shared measurement basis.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementGroup {
    /// The merged basis: on each qubit, the non-identity operator shared by
    /// the group (identity where no member acts).
    pub basis: PauliString,
    /// Indices into the originating sum's term list.
    pub term_indices: Vec<usize>,
}

/// Returns `true` when two strings commute qubit-wise: on every qubit the
/// operators are equal or at least one is the identity.
///
/// # Examples
///
/// ```
/// use pauli::grouping::qubit_wise_commute;
///
/// let a = "XIZ".parse().unwrap();
/// let b = "XZI".parse().unwrap();
/// let c = "ZIZ".parse().unwrap();
/// assert!(qubit_wise_commute(&a, &b));
/// assert!(!qubit_wise_commute(&a, &c)); // X vs Z on the last qubit
/// ```
pub fn qubit_wise_commute(a: &PauliString, b: &PauliString) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit counts must match");
    for q in 0..a.num_qubits() {
        let (pa, pb) = (a.op(q), b.op(q));
        if pa != Pauli::I && pb != Pauli::I && pa != pb {
            return false;
        }
    }
    true
}

/// Greedy first-fit grouping of a weighted Pauli sum into qubit-wise
/// commuting measurement groups. Terms are processed in decreasing |weight|
/// (heavier terms seed groups), deterministically.
///
/// Each returned group's `basis` is the union of its members' operators;
/// measuring every qubit in that basis yields all member expectations from
/// one execution.
pub fn group_qubit_wise(sum: &WeightedPauliSum) -> Vec<MeasurementGroup> {
    let n = sum.num_qubits();
    let mut order: Vec<usize> = (0..sum.len()).collect();
    order.sort_by(|&i, &j| sum[j].0.abs().total_cmp(&sum[i].0.abs()).then(i.cmp(&j)));

    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for idx in order {
        let (_, term) = sum[idx];
        let mut placed = false;
        for g in &mut groups {
            if qubit_wise_commute(&g.basis, &term) {
                // Merge the term into the group's basis.
                for q in 0..n {
                    if g.basis.op(q) == Pauli::I {
                        g.basis.set_op(q, term.op(q));
                    }
                }
                g.term_indices.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(MeasurementGroup {
                basis: term,
                term_indices: vec![idx],
            });
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_from(terms: &[(&str, f64)]) -> WeightedPauliSum {
        let n = terms[0].0.len();
        WeightedPauliSum::from_terms(
            n,
            terms
                .iter()
                .map(|&(s, w)| (w, s.parse::<PauliString>().unwrap())),
        )
    }

    #[test]
    fn qwc_definition() {
        let zz: PauliString = "ZZ".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        let iz: PauliString = "IZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        assert!(qubit_wise_commute(&zz, &zi));
        assert!(qubit_wise_commute(&zi, &iz));
        assert!(!qubit_wise_commute(&zz, &xx));
        // General commutation is weaker than qubit-wise: ZZ and XX commute
        // but are not qubit-wise compatible.
        assert!(zz.commutes_with(&xx));
    }

    #[test]
    fn diagonal_terms_form_one_group() {
        let h = sum_from(&[("ZZI", 1.0), ("ZIZ", 0.5), ("IZZ", 0.3), ("ZII", 0.2)]);
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].basis.to_string(), "ZZZ");
        assert_eq!(groups[0].term_indices.len(), 4);
    }

    #[test]
    fn incompatible_bases_split() {
        let h = sum_from(&[("ZZ", 1.0), ("XX", 0.5), ("YY", 0.4)]);
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn every_term_lands_in_exactly_one_group() {
        let h = sum_from(&[
            ("ZZII", 1.0),
            ("IIZZ", 0.9),
            ("XXII", 0.8),
            ("IIXX", 0.7),
            ("ZIIZ", 0.6),
            ("XIIX", 0.5),
        ]);
        let groups = group_qubit_wise(&h);
        let mut seen = vec![false; h.len()];
        for g in &groups {
            for &i in &g.term_indices {
                assert!(!seen[i], "term {i} grouped twice");
                seen[i] = true;
                // Validity: every member is qubit-wise compatible with the
                // merged basis.
                assert!(qubit_wise_commute(&g.basis, &h[i].1));
            }
        }
        assert!(seen.into_iter().all(|s| s));
        // ZZII/IIZZ/ZIIZ fit one Z-basis group; XXII/IIXX/XIIX one X group.
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn grouping_is_deterministic() {
        let h = sum_from(&[("XY", 0.3), ("YX", 0.3), ("ZI", 0.3), ("IZ", 0.3)]);
        let a = group_qubit_wise(&h);
        let b = group_qubit_wise(&h);
        assert_eq!(a, b);
    }

    #[test]
    fn group_count_never_exceeds_term_count() {
        let h = sum_from(&[("XYZX", 1.0), ("YZXY", 0.9), ("ZXYZ", 0.8), ("IIII", 0.1)]);
        let groups = group_qubit_wise(&h);
        assert!(groups.len() <= h.len());
        assert!(!groups.is_empty());
    }
}
