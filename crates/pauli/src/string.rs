//! Single Pauli operators and n-qubit Pauli strings.
//!
//! Strings are stored in symplectic form: two bitmasks `x` and `z`, where
//! qubit `i` carries `X` when only `x` bit `i` is set, `Z` when only `z` bit
//! `i` is set, `Y` when both are set, and `I` when neither is. This makes
//! products, commutation checks, and statevector action O(1)–O(n) bit
//! operations, and it is the representation the compiler and the ansatz
//! compression both traverse millions of times.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use numeric::Complex64;

/// A single-qubit Pauli operator.
///
/// # Examples
///
/// ```
/// use pauli::Pauli;
///
/// let (phase, op) = Pauli::X.mul(Pauli::Y);
/// assert_eq!(op, Pauli::Z);          // XY = iZ
/// assert_eq!(phase.to_complex().im, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The Pauli-X (bit flip) operator.
    X,
    /// The Pauli-Y operator.
    Y,
    /// The Pauli-Z (phase flip) operator.
    Z,
}

impl Pauli {
    /// All four operators in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the `(x, z)` symplectic bits of this operator.
    #[inline]
    pub fn symplectic_bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs an operator from `(x, z)` symplectic bits.
    #[inline]
    pub fn from_symplectic_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Multiplies two single-qubit Paulis, returning the phase and result:
    /// `self · rhs = phase · result`.
    #[allow(clippy::should_implement_trait)] // returns (Phase, Pauli), not Self
    pub fn mul(self, rhs: Pauli) -> (Phase, Pauli) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) | (p, I) => (Phase::PlusOne, p),
            (X, X) | (Y, Y) | (Z, Z) => (Phase::PlusOne, I),
            (X, Y) => (Phase::PlusI, Z),
            (Y, X) => (Phase::MinusI, Z),
            (Y, Z) => (Phase::PlusI, X),
            (Z, Y) => (Phase::MinusI, X),
            (Z, X) => (Phase::PlusI, Y),
            (X, Z) => (Phase::MinusI, Y),
        }
    }

    /// Returns `true` for the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// The character representation: `I`, `X`, `Y`, or `Z`.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A fourth root of unity: the phases arising from Pauli products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// `+1`
    #[default]
    PlusOne,
    /// `+i`
    PlusI,
    /// `-1`
    MinusOne,
    /// `-i`
    MinusI,
}

impl Phase {
    /// Creates a phase from an exponent `k` of `i^k`.
    #[inline]
    pub fn from_power_of_i(k: u32) -> Self {
        match k % 4 {
            0 => Phase::PlusOne,
            1 => Phase::PlusI,
            2 => Phase::MinusOne,
            _ => Phase::MinusI,
        }
    }

    /// The exponent `k` such that this phase equals `i^k`.
    #[inline]
    pub fn power_of_i(self) -> u32 {
        match self {
            Phase::PlusOne => 0,
            Phase::PlusI => 1,
            Phase::MinusOne => 2,
            Phase::MinusI => 3,
        }
    }

    /// Multiplies two phases.
    #[inline]
    #[allow(clippy::should_implement_trait)] // small Copy enum; free-standing name reads fine
    pub fn mul(self, rhs: Phase) -> Phase {
        Phase::from_power_of_i(self.power_of_i() + rhs.power_of_i())
    }

    /// Converts to a complex scalar.
    #[inline]
    pub fn to_complex(self) -> Complex64 {
        match self {
            Phase::PlusOne => Complex64::ONE,
            Phase::PlusI => Complex64::I,
            Phase::MinusOne => -Complex64::ONE,
            Phase::MinusI => -Complex64::I,
        }
    }
}

/// Error parsing a [`PauliString`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePauliError {
    /// The string was empty.
    Empty,
    /// A character other than `I`, `X`, `Y`, `Z` was found.
    InvalidChar(char),
    /// More than 64 qubits requested.
    TooLong(usize),
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePauliError::Empty => write!(f, "empty Pauli string"),
            ParsePauliError::InvalidChar(c) => {
                write!(f, "invalid Pauli character `{c}` (expected I, X, Y, or Z)")
            }
            ParsePauliError::TooLong(n) => {
                write!(f, "Pauli string of {n} qubits exceeds the 64-qubit limit")
            }
        }
    }
}

impl Error for ParsePauliError {}

/// An n-qubit Pauli string `G_{n-1} ⊗ … ⊗ G_0` in symplectic form.
///
/// Following the paper's convention (§II-A) the *leftmost* character of the
/// textual form acts on the *highest* qubit index, so `"XIYZ"` puts `X` on
/// qubit 3 and `Z` on qubit 0.
///
/// Limited to 64 qubits (masks are single `u64`s); the paper's largest
/// benchmark needs 16.
///
/// # Examples
///
/// ```
/// use pauli::{Pauli, PauliString};
///
/// let zz: PauliString = "ZZ".parse()?;
/// let xx: PauliString = "XX".parse()?;
/// assert!(zz.commutes_with(&xx));
/// let zi: PauliString = "ZI".parse()?;
/// let xi: PauliString = "XI".parse()?;
/// assert!(!zi.commutes_with(&xi));
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    num_qubits: u8,
    x: u64,
    z: u64,
}

impl PauliString {
    /// Creates the identity string on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or exceeds 64.
    pub fn identity(num_qubits: usize) -> Self {
        assert!((1..=64).contains(&num_qubits), "1..=64 qubits supported");
        PauliString {
            num_qubits: num_qubits as u8,
            x: 0,
            z: 0,
        }
    }

    /// Creates a string from a list of `(qubit, operator)` pairs; unlisted
    /// qubits carry the identity.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range, or if a qubit is listed
    /// twice with different operators.
    pub fn from_ops(num_qubits: usize, ops: &[(usize, Pauli)]) -> Self {
        let mut s = PauliString::identity(num_qubits);
        for &(q, p) in ops {
            assert!(
                q < num_qubits,
                "qubit {q} out of range for {num_qubits} qubits"
            );
            let existing = s.op(q);
            assert!(
                existing == Pauli::I || existing == p,
                "qubit {q} assigned two different operators"
            );
            s.set_op(q, p);
        }
        s
    }

    /// Creates a string directly from symplectic masks.
    ///
    /// # Panics
    ///
    /// Panics if a mask has bits beyond `num_qubits`.
    pub fn from_symplectic(num_qubits: usize, x: u64, z: u64) -> Self {
        let s = PauliString::identity(num_qubits);
        let valid = s.qubit_mask();
        assert_eq!(x & !valid, 0, "x mask has bits outside the register");
        assert_eq!(z & !valid, 0, "z mask has bits outside the register");
        PauliString {
            num_qubits: s.num_qubits,
            x,
            z,
        }
    }

    #[inline]
    fn qubit_mask(&self) -> u64 {
        if self.num_qubits == 64 {
            u64::MAX
        } else {
            (1u64 << self.num_qubits) - 1
        }
    }

    /// Number of qubits the string is defined on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits as usize
    }

    /// The operator acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn op(&self, q: usize) -> Pauli {
        assert!(q < self.num_qubits(), "qubit index out of range");
        Pauli::from_symplectic_bits((self.x >> q) & 1 == 1, (self.z >> q) & 1 == 1)
    }

    /// Sets the operator on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn set_op(&mut self, q: usize, p: Pauli) {
        assert!(q < self.num_qubits(), "qubit index out of range");
        let (xb, zb) = p.symplectic_bits();
        self.x = (self.x & !(1 << q)) | ((xb as u64) << q);
        self.z = (self.z & !(1 << q)) | ((zb as u64) << q);
    }

    /// The symplectic `x` mask (`X` and `Y` positions).
    #[inline]
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// The symplectic `z` mask (`Z` and `Y` positions).
    #[inline]
    pub fn z_mask(&self) -> u64 {
        self.z
    }

    /// Bitmask of qubits carrying a non-identity operator (the string's
    /// *support*).
    #[inline]
    pub fn support_mask(&self) -> u64 {
        self.x | self.z
    }

    /// The qubits carrying a non-identity operator, ascending.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_qubits())
            .filter(|&q| (self.support_mask() >> q) & 1 == 1)
            .collect()
    }

    /// Number of non-identity operators (Hamming weight of the support).
    #[inline]
    pub fn weight(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Returns `true` if every qubit carries the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.support_mask() == 0
    }

    /// Whether this string commutes with `other`.
    ///
    /// Two Pauli strings commute iff they anticommute on an even number of
    /// qubits, which the symplectic form reduces to a parity of two mask
    /// intersections.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    #[inline]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit counts must match");
        let anti = (self.x & other.z).count_ones() + (self.z & other.x).count_ones();
        anti.is_multiple_of(2)
    }

    /// The group product `self · other = phase · string`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn mul(&self, other: &PauliString) -> (Phase, PauliString) {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit counts must match");
        let mut k: u32 = 0;
        for q in 0..self.num_qubits() {
            let (ph, _) = self.op(q).mul(other.op(q));
            k += ph.power_of_i();
        }
        (
            Phase::from_power_of_i(k),
            PauliString {
                num_qubits: self.num_qubits,
                x: self.x ^ other.x,
                z: self.z ^ other.z,
            },
        )
    }

    /// Iterates over the operators from qubit 0 upward.
    pub fn iter_ops(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.num_qubits()).map(move |q| self.op(q))
    }

    /// Applies this string to a computational-basis state index, returning
    /// the flipped index and the phase: `P|b⟩ = phase · |b'⟩`.
    ///
    /// Used by the statevector expectation engine; `b` must have no bits
    /// beyond the register.
    #[inline]
    pub fn apply_to_basis_state(&self, b: u64) -> (u64, Complex64) {
        let ny = (self.x & self.z).count_ones();
        let sign_flips = (b & self.z).count_ones();
        let k = ny + 2 * sign_flips;
        (b ^ self.x, Phase::from_power_of_i(k).to_complex())
    }

    /// The paper's *importance decay factor* `d` between an ansatz string
    /// (`self`, `P_a`) and a Hamiltonian string (`P_H`): the number of qubits
    /// where (1) `P_a` carries `I`, (2) `P_H` carries `I`, or (3) both carry
    /// the same operator (§III-A, Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn importance_decay_factor(&self, hamiltonian_term: &PauliString) -> u32 {
        assert_eq!(
            self.num_qubits, hamiltonian_term.num_qubits,
            "qubit counts must match"
        );
        let mut d = 0;
        for q in 0..self.num_qubits() {
            let a = self.op(q);
            let h = hamiltonian_term.op(q);
            if a == Pauli::I || h == Pauli::I || a == h {
                d += 1;
            }
        }
        d
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses textual form like `"XIYZ"`; the leftmost character acts on the
    /// highest qubit (paper convention).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParsePauliError::Empty);
        }
        if s.len() > 64 {
            return Err(ParsePauliError::TooLong(s.len()));
        }
        let n = s.chars().count();
        if n > 64 {
            return Err(ParsePauliError::TooLong(n));
        }
        let mut out = PauliString::identity(n);
        for (idx, c) in s.chars().enumerate() {
            let q = n - 1 - idx;
            let p = match c {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => return Err(ParsePauliError::InvalidChar(other)),
            };
            out.set_op(q, p);
        }
        Ok(out)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in (0..self.num_qubits()).rev() {
            write!(f, "{}", self.op(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_products_follow_the_algebra() {
        // XY = iZ, YZ = iX, ZX = iY and the anti-cyclic counterparts.
        assert_eq!(Pauli::X.mul(Pauli::Y), (Phase::PlusI, Pauli::Z));
        assert_eq!(Pauli::Y.mul(Pauli::Z), (Phase::PlusI, Pauli::X));
        assert_eq!(Pauli::Z.mul(Pauli::X), (Phase::PlusI, Pauli::Y));
        assert_eq!(Pauli::Y.mul(Pauli::X), (Phase::MinusI, Pauli::Z));
        for p in Pauli::ALL {
            assert_eq!(p.mul(p), (Phase::PlusOne, Pauli::I));
            assert_eq!(Pauli::I.mul(p), (Phase::PlusOne, p));
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["XIYZ", "ZZZZ", "IIII", "X", "IXYZXYZI"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn paper_figure2_example_layout() {
        // XIYZ: X on q3, I on q2, Y on q1, Z on q0 (paper Fig 2a).
        let p: PauliString = "XIYZ".parse().unwrap();
        assert_eq!(p.op(3), Pauli::X);
        assert_eq!(p.op(2), Pauli::I);
        assert_eq!(p.op(1), Pauli::Y);
        assert_eq!(p.op(0), Pauli::Z);
        assert_eq!(p.support(), vec![0, 1, 3]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!("".parse::<PauliString>(), Err(ParsePauliError::Empty));
        assert_eq!(
            "XAZ".parse::<PauliString>(),
            Err(ParsePauliError::InvalidChar('A'))
        );
        let long = "I".repeat(65);
        assert_eq!(
            long.parse::<PauliString>(),
            Err(ParsePauliError::TooLong(65))
        );
    }

    #[test]
    fn product_matches_componentwise_algebra() {
        let a: PauliString = "XYZI".parse().unwrap();
        let b: PauliString = "YYXZ".parse().unwrap();
        let (phase, c) = a.mul(&b);
        // Componentwise: X·Y=iZ, Y·Y=I, Z·X=iY, I·Z=Z → i² = -1, string ZIYZ.
        assert_eq!(c, "ZIYZ".parse().unwrap());
        assert_eq!(phase, Phase::MinusOne);
    }

    #[test]
    fn commutation_via_products() {
        let pairs = [("XX", "ZZ"), ("XI", "IZ"), ("XY", "YX"), ("XI", "ZI")];
        for (sa, sb) in pairs {
            let a: PauliString = sa.parse().unwrap();
            let b: PauliString = sb.parse().unwrap();
            let (pab, _) = a.mul(&b);
            let (pba, _) = b.mul(&a);
            assert_eq!(a.commutes_with(&b), pab == pba, "{sa} vs {sb}");
        }
    }

    #[test]
    fn basis_state_action_of_x_y_z() {
        // X on a 1-qubit register flips the bit with phase +1.
        let x: PauliString = "X".parse().unwrap();
        assert_eq!(x.apply_to_basis_state(0), (1, Complex64::ONE));
        // Z gives (-1)^b.
        let z: PauliString = "Z".parse().unwrap();
        assert_eq!(z.apply_to_basis_state(1).1, -Complex64::ONE);
        assert_eq!(z.apply_to_basis_state(0).1, Complex64::ONE);
        // Y|0> = i|1>, Y|1> = -i|0>.
        let y: PauliString = "Y".parse().unwrap();
        assert_eq!(y.apply_to_basis_state(0), (1, Complex64::I));
        assert_eq!(y.apply_to_basis_state(1), (0, -Complex64::I));
    }

    #[test]
    fn importance_decay_factor_matches_paper_example() {
        // Figure 4: Pa = X I X Y (q3..q0), PH = I Z X Z; cases: q3 PH=I? no —
        // the paper's worked example has d = 3 with Pa=..., reproduce the
        // three rules directly instead.
        let pa: PauliString = "XIXY".parse().unwrap();
        let ph: PauliString = "IZXZ".parse().unwrap();
        // q3: PH = I (rule 2) → decay. q2: Pa = I (rule 1) → decay.
        // q1: both X (rule 3) → decay. q0: Y vs Z differ → no decay.
        assert_eq!(pa.importance_decay_factor(&ph), 3);
    }

    #[test]
    fn from_ops_and_accessors() {
        let p = PauliString::from_ops(5, &[(0, Pauli::Z), (3, Pauli::X)]);
        assert_eq!(p.to_string(), "IXIIZ");
        assert_eq!(p.weight(), 2);
        assert!(!p.is_identity());
        assert!(PauliString::identity(5).is_identity());
    }

    #[test]
    #[should_panic]
    fn from_ops_rejects_conflicts() {
        let _ = PauliString::from_ops(3, &[(1, Pauli::X), (1, Pauli::Z)]);
    }

    #[test]
    fn symplectic_masks_are_consistent() {
        let p: PauliString = "YXZI".parse().unwrap();
        // q3=Y (x,z), q2=X (x), q1=Z (z), q0=I.
        assert_eq!(p.x_mask(), 0b1100);
        assert_eq!(p.z_mask(), 0b1010);
        let q = PauliString::from_symplectic(4, 0b1100, 0b1010);
        assert_eq!(p, q);
    }
}
