//! Weighted sums of Pauli strings: Hermitian observables.
//!
//! A molecular Hamiltonian after Jordan–Wigner encoding is exactly such a sum
//! `H = Σ_j w_j P_j` (paper §II-A). This module provides the container plus
//! the numerics the evaluation needs: statevector action, expectation values,
//! and exact ground-state energies through the Lanczos solver.

use std::fmt;
use std::ops::Index;

use numeric::{lanczos_ground_state, Complex64, LanczosOptions};

use crate::string::PauliString;

/// The Hilbert-space dimension `2^num_qubits`, with an explicit panic when
/// the shift would overflow `usize` instead of the silent wrap `1 << n` gives.
fn checked_dim(num_qubits: usize) -> usize {
    match 1usize.checked_shl(num_qubits as u32) {
        Some(dim) => dim,
        None => panic!("Pauli-sum dimension 2^{num_qubits} overflows usize on this platform"),
    }
}

/// One term's contribution `w·Re⟨ψ|P|ψ⟩`, accumulated over fixed
/// [`par::DEFAULT_CHUNK`]-sized chunks folded in ascending order. The chunk
/// grid never depends on the thread count, so this returns bit-identical
/// floats whether it runs serially (inside a per-term worker, which is
/// pinned to one thread) or parallelized over chunks on the calling thread.
pub(crate) fn term_expectation(state: &[Complex64], w: f64, p: PauliString) -> f64 {
    let x = p.x_mask();
    let z = p.z_mask();
    let ny = (x & z).count_ones();
    let base = crate::string::Phase::from_power_of_i(ny).to_complex();
    let acc = par::map_reduce(
        state.len(),
        par::DEFAULT_CHUNK,
        Complex64::ZERO,
        |range| {
            let mut acc = Complex64::ZERO;
            for b in range {
                let bu = b as u64;
                let sign = if (bu & z).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += state[(bu ^ x) as usize].conj() * state[b] * (base * sign);
            }
            acc
        },
        |a, b| a + b,
    );
    w * acc.re
}

/// A weighted sum of Pauli strings, `H = Σ_j w_j P_j`, with real weights.
///
/// Terms with the same string are combined on insertion via [`simplify`];
/// near-zero weights can be pruned. Iteration order is insertion order,
/// which downstream code (ansatz ordering, compiler) relies on.
///
/// [`simplify`]: WeightedPauliSum::simplify
///
/// # Examples
///
/// ```
/// use pauli::{PauliString, WeightedPauliSum};
///
/// // H = 0.5·ZZ − 0.25·XI
/// let mut h = WeightedPauliSum::new(2);
/// h.push(0.5, "ZZ".parse()?);
/// h.push(-0.25, "XI".parse()?);
/// assert_eq!(h.len(), 2);
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPauliSum {
    num_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl WeightedPauliSum {
    /// Creates an empty sum on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or exceeds 64.
    pub fn new(num_qubits: usize) -> Self {
        assert!((1..=64).contains(&num_qubits), "1..=64 qubits supported");
        WeightedPauliSum {
            num_qubits,
            terms: Vec::new(),
        }
    }

    /// Builds a sum from `(weight, string)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any string has a different qubit count.
    pub fn from_terms(
        num_qubits: usize,
        terms: impl IntoIterator<Item = (f64, PauliString)>,
    ) -> Self {
        let mut s = WeightedPauliSum::new(num_qubits);
        for (w, p) in terms {
            s.push(w, p);
        }
        s
    }

    /// Appends a term.
    ///
    /// # Panics
    ///
    /// Panics if `string.num_qubits()` differs from the sum's.
    pub fn push(&mut self, weight: f64, string: PauliString) {
        assert_eq!(
            string.num_qubits(),
            self.num_qubits,
            "term qubit count must match the sum"
        );
        self.terms.push((weight, string));
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the sum has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(weight, string)` terms in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (f64, PauliString)> {
        self.terms.iter()
    }

    /// Combines duplicate strings and removes terms with `|w| ≤ tol`.
    pub fn simplify(&mut self, tol: f64) {
        let mut combined: Vec<(f64, PauliString)> = Vec::with_capacity(self.terms.len());
        // Keep first-occurrence order while merging duplicates; the term
        // counts here are a few thousand at most, and order stability
        // matters more than asymptotics.
        for &(w, p) in &self.terms {
            if let Some(entry) = combined.iter_mut().find(|(_, q)| *q == p) {
                entry.0 += w;
            } else {
                combined.push((w, p));
            }
        }
        combined.retain(|(w, _)| w.abs() > tol);
        self.terms = combined;
    }

    /// Sum of absolute weights, an upper bound on the spectral norm.
    pub fn one_norm(&self) -> f64 {
        self.terms.iter().map(|(w, _)| w.abs()).sum()
    }

    /// The weight of the identity term, if present (the constant offset of a
    /// molecular Hamiltonian).
    pub fn identity_weight(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(_, p)| p.is_identity())
            .map(|(w, _)| w)
            .sum()
    }

    /// Applies `H` to a statevector: `out = H·state`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths are not `2^num_qubits`.
    pub fn apply(&self, state: &[Complex64], out: &mut [Complex64]) {
        let dim = checked_dim(self.num_qubits);
        assert_eq!(state.len(), dim, "state length must be 2^n");
        assert_eq!(out.len(), dim, "output length must be 2^n");
        out.fill(Complex64::ZERO);
        for &(w, p) in &self.terms {
            let x = p.x_mask();
            let ny = (p.x_mask() & p.z_mask()).count_ones();
            let base = crate::string::Phase::from_power_of_i(ny).to_complex() * w;
            let z = p.z_mask();
            for b in 0..dim as u64 {
                let sign = if (b & z).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                out[(b ^ x) as usize] += state[b as usize] * (base * sign);
            }
        }
    }

    /// The real expectation value `⟨state|H|state⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^num_qubits`.
    pub fn expectation(&self, state: &[Complex64]) -> f64 {
        let dim = checked_dim(self.num_qubits);
        assert_eq!(state.len(), dim, "state length must be 2^n");
        // Parallelize over terms when there are enough to keep every worker
        // busy; otherwise each term's amplitude sweep parallelizes over
        // chunks internally. Both strategies fold the same fixed chunk grid
        // in the same order, so the result is bit-identical either way (and
        // identical at any thread count).
        let per_term: Vec<f64> = if self.terms.len() >= 2 * par::num_threads() {
            par::map_slice(&self.terms, |&(w, p)| term_expectation(state, w, p))
        } else {
            self.terms
                .iter()
                .map(|&(w, p)| term_expectation(state, w, p))
                .collect()
        };
        per_term.into_iter().sum()
    }

    /// The real expectation value `⟨state|H|state⟩` via commuting-cluster
    /// simultaneous diagonalization: one Clifford rotation per cluster
    /// instead of one amplitude sweep per term (see [`crate::cluster`]).
    ///
    /// Agrees with [`expectation`](Self::expectation) to floating-point
    /// tolerance (the summation order differs). This convenience entry
    /// point rebuilds the cluster partition on every call; loops that
    /// evaluate the same sum repeatedly should hold a
    /// [`ClusteredSum`](crate::ClusteredSum) instead.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^num_qubits`.
    pub fn expectation_clustered(&self, state: &[Complex64]) -> f64 {
        crate::cluster::ClusteredSum::build(self).expectation(state)
    }

    /// Applies the exact time evolution `|ψ⟩ ← exp(-i·H·t)|ψ⟩` by a
    /// scaled Taylor expansion (sub-stepped so each partial sum converges
    /// rapidly). The reference for validating Trotterized circuits.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^num_qubits`.
    pub fn evolve_exact(&self, t: f64, state: &mut [Complex64]) {
        let dim = checked_dim(self.num_qubits);
        assert_eq!(state.len(), dim, "state length must be 2^n");
        let norm_bound = self.one_norm().max(1e-12);
        let substeps = (norm_bound * t.abs()).ceil().max(1.0) as usize;
        let dt = t / substeps as f64;

        let mut term = vec![Complex64::ZERO; dim];
        let mut scratch = vec![Complex64::ZERO; dim];
        for _ in 0..substeps {
            // |ψ⟩ ← Σ_k (-i·H·dt)^k / k! |ψ⟩
            term.copy_from_slice(state);
            let mut out: Vec<Complex64> = state.to_vec();
            for k in 1..200 {
                self.apply(&term, &mut scratch);
                let factor = Complex64::new(0.0, -dt) / k as f64;
                for (ti, si) in term.iter_mut().zip(&scratch) {
                    *ti = *si * factor;
                }
                let mut term_norm = 0.0;
                for (oi, ti) in out.iter_mut().zip(&term) {
                    *oi += *ti;
                    term_norm += ti.norm_sqr();
                }
                if term_norm.sqrt() < 1e-15 {
                    break;
                }
            }
            state.copy_from_slice(&out);
        }
    }

    /// The energy variance `⟨H²⟩ − ⟨H⟩²` in a state — zero exactly on
    /// eigenstates, making it an eigenstate witness for variational
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^num_qubits`.
    pub fn variance(&self, state: &[Complex64]) -> f64 {
        let dim = checked_dim(self.num_qubits);
        assert_eq!(state.len(), dim, "state length must be 2^n");
        let mut h_psi = vec![Complex64::ZERO; dim];
        self.apply(state, &mut h_psi);
        let e: f64 = state
            .iter()
            .zip(&h_psi)
            .map(|(a, b)| (a.conj() * *b).re)
            .sum();
        let e2: f64 = h_psi.iter().map(|z| z.norm_sqr()).sum();
        (e2 - e * e).max(0.0)
    }

    /// Exact smallest eigenvalue (ground-state energy) via Lanczos.
    ///
    /// This regenerates the paper's "Ground State" reference curves. The
    /// computation is deterministic for a given `seed`.
    pub fn ground_state_energy(&self) -> f64 {
        let dim = checked_dim(self.num_qubits);
        let r = lanczos_ground_state(
            dim,
            |x, y| self.apply(x, y),
            LanczosOptions::default(),
            0x5eed,
        );
        r.eigenvalue
    }

    /// Exact ground state energy *and* normalized eigenvector.
    pub fn ground_state(&self) -> (f64, Vec<Complex64>) {
        let dim = checked_dim(self.num_qubits);
        let (r, v) = numeric::lanczos_ground_state_with_vector(
            dim,
            |x, y| self.apply(x, y),
            LanczosOptions {
                tol: 1e-12,
                ..Default::default()
            },
            0x5eed,
        );
        (r.eigenvalue, v)
    }

    /// The `k` lowest eigenvalues via Lanczos with deflation: each found
    /// eigenvector is projected up by a large shift before the next solve.
    ///
    /// Degenerate eigenvalues are returned once per copy (the deflated
    /// operator still contains the remaining degenerate partners).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the space dimension.
    pub fn lowest_eigenvalues(&self, k: usize) -> Vec<f64> {
        let dim = checked_dim(self.num_qubits);
        assert!(k >= 1 && k <= dim, "k must be in 1..=2^n");
        let shift = 10.0 * self.one_norm().max(1.0);
        let mut deflated: Vec<Vec<Complex64>> = Vec::new();
        let mut values = Vec::with_capacity(k);
        for round in 0..k {
            let (r, v) = numeric::lanczos_ground_state_with_vector(
                dim,
                |x, y| {
                    self.apply(x, y);
                    // + shift · Σ_j |v_j⟩⟨v_j| x
                    for vj in &deflated {
                        let overlap: Complex64 = vj.iter().zip(x).map(|(a, b)| a.conj() * *b).sum();
                        for (yi, vi) in y.iter_mut().zip(vj) {
                            *yi += *vi * overlap * shift;
                        }
                    }
                },
                LanczosOptions {
                    tol: 1e-12,
                    max_iter: 400,
                },
                0x5eed + round as u64,
            );
            values.push(r.eigenvalue);
            deflated.push(v);
        }
        values
    }
}

impl Index<usize> for WeightedPauliSum {
    type Output = (f64, PauliString);
    fn index(&self, i: usize) -> &(f64, PauliString) {
        &self.terms[i]
    }
}

impl Extend<(f64, PauliString)> for WeightedPauliSum {
    fn extend<T: IntoIterator<Item = (f64, PauliString)>>(&mut self, iter: T) {
        for (w, p) in iter {
            self.push(w, p);
        }
    }
}

impl<'a> IntoIterator for &'a WeightedPauliSum {
    type Item = &'a (f64, PauliString);
    type IntoIter = std::slice::Iter<'a, (f64, PauliString)>;
    fn into_iter(self) -> Self::IntoIter {
        self.terms.iter()
    }
}

impl fmt::Display for WeightedPauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (w, p)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w:+.6}·{p}")?;
        }
        if self.terms.is_empty() {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis_state(n: usize, b: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[b] = Complex64::ONE;
        v
    }

    #[test]
    fn expectation_of_z_on_basis_states() {
        let mut h = WeightedPauliSum::new(1);
        h.push(1.0, "Z".parse().unwrap());
        assert!((h.expectation(&basis_state(1, 0)) - 1.0).abs() < 1e-15);
        assert!((h.expectation(&basis_state(1, 1)) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn expectation_of_x_on_plus_state() {
        let mut h = WeightedPauliSum::new(1);
        h.push(2.0, "X".parse().unwrap());
        let s = 1.0 / 2f64.sqrt();
        let plus = vec![Complex64::from_real(s), Complex64::from_real(s)];
        assert!((h.expectation(&plus) - 2.0).abs() < 1e-14);
        let minus = vec![Complex64::from_real(s), Complex64::from_real(-s)];
        assert!((h.expectation(&minus) + 2.0).abs() < 1e-14);
    }

    #[test]
    fn apply_matches_expectation() {
        // ⟨ψ|H|ψ⟩ computed via apply must agree with expectation().
        let mut h = WeightedPauliSum::new(2);
        h.push(0.3, "ZZ".parse().unwrap());
        h.push(-0.7, "XY".parse().unwrap());
        h.push(0.1, "IX".parse().unwrap());
        let state: Vec<Complex64> = (0..4)
            .map(|k| Complex64::new((k as f64 * 0.9).cos(), (k as f64 * 0.4).sin()))
            .collect();
        let nrm = state.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let state: Vec<Complex64> = state.into_iter().map(|z| z / nrm).collect();
        let mut hs = vec![Complex64::ZERO; 4];
        h.apply(&state, &mut hs);
        let direct: Complex64 = state.iter().zip(&hs).map(|(a, b)| a.conj() * *b).sum();
        assert!((direct.re - h.expectation(&state)).abs() < 1e-13);
        assert!(direct.im.abs() < 1e-13);
    }

    #[test]
    fn simplify_merges_and_prunes() {
        let mut h = WeightedPauliSum::new(2);
        h.push(0.5, "ZZ".parse().unwrap());
        h.push(0.5, "ZZ".parse().unwrap());
        h.push(1e-14, "XX".parse().unwrap());
        h.simplify(1e-12);
        assert_eq!(h.len(), 1);
        assert!((h[0].0 - 1.0).abs() < 1e-15);
    }

    #[test]
    fn ground_state_of_simple_ising_pair() {
        // H = -Z0·Z1 has ground energy -1 (degenerate |00>, |11>).
        let mut h = WeightedPauliSum::new(2);
        h.push(-1.0, "ZZ".parse().unwrap());
        assert!((h.ground_state_energy() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn ground_state_of_transverse_field() {
        // H = -X on one qubit: eigenvalues ±1, ground = -1.
        let mut h = WeightedPauliSum::new(1);
        h.push(-1.0, "X".parse().unwrap());
        assert!((h.ground_state_energy() + 1.0).abs() < 1e-9);
        // H = Z + X: eigenvalues ±√2.
        let mut h2 = WeightedPauliSum::new(1);
        h2.push(1.0, "Z".parse().unwrap());
        h2.push(1.0, "X".parse().unwrap());
        assert!((h2.ground_state_energy() + 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn lowest_eigenvalues_of_known_spectrum() {
        // H = Z0 + 2·Z1 on 2 qubits: spectrum {-3, -1, 1, 3}.
        let mut h = WeightedPauliSum::new(2);
        h.push(1.0, "IZ".parse().unwrap());
        h.push(2.0, "ZI".parse().unwrap());
        let vals = h.lowest_eigenvalues(3);
        let expected = [-3.0, -1.0, 1.0];
        for (v, e) in vals.iter().zip(&expected) {
            assert!((v - e).abs() < 1e-7, "{v} vs {e}");
        }
    }

    #[test]
    fn ground_state_vector_has_correct_energy() {
        let mut h = WeightedPauliSum::new(2);
        h.push(-1.0, "ZZ".parse().unwrap());
        h.push(0.5, "XI".parse().unwrap());
        let (e, v) = h.ground_state();
        assert!((h.expectation(&v) - e).abs() < 1e-8);
        let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
    }

    #[test]
    fn exact_evolution_matches_single_term_formula() {
        // For a single Pauli term, exp(-i·w·t·P) has the closed form
        // cos(wt)·I − i·sin(wt)·P.
        let mut h = WeightedPauliSum::new(2);
        h.push(0.7, "XY".parse().unwrap());
        let mut state = vec![Complex64::ZERO; 4];
        state[0b01] = Complex64::ONE;
        let mut evolved = state.clone();
        h.evolve_exact(0.9, &mut evolved);

        let (w, p) = h[0];
        let angle = w * 0.9;
        let mut expected = vec![Complex64::ZERO; 4];
        let (flip, phase) = p.apply_to_basis_state(0b01);
        expected[0b01] = Complex64::from_real(angle.cos());
        expected[flip as usize] += Complex64::new(0.0, -angle.sin()) * phase;
        for (a, b) in evolved.iter().zip(&expected) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn exact_evolution_is_unitary_and_conserves_energy() {
        let mut h = WeightedPauliSum::new(3);
        h.push(0.5, "ZZI".parse().unwrap());
        h.push(-0.3, "IXX".parse().unwrap());
        h.push(0.2, "YIY".parse().unwrap());
        let mut state: Vec<Complex64> = (0..8)
            .map(|k| Complex64::new(1.0 + k as f64, 0.5 * k as f64))
            .collect();
        let norm = state.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for z in &mut state {
            *z = *z / norm;
        }
        let e_before = h.expectation(&state);
        h.evolve_exact(2.3, &mut state);
        let norm_after = state.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!((norm_after - 1.0).abs() < 1e-10);
        assert!(
            (h.expectation(&state) - e_before).abs() < 1e-10,
            "energy drift"
        );
    }

    #[test]
    fn forward_backward_evolution_round_trips() {
        let mut h = WeightedPauliSum::new(2);
        h.push(1.1, "XZ".parse().unwrap());
        h.push(-0.4, "ZX".parse().unwrap());
        let mut state = vec![Complex64::ZERO; 4];
        state[2] = Complex64::ONE;
        let original = state.clone();
        h.evolve_exact(1.7, &mut state);
        h.evolve_exact(-1.7, &mut state);
        for (a, b) in state.iter().zip(&original) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn identity_weight_and_one_norm() {
        let mut h = WeightedPauliSum::new(2);
        h.push(-3.5, PauliString::identity(2));
        h.push(1.0, "ZI".parse().unwrap());
        assert_eq!(h.identity_weight(), -3.5);
        assert_eq!(h.one_norm(), 4.5);
    }

    #[test]
    fn display_formats_terms() {
        let mut h = WeightedPauliSum::new(2);
        h.push(0.5, "ZZ".parse().unwrap());
        assert_eq!(h.to_string(), "+0.500000·ZZ");
        assert_eq!(WeightedPauliSum::new(1).to_string(), "0");
    }

    #[test]
    #[should_panic]
    fn push_rejects_mismatched_width() {
        let mut h = WeightedPauliSum::new(2);
        h.push(1.0, "ZZZ".parse().unwrap());
    }
}
