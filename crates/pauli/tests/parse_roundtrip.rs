//! Property-based tests for Pauli-string parsing: display/parse round
//! trips and the typed [`ParsePauliError`] taxonomy (proptest).

use proptest::prelude::*;

use pauli::{ParsePauliError, PauliString};

/// Strategy: a valid Pauli text of 1–64 characters.
fn valid_pauli_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just("I"), Just("X"), Just("Y"), Just("Z")],
        1..65,
    )
    .prop_map(|chars| chars.concat())
}

/// Characters that are not Pauli operators in either case.
const INVALID_CHARS: &[char] = &['A', 'B', 'Q', 'W', 'P', 'a', 'q', 'w', '0', '9', '*', ' '];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// display(parse(s)) == s for every valid uppercase Pauli text.
    #[test]
    fn parse_then_display_round_trips(s in valid_pauli_text()) {
        let p: PauliString = s.parse().expect("valid text parses");
        prop_assert_eq!(p.to_string(), s);
    }

    /// parse(display(p)) == p: the textual form is a faithful encoding.
    #[test]
    fn display_then_parse_round_trips(s in valid_pauli_text()) {
        let p: PauliString = s.parse().expect("valid text parses");
        let q: PauliString = p.to_string().parse().expect("display re-parses");
        prop_assert_eq!(p, q);
    }

    /// Lowercase input parses to the same operator as uppercase.
    #[test]
    fn parsing_is_case_insensitive(s in valid_pauli_text()) {
        let upper: PauliString = s.parse().expect("uppercase parses");
        let lower: PauliString = s.to_lowercase().parse().expect("lowercase parses");
        prop_assert_eq!(upper, lower);
    }

    /// Any character outside IXYZ (either case) yields InvalidChar carrying
    /// exactly the offending character, and the error Display names it.
    #[test]
    fn invalid_char_is_reported_with_the_culprit(
        prefix in prop::collection::vec(prop_oneof![Just("I"), Just("X"), Just("Y"), Just("Z")], 0..8),
        bad_idx in 0usize..12,
    ) {
        let bad = INVALID_CHARS[bad_idx];
        let text = format!("{}{}", prefix.concat(), bad);
        let err = text.parse::<PauliString>().expect_err("must fail");
        prop_assert_eq!(err.clone(), ParsePauliError::InvalidChar(bad));
        prop_assert!(
            err.to_string().contains(bad),
            "Display must name the culprit"
        );
    }

    /// Oversized strings fail with TooLong carrying the length.
    #[test]
    fn too_long_is_reported_with_the_length(extra in 1usize..40) {
        let text = "Z".repeat(64 + extra);
        let err = text.parse::<PauliString>().expect_err("must fail");
        prop_assert_eq!(err, ParsePauliError::TooLong(64 + extra));
    }
}

#[test]
fn empty_input_is_a_typed_error() {
    assert_eq!(
        "".parse::<PauliString>().expect_err("empty must fail"),
        ParsePauliError::Empty
    );
    assert_eq!(ParsePauliError::Empty.to_string(), "empty Pauli string");
}
