//! Property-based tests on the electronic-structure numerics (proptest).

use proptest::prelude::*;

use chem::basis::build_basis;
use chem::boys::boys;
use chem::geometry::shapes::diatomic;
use chem::integrals::{eri, kinetic, nuclear, overlap};
use chem::Element;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Boys function is positive, bounded by F_m(0) = 1/(2m+1), and
    /// decreasing in both m and x.
    #[test]
    fn boys_bounds_and_monotonicity(x in 0.0f64..60.0, m_max in 1usize..8) {
        let f = boys(m_max, x);
        for (m, v) in f.iter().enumerate() {
            prop_assert!(*v > 0.0);
            prop_assert!(*v <= 1.0 / (2.0 * m as f64 + 1.0) + 1e-12);
        }
        for w in f.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-15, "not decreasing in m");
        }
        let g = boys(m_max, x + 0.5);
        for (a, b) in f.iter().zip(&g) {
            prop_assert!(b <= a, "not decreasing in x");
        }
    }

    /// Gaussian-basis integral symmetries and positivity on H2 at random
    /// bond lengths: S and T symmetric, diagonal overlap 1, self-repulsion
    /// (aa|aa) positive and bounded by pairwise Schwarz products.
    #[test]
    fn integral_symmetries_hold_for_h2(bond in 0.3f64..3.0) {
        let m = diatomic(Element::H, Element::H, bond);
        let b = build_basis(&m);
        let (f0, f1) = (&b[0], &b[1]);

        prop_assert!((overlap(f0, f1) - overlap(f1, f0)).abs() < 1e-12);
        prop_assert!((kinetic(f0, f1) - kinetic(f1, f0)).abs() < 1e-12);
        prop_assert!((overlap(f0, f0) - 1.0).abs() < 1e-9);
        prop_assert!(kinetic(f0, f0) > 0.0);
        prop_assert!(nuclear(f0, f0, &m) < 0.0, "attraction must be negative");

        let aaaa = eri(f0, f0, f0, f0);
        let abab = eri(f0, f1, f0, f1);
        let aabb = eri(f0, f0, f1, f1);
        prop_assert!(aaaa > 0.0);
        prop_assert!(abab >= -1e-12);
        // Cauchy–Schwarz: (ab|ab) ≤ √((aa|aa)(bb|bb)).
        let bbbb = eri(f1, f1, f1, f1);
        prop_assert!(abab <= (aaaa * bbbb).sqrt() + 1e-10);
        // Overlap-squared bound keeps (aa|bb) below the self-repulsions.
        prop_assert!(aabb <= aaaa.max(bbbb) + 1e-10);

        // ERI 8-fold symmetry on the mixed integral.
        let perm = eri(f1, f0, f0, f1);
        let base = eri(f0, f1, f1, f0);
        prop_assert!((perm - base).abs() < 1e-12);
    }

    /// Overlap decays monotonically with separation (s functions).
    #[test]
    fn overlap_decays_with_distance(b1 in 0.4f64..2.0, delta in 0.1f64..1.0) {
        let near = diatomic(Element::H, Element::H, b1);
        let far = diatomic(Element::H, Element::H, b1 + delta);
        let bn = build_basis(&near);
        let bf = build_basis(&far);
        prop_assert!(overlap(&bf[0], &bf[1]) < overlap(&bn[0], &bn[1]));
    }
}
