//! Physical invariance tests for the electronic-structure stack: energies
//! must not change under rigid rotations or translations of the molecule,
//! and the qubit pipeline must inherit those invariances. These exercise
//! every integral type (s and p functions, all four integral classes)
//! far more thoroughly than point checks.

use chem::basis::build_basis;
use chem::geometry::{Atom, Molecule};
use chem::integrals::compute_ao_integrals;
use chem::mo::{transform_to_mo, ActiveSpace};
use chem::properties::{dipole_magnitude, dipole_moment, mp2_correlation_energy};
use chem::scf::{restricted_hartree_fock, ScfOptions};
use chem::{Element, MolecularSystem, ANGSTROM_TO_BOHR};

/// Applies a rotation matrix and translation (in Bohr) to a molecule.
fn transform(m: &Molecule, rot: [[f64; 3]; 3], shift: [f64; 3]) -> Molecule {
    let atoms = m
        .atoms()
        .iter()
        .map(|a| {
            let p = a.position;
            let rotated = [
                rot[0][0] * p[0] + rot[0][1] * p[1] + rot[0][2] * p[2] + shift[0],
                rot[1][0] * p[0] + rot[1][1] * p[1] + rot[1][2] * p[2] + shift[1],
                rot[2][0] * p[0] + rot[2][1] * p[1] + rot[2][2] * p[2] + shift[2],
            ];
            Atom {
                element: a.element,
                position: rotated,
            }
        })
        .collect();
    Molecule::new(atoms)
}

fn rotation(axis: usize, theta: f64) -> [[f64; 3]; 3] {
    let (s, c) = theta.sin_cos();
    match axis {
        0 => [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]],
        1 => [[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]],
        _ => [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
    }
}

fn water() -> Molecule {
    chem::geometry::shapes::bent_xh2(Element::O, 0.96, 104.5)
}

fn scf_energy(m: &Molecule) -> f64 {
    let basis = build_basis(m);
    let ints = compute_ao_integrals(m, &basis);
    restricted_hartree_fock(&ints, m.num_electrons(), ScfOptions::default())
        .expect("SCF")
        .total_energy
}

#[test]
fn scf_energy_is_rotation_invariant() {
    let reference = scf_energy(&water());
    for (axis, theta) in [(0usize, 0.7), (1, -1.3), (2, 2.1)] {
        let rotated = transform(&water(), rotation(axis, theta), [0.0; 3]);
        let e = scf_energy(&rotated);
        assert!(
            (e - reference).abs() < 1e-8,
            "axis {axis}, θ={theta}: {e} vs {reference}"
        );
    }
}

#[test]
fn scf_energy_is_translation_invariant() {
    let reference = scf_energy(&water());
    let shifted = transform(
        &water(),
        rotation(0, 0.0),
        [3.0 * ANGSTROM_TO_BOHR, -1.5, 0.25],
    );
    let e = scf_energy(&shifted);
    assert!((e - reference).abs() < 1e-8, "{e} vs {reference}");
}

#[test]
fn mp2_and_dipole_magnitude_are_rotation_invariant() {
    let solve = |m: &Molecule| {
        let basis = build_basis(m);
        let ints = compute_ao_integrals(m, &basis);
        let scf = restricted_hartree_fock(&ints, m.num_electrons(), ScfOptions::default()).unwrap();
        let mo = transform_to_mo(&ints, &scf);
        let e2 = mp2_correlation_energy(&mo, &scf);
        let mu = dipole_magnitude(dipole_moment(m, &basis, &scf));
        (e2, mu)
    };
    let (e2_ref, mu_ref) = solve(&water());
    let rotated = transform(&water(), rotation(1, 0.9), [0.0; 3]);
    let (e2, mu) = solve(&rotated);
    assert!((e2 - e2_ref).abs() < 1e-8, "MP2 {e2} vs {e2_ref}");
    assert!((mu - mu_ref).abs() < 1e-8, "dipole {mu} vs {mu_ref}");
}

#[test]
fn qubit_hamiltonian_spectrum_is_rotation_invariant() {
    // The whole quantum pipeline inherits the invariance: exact ground
    // state of the active-space Hamiltonian is geometry-frame independent.
    let build = |m: Molecule| {
        MolecularSystem::build(m, ActiveSpace::full(2), "H2")
            .expect("H2 pipeline")
            .exact_ground_state_energy()
    };
    let h2 = chem::geometry::shapes::diatomic(Element::H, Element::H, 0.74);
    let reference = build(h2.clone());
    let moved = transform(&h2, rotation(2, 1.1), [0.5, 0.5, 0.5]);
    let e = build(moved);
    assert!((e - reference).abs() < 1e-7, "{e} vs {reference}");
}

#[test]
fn dipole_vector_co_rotates() {
    // The dipole vector itself must rotate with the molecule.
    let m = chem::geometry::shapes::diatomic(Element::F, Element::H, 0.92);
    let basis = build_basis(&m);
    let ints = compute_ao_integrals(&m, &basis);
    let scf = restricted_hartree_fock(&ints, 10, ScfOptions::default()).unwrap();
    let mu = dipole_moment(&m, &basis, &scf);

    let rot = rotation(0, std::f64::consts::FRAC_PI_2);
    let rotated = transform(&m, rot, [0.0; 3]);
    let basis_r = build_basis(&rotated);
    let ints_r = compute_ao_integrals(&rotated, &basis_r);
    let scf_r = restricted_hartree_fock(&ints_r, 10, ScfOptions::default()).unwrap();
    let mu_r = dipole_moment(&rotated, &basis_r, &scf_r);

    // Rotating about x by 90° maps z → y.
    let expected = [
        rot[0][0] * mu[0] + rot[0][1] * mu[1] + rot[0][2] * mu[2],
        rot[1][0] * mu[0] + rot[1][1] * mu[1] + rot[1][2] * mu[2],
        rot[2][0] * mu[0] + rot[2][1] * mu[1] + rot[2][2] * mu[2],
    ];
    for k in 0..3 {
        assert!(
            (mu_r[k] - expected[k]).abs() < 1e-7,
            "component {k}: {} vs {}",
            mu_r[k],
            expected[k]
        );
    }
}
