//! AO→MO integral transformation and active-space reduction.
//!
//! The paper freezes core electrons and simulates only the outermost
//! electrons (§VI-A). [`ActiveSpace`] captures which molecular orbitals are
//! frozen (doubly occupied, folded into the core energy), removed (discarded
//! virtuals), or active; [`active_space_integrals`] produces the effective
//! one-/two-electron integrals over the active orbitals.

use numeric::RealMatrix;

use crate::integrals::{AoIntegrals, EriTensor};
use crate::scf::ScfResult;

/// Integrals in the molecular-orbital basis (chemist notation `(pq|rs)`).
#[derive(Debug, Clone, PartialEq)]
pub struct MoIntegrals {
    /// One-electron integrals `h_pq`.
    pub h: RealMatrix,
    /// Two-electron integrals `(pq|rs)`.
    pub eri: EriTensor,
}

/// Transforms AO integrals into the MO basis given SCF coefficients.
pub fn transform_to_mo(ints: &AoIntegrals, scf: &ScfResult) -> MoIntegrals {
    let c = &scf.mo_coefficients;
    let n = c.rows();
    let h = c.transpose().mul(&ints.core_hamiltonian).mul(c);

    // Staged O(N⁵) four-index transform.
    let idx = |a: usize, b: usize, cc: usize, d: usize| ((a * n + b) * n + cc) * n + d;
    let mut t1 = vec![0.0f64; n * n * n * n]; // (p ν|λ σ)
    for p in 0..n {
        for nu in 0..n {
            for la in 0..n {
                for si in 0..n {
                    let mut acc = 0.0;
                    for mu in 0..n {
                        acc += c[(mu, p)] * ints.eri.get(mu, nu, la, si);
                    }
                    t1[idx(p, nu, la, si)] = acc;
                }
            }
        }
    }
    let mut t2 = vec![0.0f64; n * n * n * n]; // (p q|λ σ)
    for p in 0..n {
        for q in 0..n {
            for la in 0..n {
                for si in 0..n {
                    let mut acc = 0.0;
                    for nu in 0..n {
                        acc += c[(nu, q)] * t1[idx(p, nu, la, si)];
                    }
                    t2[idx(p, q, la, si)] = acc;
                }
            }
        }
    }
    for p in 0..n {
        for q in 0..n {
            for r in 0..n {
                for si in 0..n {
                    let mut acc = 0.0;
                    for la in 0..n {
                        acc += c[(la, r)] * t2[idx(p, q, la, si)];
                    }
                    t1[idx(p, q, r, si)] = acc;
                }
            }
        }
    }
    let eri = EriTensor::from_fn_symmetric(n, |p, q, r, s| {
        let mut acc = 0.0;
        for si in 0..n {
            acc += c[(si, s)] * t1[idx(p, q, r, si)];
        }
        acc
    });

    MoIntegrals { h, eri }
}

/// A partition of the molecular orbitals (indices in ascending orbital-energy
/// order) into frozen, active, and removed sets.
///
/// # Examples
///
/// ```
/// use chem::mo::ActiveSpace;
///
/// // LiH: freeze the Li 1s core, remove the two degenerate π virtuals.
/// let space = ActiveSpace::new(6, vec![0], vec![3, 4]);
/// assert_eq!(space.active(), &[1, 2, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSpace {
    num_mo: usize,
    frozen: Vec<usize>,
    active: Vec<usize>,
}

impl ActiveSpace {
    /// Creates an active space on `num_mo` orbitals, freezing `frozen` and
    /// dropping `removed`; everything else is active.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or overlap.
    pub fn new(num_mo: usize, frozen: Vec<usize>, removed: Vec<usize>) -> Self {
        for &i in frozen.iter().chain(&removed) {
            assert!(i < num_mo, "orbital index {i} out of range");
        }
        for f in &frozen {
            assert!(!removed.contains(f), "orbital {f} both frozen and removed");
        }
        let active: Vec<usize> = (0..num_mo)
            .filter(|i| !frozen.contains(i) && !removed.contains(i))
            .collect();
        assert!(!active.is_empty(), "active space must be non-empty");
        ActiveSpace {
            num_mo,
            frozen,
            active,
        }
    }

    /// All orbitals active (no reduction).
    pub fn full(num_mo: usize) -> Self {
        ActiveSpace::new(num_mo, vec![], vec![])
    }

    /// The frozen orbital indices.
    pub fn frozen(&self) -> &[usize] {
        &self.frozen
    }

    /// The active orbital indices, ascending.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Number of active spatial orbitals.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Electrons left for the active space given the molecule's total count.
    ///
    /// # Panics
    ///
    /// Panics if the frozen orbitals would hold more electrons than exist.
    pub fn active_electrons(&self, total_electrons: usize) -> usize {
        let frozen_e = 2 * self.frozen.len();
        assert!(
            frozen_e <= total_electrons,
            "frozen orbitals exceed electron count"
        );
        total_electrons - frozen_e
    }
}

/// Effective integrals over an active space.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveIntegrals {
    /// Constant energy: nuclear repulsion plus the frozen-core contribution.
    pub core_energy: f64,
    /// Effective one-electron integrals over active orbitals.
    pub h: RealMatrix,
    /// Two-electron integrals over active orbitals (chemist notation).
    pub eri: EriTensor,
}

/// Folds frozen orbitals into the core energy and effective one-electron
/// integrals, and restricts the integrals to the active orbitals.
pub fn active_space_integrals(
    mo: &MoIntegrals,
    space: &ActiveSpace,
    nuclear_repulsion: f64,
) -> ActiveIntegrals {
    let frozen = space.frozen();
    let active = space.active();
    let na = active.len();

    // Frozen-core energy: Σ_i 2h_ii + Σ_ij [2(ii|jj) − (ij|ji)].
    let mut core = nuclear_repulsion;
    for &i in frozen {
        core += 2.0 * mo.h[(i, i)];
        for &j in frozen {
            core += 2.0 * mo.eri.get(i, i, j, j) - mo.eri.get(i, j, j, i);
        }
    }

    // Effective one-electron integrals:
    // h'_tu = h_tu + Σ_i [2(tu|ii) − (ti|iu)].
    let h = RealMatrix::from_fn(na, na, |t, u| {
        let (ot, ou) = (active[t], active[u]);
        let mut v = mo.h[(ot, ou)];
        for &i in frozen {
            v += 2.0 * mo.eri.get(ot, ou, i, i) - mo.eri.get(ot, i, i, ou);
        }
        v
    });

    let eri = EriTensor::from_fn_symmetric(na, |p, q, r, s| {
        mo.eri.get(active[p], active[q], active[r], active[s])
    });

    ActiveIntegrals {
        core_energy: core,
        h,
        eri,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::build_basis;
    use crate::geometry::shapes::diatomic;
    use crate::integrals::compute_ao_integrals;
    use crate::scf::{restricted_hartree_fock, ScfOptions};
    use crate::{Element, ANGSTROM_TO_BOHR};

    fn h2_mo() -> (AoIntegrals, ScfResult, MoIntegrals) {
        let m = diatomic(Element::H, Element::H, 1.4 / ANGSTROM_TO_BOHR);
        let b = build_basis(&m);
        let ints = compute_ao_integrals(&m, &b);
        let scf = restricted_hartree_fock(&ints, 2, ScfOptions::default()).unwrap();
        let mo = transform_to_mo(&ints, &scf);
        (ints, scf, mo)
    }

    #[test]
    fn mo_one_electron_is_diagonal_for_h2_symmetry() {
        // H2's two MOs are symmetry-distinct (σ_g, σ_u): h must be diagonal.
        let (_, _, mo) = h2_mo();
        assert!(mo.h[(0, 1)].abs() < 1e-8);
        assert!(mo.h[(0, 0)] < 0.0);
    }

    #[test]
    fn hf_energy_reconstructed_from_mo_integrals() {
        // E_elec = 2 Σ_i h_ii + Σ_ij [2(ii|jj) − (ij|ji)] over occupied MOs.
        let (ints, scf, mo) = h2_mo();
        let mut e = 0.0;
        for i in 0..scf.num_occupied {
            e += 2.0 * mo.h[(i, i)];
            for j in 0..scf.num_occupied {
                e += 2.0 * mo.eri.get(i, i, j, j) - mo.eri.get(i, j, j, i);
            }
        }
        assert!((e - scf.electronic_energy).abs() < 1e-8);
        assert!((e + ints.nuclear_repulsion - scf.total_energy).abs() < 1e-8);
    }

    #[test]
    fn mo_eri_keeps_permutation_symmetry() {
        let (_, _, mo) = h2_mo();
        assert!((mo.eri.get(0, 1, 0, 1) - mo.eri.get(1, 0, 1, 0)).abs() < 1e-12);
        assert!((mo.eri.get(0, 0, 1, 1) - mo.eri.get(1, 1, 0, 0)).abs() < 1e-12);
    }

    #[test]
    fn active_space_partition() {
        let s = ActiveSpace::new(6, vec![0], vec![3, 4]);
        assert_eq!(s.frozen(), &[0]);
        assert_eq!(s.active(), &[1, 2, 5]);
        assert_eq!(s.num_active(), 3);
        assert_eq!(s.active_electrons(4), 2);
    }

    #[test]
    fn full_space_reduction_is_identity() {
        let (ints, _, mo) = h2_mo();
        let act = active_space_integrals(&mo, &ActiveSpace::full(2), ints.nuclear_repulsion);
        assert!((act.core_energy - ints.nuclear_repulsion).abs() < 1e-12);
        assert!((act.h[(0, 0)] - mo.h[(0, 0)]).abs() < 1e-12);
        assert!((act.eri.get(0, 1, 0, 1) - mo.eri.get(0, 1, 0, 1)).abs() < 1e-12);
    }

    #[test]
    fn frozen_core_energy_matches_scf_for_fully_frozen_occupied() {
        // Freezing ALL occupied orbitals puts the whole HF energy into the
        // core constant.
        let m = diatomic(Element::Li, Element::H, 1.6);
        let b = build_basis(&m);
        let ints = compute_ao_integrals(&m, &b);
        let scf = restricted_hartree_fock(&ints, 4, ScfOptions::default()).unwrap();
        let mo = transform_to_mo(&ints, &scf);
        let space = ActiveSpace::new(b.len(), vec![0, 1], vec![]);
        let act = active_space_integrals(&mo, &space, ints.nuclear_repulsion);
        assert!((act.core_energy - scf.total_energy).abs() < 1e-7);
    }

    #[test]
    #[should_panic]
    fn overlapping_frozen_and_removed_rejected() {
        let _ = ActiveSpace::new(4, vec![0], vec![0]);
    }
}
