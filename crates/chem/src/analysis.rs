//! State analysis: reduced density matrices and symmetry observables.
//!
//! Diagnostics for variational states: the one-particle reduced density
//! matrix (natural occupations measure how correlated a state is), and the
//! `N̂`, `Ŝ_z`, `Ŝ²` operators for checking that an ansatz respects the
//! symmetries it is supposed to conserve.

use std::collections::HashMap;

use numeric::{jacobi_eigen, Complex64, RealMatrix};
use pauli::WeightedPauliSum;

use crate::fermion::{accumulate_term, into_real_sum, ComplexPauliMap, LadderOp};

/// The one-particle reduced density matrix `D_pq = ⟨ψ|a†_p a_q|ψ⟩` over
/// spin orbitals (real for the real-amplitude states produced by our
/// ansatzes; asserts the imaginary parts vanish).
///
/// # Panics
///
/// Panics if the state length is not `2^n` or the 1-RDM comes out
/// non-Hermitian/complex beyond tolerance.
pub fn one_rdm(num_spin_orbitals: usize, state: &[Complex64]) -> RealMatrix {
    let dim = 1usize << num_spin_orbitals;
    assert_eq!(state.len(), dim, "state length must be 2^n");
    let mut d = RealMatrix::zeros(num_spin_orbitals, num_spin_orbitals);
    for p in 0..num_spin_orbitals {
        for q in 0..=p {
            let mut acc: ComplexPauliMap = HashMap::new();
            accumulate_term(
                &mut acc,
                num_spin_orbitals,
                &[LadderOp::create(p), LadderOp::annihilate(q)],
                1.0,
            );
            // ⟨a†_p a_q⟩ directly from the complex map (not Hermitian for
            // p ≠ q on its own, so evaluate term by term).
            let mut val = Complex64::ZERO;
            for (string, w) in &acc {
                let mut term = Complex64::ZERO;
                for b in 0..dim as u64 {
                    let (flip, phase) = string.apply_to_basis_state(b);
                    term += state[flip as usize].conj() * state[b as usize] * phase;
                }
                val += *w * term;
            }
            assert!(val.im.abs() < 1e-8, "complex 1-RDM entry ({p},{q}): {val}");
            d[(p, q)] = val.re;
            d[(q, p)] = val.re;
        }
    }
    d
}

/// Natural occupations: eigenvalues of the 1-RDM, descending, each in
/// `[0, 1]` per spin orbital. Deviations from {0, 1} measure correlation.
pub fn natural_occupations(rdm: &RealMatrix) -> Vec<f64> {
    let mut v = jacobi_eigen(rdm).values;
    v.reverse();
    v
}

/// The particle-number operator `N̂ = Σ_p a†_p a_p` as a Pauli sum.
pub fn number_operator(num_spin_orbitals: usize) -> WeightedPauliSum {
    let mut acc: ComplexPauliMap = HashMap::new();
    for p in 0..num_spin_orbitals {
        accumulate_term(
            &mut acc,
            num_spin_orbitals,
            &[LadderOp::create(p), LadderOp::annihilate(p)],
            1.0,
        );
    }
    into_real_sum(num_spin_orbitals, acc)
}

/// The spin-projection operator `Ŝ_z = ½·Σ_i (n_{iα} − n_{iβ})` (block
/// ordering: α spin orbitals first).
///
/// # Panics
///
/// Panics on an odd spin-orbital count.
pub fn spin_z_operator(num_spin_orbitals: usize) -> WeightedPauliSum {
    assert!(
        num_spin_orbitals.is_multiple_of(2),
        "block ordering needs an even count"
    );
    let m = num_spin_orbitals / 2;
    let mut acc: ComplexPauliMap = HashMap::new();
    for i in 0..m {
        accumulate_term(
            &mut acc,
            num_spin_orbitals,
            &[LadderOp::create(i), LadderOp::annihilate(i)],
            0.5,
        );
        accumulate_term(
            &mut acc,
            num_spin_orbitals,
            &[LadderOp::create(m + i), LadderOp::annihilate(m + i)],
            -0.5,
        );
    }
    into_real_sum(num_spin_orbitals, acc)
}

/// The total-spin operator `Ŝ² = Ŝ_z² + ½(Ŝ₊Ŝ₋ + Ŝ₋Ŝ₊)` as a Pauli sum
/// (built from ladder products; exact, not projected).
///
/// # Panics
///
/// Panics on an odd spin-orbital count.
pub fn spin_squared_operator(num_spin_orbitals: usize) -> WeightedPauliSum {
    assert!(
        num_spin_orbitals.is_multiple_of(2),
        "block ordering needs an even count"
    );
    let m = num_spin_orbitals / 2;
    let mut acc: ComplexPauliMap = HashMap::new();

    // S+ = Σ_i a†_{iα} a_{iβ}; S- = (S+)†.
    // S² = S- S+ + S_z (S_z + 1) = Σ_ij a†_{iβ} a_{iα} a†_{jα} a_{jβ} + …
    for i in 0..m {
        for j in 0..m {
            accumulate_term(
                &mut acc,
                num_spin_orbitals,
                &[
                    LadderOp::create(m + i),
                    LadderOp::annihilate(i),
                    LadderOp::create(j),
                    LadderOp::annihilate(m + j),
                ],
                1.0,
            );
        }
    }
    // + S_z² + S_z, expanded over ladder products.
    // S_z = ½ Σ_i (n_{iα} − n_{iβ}).
    for i in 0..m {
        for s_i in [(i, 0.5), (m + i, -0.5)] {
            // linear S_z term
            accumulate_term(
                &mut acc,
                num_spin_orbitals,
                &[LadderOp::create(s_i.0), LadderOp::annihilate(s_i.0)],
                s_i.1,
            );
            for j in 0..m {
                for s_j in [(j, 0.5), (m + j, -0.5)] {
                    accumulate_term(
                        &mut acc,
                        num_spin_orbitals,
                        &[
                            LadderOp::create(s_i.0),
                            LadderOp::annihilate(s_i.0),
                            LadderOp::create(s_j.0),
                            LadderOp::annihilate(s_j.0),
                        ],
                        s_i.1 * s_j.1,
                    );
                }
            }
        }
    }
    into_real_sum(num_spin_orbitals, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fermion::hartree_fock_bitmask;

    fn basis_state(n: usize, b: u64) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[b as usize] = Complex64::ONE;
        v
    }

    #[test]
    fn hf_one_rdm_is_idempotent_projector() {
        // 2 spatial orbitals, 2 electrons: occupations (1,1,0,0) in some
        // order, D² = D.
        let hf = hartree_fock_bitmask(2, 2);
        let state = basis_state(4, hf);
        let d = one_rdm(4, &state);
        assert!((d.trace() - 2.0).abs() < 1e-10);
        let d2 = d.mul(&d);
        assert!(d2.max_abs_diff(&d) < 1e-10, "HF 1-RDM must be a projector");
        let occ = natural_occupations(&d);
        assert!((occ[0] - 1.0).abs() < 1e-10);
        assert!((occ[1] - 1.0).abs() < 1e-10);
        assert!(occ[3].abs() < 1e-10);
    }

    #[test]
    fn correlated_state_has_fractional_occupations() {
        // An equal superposition of |0101⟩ and |1010⟩ (H2-style pair
        // correlation) has all four occupations equal to ½.
        let mut state = vec![Complex64::ZERO; 16];
        state[0b0101] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        state[0b1010] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        let d = one_rdm(4, &state);
        let occ = natural_occupations(&d);
        for o in occ {
            assert!((o - 0.5).abs() < 1e-10, "occupation {o}");
        }
    }

    #[test]
    fn number_and_sz_on_reference_states() {
        let n_op = number_operator(4);
        let sz = spin_z_operator(4);
        // Closed shell: N = 2, Sz = 0.
        let hf = basis_state(4, hartree_fock_bitmask(2, 2));
        assert!((n_op.expectation(&hf) - 2.0).abs() < 1e-10);
        assert!(sz.expectation(&hf).abs() < 1e-10);
        // Two α electrons: N = 2, Sz = 1.
        let polarized = basis_state(4, 0b0011);
        assert!((n_op.expectation(&polarized) - 2.0).abs() < 1e-10);
        assert!((sz.expectation(&polarized) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn s_squared_classifies_singlets_and_triplets() {
        let s2 = spin_squared_operator(4);
        // Closed-shell determinant: singlet, S² = 0.
        let hf = basis_state(4, hartree_fock_bitmask(2, 2));
        assert!(s2.expectation(&hf).abs() < 1e-10, "S² of closed shell");
        // Two parallel α spins: triplet, S² = s(s+1) = 2.
        let triplet = basis_state(4, 0b0011);
        assert!(
            (s2.expectation(&triplet) - 2.0).abs() < 1e-10,
            "S² of triplet"
        );
        // Open-shell Sz=0 determinant |α₀ β₁⟩: mixed singlet/triplet, S² = 1.
        let mixed = basis_state(4, 0b1001);
        assert!(
            (s2.expectation(&mixed) - 1.0).abs() < 1e-10,
            "S² of broken pair"
        );
    }

    #[test]
    fn variance_vanishes_on_eigenstates() {
        let mut h = WeightedPauliSum::new(2);
        h.push(1.0, "ZZ".parse().unwrap());
        h.push(0.3, "ZI".parse().unwrap());
        // |00⟩ is an eigenstate of this diagonal Hamiltonian.
        let state = basis_state(2, 0);
        assert!(h.variance(&state) < 1e-12);
        // A superposition across eigenspaces has positive variance.
        let mut sup = vec![Complex64::ZERO; 4];
        sup[0] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        sup[1] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        assert!(h.variance(&sup) > 0.1);
    }
}
