//! End-to-end driver: molecule → qubit Hamiltonian.

use std::error::Error;
use std::fmt;

use pauli::WeightedPauliSum;

use crate::basis::build_basis;
use crate::fermion::{build_qubit_hamiltonian, hartree_fock_bitmask};
use crate::geometry::Molecule;
use crate::integrals::compute_ao_integrals;
use crate::mo::{active_space_integrals, transform_to_mo, ActiveSpace};
use crate::scf::{restricted_hartree_fock, ScfError, ScfOptions};

/// Errors from the electronic-structure pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ChemError {
    /// The SCF stage failed.
    Scf(ScfError),
    /// The requested active space does not fit the molecule.
    InvalidActiveSpace(String),
    /// Two atoms are (nearly) coincident, so the integrals are singular.
    DegenerateGeometry {
        /// Indices of the offending atom pair.
        atoms: (usize, usize),
        /// Their separation in Bohr.
        distance: f64,
    },
}

impl fmt::Display for ChemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemError::Scf(e) => write!(f, "SCF failure: {e}"),
            ChemError::InvalidActiveSpace(msg) => write!(f, "invalid active space: {msg}"),
            ChemError::DegenerateGeometry { atoms, distance } => write!(
                f,
                "degenerate geometry: atoms {} and {} are {distance:.3e} Bohr apart",
                atoms.0, atoms.1
            ),
        }
    }
}

impl Error for ChemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChemError::Scf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScfError> for ChemError {
    fn from(e: ScfError) -> Self {
        ChemError::Scf(e)
    }
}

/// A molecular simulation problem reduced to qubits: the Jordan–Wigner
/// Hamiltonian over an active space, plus the metadata the ansatz and VQE
/// layers need.
///
/// # Examples
///
/// ```no_run
/// use chem::{Molecule, MolecularSystem};
/// use chem::geometry::shapes::diatomic;
/// use chem::mo::ActiveSpace;
/// use chem::Element;
///
/// # fn main() -> Result<(), chem::ChemError> {
/// let h2 = diatomic(Element::H, Element::H, 0.74);
/// let system = MolecularSystem::build(h2, ActiveSpace::full(2), "H2")?;
/// assert_eq!(system.num_qubits(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MolecularSystem {
    name: String,
    molecule: Molecule,
    active_space: ActiveSpace,
    num_active_electrons: usize,
    hamiltonian: WeightedPauliSum,
    hf_total_energy: f64,
    hf_bitmask: u64,
}

impl MolecularSystem {
    /// Runs the full pipeline: integrals → RHF → MO transform → active-space
    /// reduction → Jordan–Wigner.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError`] if SCF fails or the active space does not fit.
    pub fn build(
        molecule: Molecule,
        active_space: ActiveSpace,
        name: &str,
    ) -> Result<Self, ChemError> {
        Self::build_with_options(molecule, active_space, name, ScfOptions::default())
    }

    /// Like [`MolecularSystem::build`], but with explicit SCF convergence
    /// options — the hook the resilience layer uses to retry with damping or
    /// a level shift after a failed default attempt.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError`] if the geometry is degenerate, SCF fails, or the
    /// active space does not fit.
    pub fn build_with_options(
        molecule: Molecule,
        active_space: ActiveSpace,
        name: &str,
        scf_options: ScfOptions,
    ) -> Result<Self, ChemError> {
        // Coincident nuclei make the overlap matrix singular and the nuclear
        // repulsion infinite; reject before spending time on integrals.
        const MIN_SEPARATION_BOHR: f64 = 1e-3;
        let atoms = molecule.atoms();
        for i in 0..atoms.len() {
            for j in (i + 1)..atoms.len() {
                let d: f64 = (0..3)
                    .map(|k| (atoms[i].position[k] - atoms[j].position[k]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                if !d.is_finite() || d < MIN_SEPARATION_BOHR {
                    return Err(ChemError::DegenerateGeometry {
                        atoms: (i, j),
                        distance: d,
                    });
                }
            }
        }

        let basis = build_basis(&molecule);
        let n_mo = basis.len();
        if active_space.active().iter().any(|&i| i >= n_mo) {
            return Err(ChemError::InvalidActiveSpace(format!(
                "active orbitals exceed the {n_mo} molecular orbitals"
            )));
        }
        let n_electrons = molecule.num_electrons();
        let active_e = active_space.active_electrons(n_electrons);
        let n_active = active_space.num_active();
        if active_e > 2 * n_active {
            return Err(ChemError::InvalidActiveSpace(format!(
                "{active_e} active electrons exceed {n_active} active orbitals"
            )));
        }

        let ints = compute_ao_integrals(&molecule, &basis);
        let scf = restricted_hartree_fock(&ints, n_electrons, scf_options)?;
        let mut encode_span = obs::span("chem.encode");
        let mo = transform_to_mo(&ints, &scf);
        let act = active_space_integrals(&mo, &active_space, ints.nuclear_repulsion);
        let mut hamiltonian = build_qubit_hamiltonian(&act);
        hamiltonian.simplify(1e-12);
        encode_span.record("system", name);
        encode_span.record("qubits", 2 * n_active);
        encode_span.record("pauli_terms", hamiltonian.len());
        drop(encode_span);

        let hf_bitmask = hartree_fock_bitmask(n_active, active_e);
        Ok(MolecularSystem {
            name: name.to_string(),
            molecule,
            active_space,
            num_active_electrons: active_e,
            hamiltonian,
            hf_total_energy: scf.total_energy,
            hf_bitmask,
        })
    }

    /// The system's display name (e.g. `"LiH"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying molecule.
    pub fn molecule(&self) -> &Molecule {
        &self.molecule
    }

    /// The active-space partition used.
    pub fn active_space(&self) -> &ActiveSpace {
        &self.active_space
    }

    /// Number of qubits (2 × active spatial orbitals).
    pub fn num_qubits(&self) -> usize {
        2 * self.active_space.num_active()
    }

    /// Number of active electrons.
    pub fn num_active_electrons(&self) -> usize {
        self.num_active_electrons
    }

    /// The Jordan–Wigner qubit Hamiltonian (weights in Hartree).
    pub fn qubit_hamiltonian(&self) -> &WeightedPauliSum {
        &self.hamiltonian
    }

    /// The Hartree-Fock total energy from the SCF stage (Hartree).
    pub fn hartree_fock_energy(&self) -> f64 {
        self.hf_total_energy
    }

    /// The Hartree-Fock reference determinant as a basis-state bitmask in
    /// block spin ordering.
    pub fn hartree_fock_state(&self) -> u64 {
        self.hf_bitmask
    }

    /// Exact ground-state energy of the active-space Hamiltonian (Lanczos) —
    /// the paper's "Ground State" reference.
    pub fn exact_ground_state_energy(&self) -> f64 {
        self.hamiltonian.ground_state_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::shapes::diatomic;
    use crate::Element;
    use numeric::Complex64;

    fn h2_system() -> MolecularSystem {
        let m = diatomic(Element::H, Element::H, 0.7414);
        MolecularSystem::build(m, ActiveSpace::full(2), "H2").unwrap()
    }

    #[test]
    fn h2_qubit_hamiltonian_shape() {
        let sys = h2_system();
        assert_eq!(sys.num_qubits(), 4);
        assert_eq!(sys.num_active_electrons(), 2);
        // JW H2/STO-3G has 15 distinct Pauli terms (incl. identity).
        assert_eq!(sys.qubit_hamiltonian().len(), 15);
    }

    #[test]
    fn h2_hf_expectation_matches_scf_energy() {
        // ⟨HF|H_qubit|HF⟩ must reproduce the SCF total energy exactly:
        // the qubit Hamiltonian and the HF determinant share the MO basis.
        let sys = h2_system();
        let dim = 1usize << sys.num_qubits();
        let mut state = vec![Complex64::ZERO; dim];
        state[sys.hartree_fock_state() as usize] = Complex64::ONE;
        let e = sys.qubit_hamiltonian().expectation(&state);
        assert!(
            (e - sys.hartree_fock_energy()).abs() < 1e-8,
            "⟨HF|H|HF⟩ = {e} vs SCF {}",
            sys.hartree_fock_energy()
        );
    }

    #[test]
    fn h2_exact_ground_state_below_hf() {
        let sys = h2_system();
        let exact = sys.exact_ground_state_energy();
        // FCI < HF (correlation energy), both near literature values:
        // E_FCI(H2/STO-3G, 0.7414 Å) ≈ −1.1373 Ha.
        assert!(exact < sys.hartree_fock_energy());
        assert!((exact + 1.137).abs() < 5e-3, "exact = {exact}");
    }

    #[test]
    fn invalid_active_space_is_reported() {
        let m = diatomic(Element::H, Element::H, 0.74);
        let bad = ActiveSpace::new(9, vec![], vec![]);
        assert!(matches!(
            MolecularSystem::build(m, bad, "H2"),
            Err(ChemError::InvalidActiveSpace(_))
        ));
    }
}
