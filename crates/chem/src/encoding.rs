//! Alternative fermion→qubit encodings: the parity transform and its
//! two-qubit reduction.
//!
//! The paper fixes Jordan–Wigner (§VI-A); a production chemistry stack also
//! offers the *parity* encoding (Seeley–Richard–Love), where qubit `j`
//! stores the occupation parity of modes `0..=j`. The encodings are related
//! by a basis change, so every spectrum is identical — which the tests
//! verify — but parity moves the non-locality from the Z-strings below a
//! mode to X-strings above it, and, with block-spin ordering, makes two
//! qubits redundant: qubit `m−1` stores the conserved α-electron parity and
//! qubit `2m−1` the conserved total parity, so both can be *tapered* off.
//!
//! For the paper's pipeline this matters because tapering shrinks H₂ from
//! 4 to 2 qubits (and every benchmark by 2) at zero accuracy cost.

use std::collections::HashMap;

use numeric::Complex64;
use pauli::{Pauli, PauliString, WeightedPauliSum};

use crate::fermion::{ComplexPauliMap, LadderOp};
use crate::mo::ActiveIntegrals;

/// A fermion→qubit encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FermionEncoding {
    /// Jordan–Wigner: qubit `j` stores occupation `n_j`; Z-chains below.
    #[default]
    JordanWigner,
    /// Parity: qubit `j` stores `n_0 ⊕ … ⊕ n_j`; X-chains above.
    Parity,
}

/// The two-term Pauli expansion of one ladder operator under an encoding.
pub fn encoded_ladder(
    encoding: FermionEncoding,
    num_qubits: usize,
    op: LadderOp,
) -> [(Complex64, PauliString); 2] {
    match encoding {
        FermionEncoding::JordanWigner => crate::fermion::jordan_wigner_ladder(num_qubits, op),
        FermionEncoding::Parity => parity_ladder(num_qubits, op),
    }
}

/// Parity-encoded ladder operator (Seeley–Richard–Love):
/// `a†_j = ½·X_{n-1}…X_{j+1} ⊗ (X_j·Z_{j-1} − i·Y_j)` and the conjugate
/// for `a_j` (with `Z_{-1} = I`).
pub fn parity_ladder(num_qubits: usize, op: LadderOp) -> [(Complex64, PauliString); 2] {
    assert!(op.index < num_qubits, "mode {} out of range", op.index);
    let j = op.index;

    // X-chain on every qubit above j (they all flip parity when n_j flips).
    let mut x_part = PauliString::identity(num_qubits);
    let mut y_part = PauliString::identity(num_qubits);
    for q in (j + 1)..num_qubits {
        x_part.set_op(q, Pauli::X);
        y_part.set_op(q, Pauli::X);
    }
    x_part.set_op(j, Pauli::X);
    y_part.set_op(j, Pauli::Y);
    if j > 0 {
        // The sign (−1)^{parity of modes < j} = Z_{j-1} in parity encoding.
        x_part.set_op(j - 1, Pauli::Z);
    }

    let half = Complex64::from_real(0.5);
    let y_coef = if op.creation {
        Complex64::new(0.0, -0.5)
    } else {
        Complex64::new(0.0, 0.5)
    };
    [(half, x_part), (y_coef, y_part)]
}

/// Expands a product of ladder operators under an encoding (the parity
/// analogue of [`crate::fermion::jordan_wigner_product`]).
pub fn encoded_product(
    encoding: FermionEncoding,
    num_qubits: usize,
    ops: &[LadderOp],
) -> ComplexPauliMap {
    let mut acc: ComplexPauliMap = HashMap::new();
    acc.insert(PauliString::identity(num_qubits), Complex64::ONE);
    for &op in ops {
        let factors = encoded_ladder(encoding, num_qubits, op);
        let mut next: ComplexPauliMap = HashMap::with_capacity(acc.len() * 2);
        for (p, w) in &acc {
            for (fw, fp) in &factors {
                let (phase, prod) = p.mul(fp);
                *next.entry(prod).or_insert(Complex64::ZERO) += *w * *fw * phase.to_complex();
            }
        }
        next.retain(|_, w| w.norm() > 1e-14);
        acc = next;
    }
    acc
}

/// Builds the qubit Hamiltonian of an active space under the chosen
/// encoding — the encoding-generic version of
/// [`crate::fermion::build_qubit_hamiltonian`].
pub fn build_qubit_hamiltonian_encoded(
    act: &ActiveIntegrals,
    encoding: FermionEncoding,
) -> WeightedPauliSum {
    let m = act.h.rows();
    let n_so = 2 * m;
    let mut acc: ComplexPauliMap = HashMap::new();
    acc.insert(
        PauliString::identity(n_so),
        Complex64::from_real(act.core_energy),
    );

    let add = |acc: &mut ComplexPauliMap, ops: &[LadderOp], scale: f64| {
        if scale == 0.0 {
            return;
        }
        for (p, w) in encoded_product(encoding, n_so, ops) {
            *acc.entry(p).or_insert(Complex64::ZERO) += w * scale;
        }
    };

    for p in 0..m {
        for q in 0..m {
            let hpq = act.h[(p, q)];
            if hpq.abs() < 1e-12 {
                continue;
            }
            for beta in [false, true] {
                let sp = crate::fermion::spin_orbital(m, p, beta);
                let sq = crate::fermion::spin_orbital(m, q, beta);
                add(
                    &mut acc,
                    &[LadderOp::create(sp), LadderOp::annihilate(sq)],
                    hpq,
                );
            }
        }
    }
    for p in 0..m {
        for q in 0..m {
            for r in 0..m {
                for s in 0..m {
                    let g = act.eri.get(p, r, q, s);
                    if g.abs() < 1e-12 {
                        continue;
                    }
                    for sigma in [false, true] {
                        for tau in [false, true] {
                            let a = crate::fermion::spin_orbital(m, p, sigma);
                            let b = crate::fermion::spin_orbital(m, q, tau);
                            let c = crate::fermion::spin_orbital(m, s, tau);
                            let d = crate::fermion::spin_orbital(m, r, sigma);
                            if a == b || c == d {
                                continue;
                            }
                            add(
                                &mut acc,
                                &[
                                    LadderOp::create(a),
                                    LadderOp::create(b),
                                    LadderOp::annihilate(c),
                                    LadderOp::annihilate(d),
                                ],
                                0.5 * g,
                            );
                        }
                    }
                }
            }
        }
    }

    let mut h = crate::fermion::into_real_sum(n_so, acc);
    h.simplify(1e-12);
    h
}

/// Two-qubit reduction of a parity-encoded, block-spin-ordered Hamiltonian:
/// qubit `m−1` (α parity) and qubit `2m−1` (total parity) are conserved, so
/// they are replaced by their eigenvalue signs and removed.
///
/// `num_alpha` / `num_beta` fix the symmetry sector (the signs are
/// `(−1)^{n_α}` and `(−1)^{n_α + n_β}`).
///
/// # Panics
///
/// Panics if any term acts with X or Y on the tapered qubits (which would
/// mean the Hamiltonian does not conserve the parities) or the register is
/// not block-ordered even-sized.
pub fn taper_two_qubits(
    hamiltonian: &WeightedPauliSum,
    num_alpha: usize,
    num_beta: usize,
) -> WeightedPauliSum {
    let n = hamiltonian.num_qubits();
    assert!(
        n.is_multiple_of(2) && n >= 4,
        "block ordering needs an even register of ≥ 4"
    );
    let m = n / 2;
    let (q_alpha, q_total) = (m - 1, n - 1);
    let sign_alpha: f64 = if num_alpha.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    };
    let sign_total: f64 = if (num_alpha + num_beta).is_multiple_of(2) {
        1.0
    } else {
        -1.0
    };

    let mut out = WeightedPauliSum::new(n - 2);
    for &(w, p) in hamiltonian.iter() {
        let mut weight = w;
        let mut reduced = PauliString::identity(n - 2);
        let mut dest = 0usize;
        for q in 0..n {
            let op = p.op(q);
            if q == q_alpha || q == q_total {
                match op {
                    Pauli::I => {}
                    Pauli::Z => {
                        weight *= if q == q_alpha { sign_alpha } else { sign_total };
                    }
                    _ => {
                        panic!("term {p} acts with {op} on tapered qubit {q}: parity not conserved")
                    }
                }
            } else {
                reduced.set_op(dest, op);
                dest += 1;
            }
        }
        out.push(weight, reduced);
    }
    out.simplify(1e-12);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fermion::jordan_wigner_product;

    /// Verify {a_p, a†_q} = δ_pq under the parity encoding.
    #[test]
    fn parity_ladder_anticommutation() {
        let n = 4;
        for p in 0..n {
            for q in 0..n {
                let mut acc: ComplexPauliMap = HashMap::new();
                for (first, second) in [
                    (LadderOp::annihilate(p), LadderOp::create(q)),
                    (LadderOp::create(q), LadderOp::annihilate(p)),
                ] {
                    for (string, w) in encoded_product(FermionEncoding::Parity, n, &[first, second])
                    {
                        *acc.entry(string).or_insert(Complex64::ZERO) += w;
                    }
                }
                acc.retain(|_, w| w.norm() > 1e-12);
                if p == q {
                    assert_eq!(acc.len(), 1, "{{a_{p}, a†_{q}}} should be I");
                    let id = PauliString::identity(n);
                    assert!(acc[&id].approx_eq(Complex64::ONE, 1e-12));
                } else {
                    assert!(acc.is_empty(), "{{a_{p}, a†_{q}}} should vanish");
                }
            }
        }
    }

    /// The number operator must be diagonal in both encodings with the same
    /// spectrum {0, 1} per mode.
    #[test]
    fn parity_number_operator() {
        let n = 3;
        for j in 0..n {
            let map = encoded_product(
                FermionEncoding::Parity,
                n,
                &[LadderOp::create(j), LadderOp::annihilate(j)],
            );
            let sum = crate::fermion::into_real_sum(n, map);
            // n_j = (I − Z_j·Z_{j-1})/2: only I/Z operators appear.
            for (_, p) in sum.iter() {
                for q in 0..n {
                    assert!(
                        matches!(p.op(q), Pauli::I | Pauli::Z),
                        "number operator must be diagonal, got {p}"
                    );
                }
            }
            let vals = sum.lowest_eigenvalues(1);
            assert!(vals[0].abs() < 1e-9);
        }
    }

    /// Jordan–Wigner and parity encodings of the same operator product are
    /// isospectral (they differ by a basis change).
    #[test]
    fn encodings_are_isospectral_on_hopping() {
        let n = 3;
        // Hermitian hopping a†_0 a_2 + a†_2 a_0.
        let build = |enc: FermionEncoding| {
            let mut acc: ComplexPauliMap = HashMap::new();
            for ops in [
                [LadderOp::create(0), LadderOp::annihilate(2)],
                [LadderOp::create(2), LadderOp::annihilate(0)],
            ] {
                for (p, w) in encoded_product(enc, n, &ops) {
                    *acc.entry(p).or_insert(Complex64::ZERO) += w;
                }
            }
            crate::fermion::into_real_sum(n, acc)
        };
        let jw = build(FermionEncoding::JordanWigner);
        let parity = build(FermionEncoding::Parity);
        let a = jw.lowest_eigenvalues(3);
        let b = parity.lowest_eigenvalues(3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    /// Full-stack check on H2: the parity-encoded Hamiltonian is
    /// isospectral with Jordan–Wigner, and the two-qubit tapering preserves
    /// the neutral-sector ground-state energy on a 2-qubit register.
    #[test]
    fn h2_parity_and_tapering_preserve_ground_state() {
        use crate::basis::build_basis;
        use crate::geometry::shapes::diatomic;
        use crate::integrals::compute_ao_integrals;
        use crate::mo::{active_space_integrals, transform_to_mo, ActiveSpace};
        use crate::scf::{restricted_hartree_fock, ScfOptions};

        let molecule = diatomic(crate::Element::H, crate::Element::H, 0.74);
        let basis = build_basis(&molecule);
        let ints = compute_ao_integrals(&molecule, &basis);
        let scf = restricted_hartree_fock(&ints, 2, ScfOptions::default()).unwrap();
        let mo = transform_to_mo(&ints, &scf);
        let act = active_space_integrals(&mo, &ActiveSpace::full(2), ints.nuclear_repulsion);

        let jw = crate::fermion::build_qubit_hamiltonian(&act);
        let parity = build_qubit_hamiltonian_encoded(&act, FermionEncoding::Parity);
        assert_eq!(parity.num_qubits(), 4);
        let e_jw = jw.ground_state_energy();
        let e_parity = parity.ground_state_energy();
        assert!(
            (e_jw - e_parity).abs() < 1e-8,
            "JW {e_jw} vs parity {e_parity}"
        );

        // Taper the α-parity and total-parity qubits (n_α = n_β = 1).
        let tapered = taper_two_qubits(&parity, 1, 1);
        assert_eq!(tapered.num_qubits(), 2);
        let e_tapered = tapered.ground_state_energy();
        assert!(
            (e_tapered - e_jw).abs() < 1e-8,
            "tapered {e_tapered} vs full {e_jw}"
        );
    }

    #[test]
    #[should_panic]
    fn tapering_rejects_parity_breaking_terms() {
        let mut h = WeightedPauliSum::new(4);
        // X on the α-parity qubit (m−1 = 1) breaks the symmetry.
        h.push(1.0, "IIXI".parse().unwrap());
        let _ = taper_two_qubits(&h, 1, 1);
    }

    /// Cross-check against the JW machinery already validated elsewhere.
    #[test]
    fn jw_paths_agree() {
        let n = 4;
        let ops = [LadderOp::create(2), LadderOp::annihilate(1)];
        let via_encoding = encoded_product(FermionEncoding::JordanWigner, n, &ops);
        let direct = jordan_wigner_product(n, &ops);
        assert_eq!(via_encoding.len(), direct.len());
        for (p, w) in &direct {
            assert!(via_encoding[p].approx_eq(*w, 1e-12));
        }
    }
}
