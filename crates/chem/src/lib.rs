//! Electronic-structure substrate: molecular qubit Hamiltonians from first
//! principles.
//!
//! The paper generates its Hamiltonians with PySCF (STO-3G orbitals,
//! Jordan–Wigner encoding, frozen core — §VI-A). That pipeline is rebuilt
//! here in full:
//!
//! 1. [`geometry`] — molecular geometries (the paper's nine benchmarks,
//!    parameterized by bond length);
//! 2. [`basis`] — the STO-3G minimal Gaussian basis;
//! 3. [`integrals`] — one- and two-electron integrals over contracted
//!    Gaussians (McMurchie–Davidson scheme, [`boys`] function);
//! 4. [`scf`] — restricted Hartree-Fock with DIIS convergence acceleration;
//! 5. [`mo`] — AO→MO integral transformation and active-space reduction;
//! 6. [`fermion`] — second-quantized operators and the Jordan–Wigner
//!    encoding onto Pauli strings;
//! 7. [`hamiltonian`] — the end-to-end driver producing a
//!    [`MolecularSystem`]: qubit Hamiltonian, Hartree-Fock reference state,
//!    and active-space metadata;
//! 8. [`molecules`] — the paper's Table I benchmark set.
//!
//! # Examples
//!
//! ```no_run
//! use chem::molecules::Benchmark;
//!
//! // H2 at its equilibrium bond length: a 4-qubit Hamiltonian.
//! let system = Benchmark::H2.build(0.74)?;
//! assert_eq!(system.num_qubits(), 4);
//! let e = system.qubit_hamiltonian().ground_state_energy();
//! assert!(e < -1.0); // Hartree
//! # Ok::<(), chem::ChemError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod basis;
pub mod boys;
pub mod element;
pub mod encoding;
pub mod fermion;
pub mod geometry;
pub mod hamiltonian;
pub mod hubbard;
pub mod integrals;
pub mod mo;
pub mod molecules;
pub mod properties;
pub mod scf;

pub use element::Element;
pub use geometry::{Atom, Molecule};
pub use hamiltonian::{ChemError, MolecularSystem};
pub use molecules::Benchmark;

/// Bohr radii per Angstrom (CODATA).
pub const ANGSTROM_TO_BOHR: f64 = 1.889_726_124_626_18;
