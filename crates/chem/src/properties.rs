//! Post-Hartree-Fock properties: MP2 correlation energy and dipole moments.
//!
//! These give the workspace independent classical cross-checks: MP2 must
//! land between Hartree-Fock and the exact (Lanczos/VQE) energy, and
//! dipoles validate the integral engine beyond the energy path.

use crate::basis::BasisFunction;
use crate::geometry::Molecule;
use crate::integrals::dipole;
use crate::mo::MoIntegrals;
use crate::scf::ScfResult;

/// Second-order Møller–Plesset correlation energy (closed shell):
/// `E₂ = Σ_{ijab} (ia|jb)·[2(ia|jb) − (ib|ja)] / (ε_i + ε_j − ε_a − ε_b)`.
///
/// Returns the correlation energy (≤ 0); add it to the SCF total energy
/// for the MP2 total.
///
/// # Examples
///
/// ```no_run
/// # use chem::{basis::build_basis, integrals::compute_ao_integrals};
/// # use chem::scf::{restricted_hartree_fock, ScfOptions};
/// # use chem::mo::transform_to_mo;
/// # use chem::properties::mp2_correlation_energy;
/// # use chem::geometry::shapes::diatomic;
/// # use chem::Element;
/// let m = diatomic(Element::H, Element::H, 0.74);
/// let b = build_basis(&m);
/// let ints = compute_ao_integrals(&m, &b);
/// let scf = restricted_hartree_fock(&ints, 2, ScfOptions::default()).unwrap();
/// let mo = transform_to_mo(&ints, &scf);
/// let e2 = mp2_correlation_energy(&mo, &scf);
/// assert!(e2 < 0.0);
/// ```
pub fn mp2_correlation_energy(mo: &MoIntegrals, scf: &ScfResult) -> f64 {
    let n = scf.orbital_energies.len();
    let nocc = scf.num_occupied;
    let eps = &scf.orbital_energies;
    let mut e2 = 0.0;
    for i in 0..nocc {
        for j in 0..nocc {
            for a in nocc..n {
                for b in nocc..n {
                    let iajb = mo.eri.get(i, a, j, b);
                    let ibja = mo.eri.get(i, b, j, a);
                    let denom = eps[i] + eps[j] - eps[a] - eps[b];
                    e2 += iajb * (2.0 * iajb - ibja) / denom;
                }
            }
        }
    }
    e2
}

/// The molecular dipole moment vector in atomic units (e·a₀):
/// `μ = Σ_A Z_A·R_A − Σ_{μν} D_{μν} ⟨μ|r|ν⟩` with the closed-shell SCF
/// density `D = 2·C_occ·C_occᵀ`.
pub fn dipole_moment(molecule: &Molecule, basis: &[BasisFunction], scf: &ScfResult) -> [f64; 3] {
    let n = basis.len();
    // SCF density matrix.
    let mut density = vec![vec![0.0; n]; n];
    for (mu, row) in density.iter_mut().enumerate() {
        for (nu, d) in row.iter_mut().enumerate() {
            *d = 2.0
                * (0..scf.num_occupied)
                    .map(|i| scf.mo_coefficients[(mu, i)] * scf.mo_coefficients[(nu, i)])
                    .sum::<f64>();
        }
    }

    let mut mu_vec = [0.0f64; 3];
    for (axis, out) in mu_vec.iter_mut().enumerate() {
        // Nuclear part.
        for atom in molecule.atoms() {
            *out += atom.element.atomic_number() as f64 * atom.position[axis];
        }
        // Electronic part.
        for m in 0..n {
            for v in 0..n {
                *out -= density[m][v] * dipole(&basis[m], &basis[v], axis);
            }
        }
    }
    mu_vec
}

/// Euclidean norm of a dipole vector.
pub fn dipole_magnitude(mu: [f64; 3]) -> f64 {
    (mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2]).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::build_basis;
    use crate::geometry::shapes::{bent_xh2, diatomic};
    use crate::integrals::compute_ao_integrals;
    use crate::mo::transform_to_mo;
    use crate::scf::{restricted_hartree_fock, ScfOptions};
    use crate::Element;

    fn solve(molecule: &Molecule) -> (Vec<BasisFunction>, ScfResult, MoIntegrals) {
        let basis = build_basis(molecule);
        let ints = compute_ao_integrals(molecule, &basis);
        let scf = restricted_hartree_fock(&ints, molecule.num_electrons(), ScfOptions::default())
            .unwrap();
        let mo = transform_to_mo(&ints, &scf);
        (basis, scf, mo)
    }

    #[test]
    fn h2_mp2_recovers_part_of_fci_correlation() {
        let m = diatomic(Element::H, Element::H, 0.7414);
        let (_, scf, mo) = solve(&m);
        let e2 = mp2_correlation_energy(&mo, &scf);
        // FCI correlation for H2/STO-3G at 0.7414 Å ≈ −0.0206 Ha.
        assert!(e2 < -0.005 && e2 > -0.0206, "MP2 correlation {e2}");
    }

    #[test]
    fn h2o_mp2_near_literature() {
        // MP2/STO-3G water correlation ≈ −0.049 Ha near equilibrium
        // (Crawford tutorial geometry; ours differs slightly).
        let m = bent_xh2(Element::O, 0.96, 104.5);
        let (_, scf, mo) = solve(&m);
        let e2 = mp2_correlation_energy(&mo, &scf);
        assert!((-0.06..=-0.03).contains(&e2), "MP2 correlation {e2}");
    }

    #[test]
    fn mp2_is_size_reasonable_and_negative() {
        for m in [
            diatomic(Element::Li, Element::H, 1.6),
            diatomic(Element::F, Element::H, 0.92),
        ] {
            let (_, scf, mo) = solve(&m);
            let e2 = mp2_correlation_energy(&mo, &scf);
            assert!(e2 < 0.0 && e2 > -0.3, "correlation {e2}");
        }
    }

    #[test]
    fn h2_dipole_vanishes_by_symmetry() {
        let m = diatomic(Element::H, Element::H, 0.74);
        let (basis, scf, _) = solve(&m);
        let mu = dipole_moment(&m, &basis, &scf);
        assert!(dipole_magnitude(mu) < 1e-8, "H2 dipole {mu:?}");
    }

    #[test]
    fn hf_dipole_points_along_bond() {
        // HF/STO-3G dipole ≈ 0.5 e·a0 (≈1.25 D) along the bond (z).
        let m = diatomic(Element::F, Element::H, 0.92);
        let (basis, scf, _) = solve(&m);
        let mu = dipole_moment(&m, &basis, &scf);
        assert!(
            mu[0].abs() < 1e-8 && mu[1].abs() < 1e-8,
            "off-axis dipole {mu:?}"
        );
        let mag = dipole_magnitude(mu);
        assert!((0.3..=0.8).contains(&mag), "HF dipole magnitude {mag}");
        // F is at the origin, H at +z; the negative end sits on F, so the
        // dipole vector (from − to +) points toward H: μ_z > 0.
        assert!(mu[2] > 0.0, "dipole direction {mu:?}");
    }

    #[test]
    fn water_dipole_near_literature() {
        // H2O/STO-3G ≈ 0.6–0.7 e·a0 (≈1.7 D).
        let m = bent_xh2(Element::O, 0.96, 104.5);
        let (basis, scf, _) = solve(&m);
        let mag = dipole_magnitude(dipole_moment(&m, &basis, &scf));
        assert!((0.45..=0.85).contains(&mag), "water dipole {mag}");
    }
}
