//! The Boys function `F_m(x) = ∫₀¹ t^{2m} e^{-x t²} dt`.
//!
//! Every Coulomb-type integral (nuclear attraction, electron repulsion)
//! reduces to Boys functions in the McMurchie–Davidson scheme. We evaluate
//! the highest required order by a convergent series for moderate `x` and by
//! the complete asymptotic form for large `x`, then fill lower orders with
//! the stable downward recursion
//! `F_m(x) = (2x·F_{m+1}(x) + e^{-x}) / (2m + 1)`.

/// Evaluates `F_0(x) … F_{m_max}(x)`, returned in ascending order.
///
/// Accurate to ~1e-13 over the ranges produced by molecular integrals.
///
/// # Panics
///
/// Panics if `x` is negative or not finite.
///
/// # Examples
///
/// ```
/// use chem::boys::boys;
///
/// let f = boys(0, 0.0);
/// assert!((f[0] - 1.0).abs() < 1e-15); // F_0(0) = 1
/// ```
pub fn boys(m_max: usize, x: f64) -> Vec<f64> {
    assert!(
        x.is_finite() && x >= 0.0,
        "Boys argument must be finite and non-negative"
    );
    let mut out = vec![0.0; m_max + 1];

    if x < 1e-14 {
        // F_m(0) = 1/(2m+1).
        for (m, o) in out.iter_mut().enumerate() {
            *o = 1.0 / (2.0 * m as f64 + 1.0);
        }
        return out;
    }

    if x > 35.0 {
        // Asymptotic: F_0(x) = ½·√(π/x); upward recursion is stable here
        // because the e^{-x} correction is negligible relative to each term.
        let ex = (-x).exp();
        out[0] = 0.5 * (std::f64::consts::PI / x).sqrt();
        for m in 1..=m_max {
            out[m] = ((2.0 * m as f64 - 1.0) * out[m - 1] - ex) / (2.0 * x);
        }
        return out;
    }

    // Series at the top order:
    // F_m(x) = e^{-x} Σ_{k≥0} (2x)^k / [(2m+1)(2m+3)…(2m+2k+1)].
    let mm = m_max as f64;
    let ex = (-x).exp();
    let mut term = 1.0 / (2.0 * mm + 1.0);
    let mut sum = term;
    let mut k = 1.0;
    loop {
        term *= 2.0 * x / (2.0 * mm + 2.0 * k + 1.0);
        sum += term;
        if term < 1e-17 * sum || k > 500.0 {
            break;
        }
        k += 1.0;
    }
    out[m_max] = ex * sum;

    // Downward recursion.
    for m in (0..m_max).rev() {
        out[m] = (2.0 * x * out[m + 1] + ex) / (2.0 * m as f64 + 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force quadrature reference.
    fn reference(m: usize, x: f64) -> f64 {
        let n = 200_000;
        let h = 1.0 / n as f64;
        let f = |t: f64| t.powi(2 * m as i32) * (-x * t * t).exp();
        let mut acc = (f(0.0) + f(1.0)) / 2.0;
        for k in 1..n {
            acc += f(k as f64 * h);
        }
        acc * h
    }

    #[test]
    fn values_at_zero() {
        let f = boys(4, 0.0);
        for (m, v) in f.iter().enumerate() {
            assert!((v - 1.0 / (2.0 * m as f64 + 1.0)).abs() < 1e-15);
        }
    }

    #[test]
    fn f0_is_scaled_erf() {
        // F_0(x) = ½·√(π/x)·erf(√x); compare against quadrature.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0, 30.0] {
            let f = boys(0, x);
            let r = reference(0, x);
            assert!((f[0] - r).abs() < 1e-9, "x={x}: {} vs {r}", f[0]);
        }
    }

    #[test]
    fn higher_orders_match_quadrature() {
        for &x in &[0.05, 0.7, 2.3, 8.0, 20.0, 34.0] {
            let f = boys(6, x);
            for (m, &fm) in f.iter().enumerate() {
                let r = reference(m, x);
                assert!((fm - r).abs() < 1e-8, "m={m}, x={x}: {fm} vs {r}");
            }
        }
    }

    #[test]
    fn asymptotic_branch_agrees_with_series_at_crossover() {
        // The two branches must join continuously near x = 35. The genuine
        // change of F_m over the 0.002 step is bounded by |F_m'|·Δx =
        // F_{m+1}·Δx ≤ F_m·Δx, so allow a derivative-scale tolerance.
        let lo = boys(5, 34.999);
        let hi = boys(5, 35.001);
        for m in 0..=5 {
            assert!(
                (lo[m] - hi[m]).abs() < 3e-3 * lo[m].abs() + 1e-12,
                "m={m}: {} vs {}",
                lo[m],
                hi[m]
            );
        }
    }

    #[test]
    fn monotone_decreasing_in_m_and_x() {
        let f = boys(5, 2.0);
        for m in 1..=5 {
            assert!(f[m] < f[m - 1]);
        }
        let g = boys(0, 3.0);
        assert!(g[0] < boys(0, 2.0)[0]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_argument() {
        let _ = boys(1, -0.5);
    }
}
