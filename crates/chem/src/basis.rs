//! The STO-3G minimal Gaussian basis.
//!
//! Every Slater orbital with exponent ζ is expanded in three primitive
//! Gaussians whose exponents are `a_k·ζ²` with fixed fit constants `a_k`
//! and contraction coefficients `c_k` (Hehre–Stewart–Pople). The 1s and
//! 2sp constants are the published values; the 3sp constants (needed only
//! for Na) are fitted at startup by maximizing the Slater–Gaussian overlap,
//! the same criterion used to produce the published tables (substitution
//! documented in DESIGN.md).

use std::sync::OnceLock;

use crate::element::Shell;
use crate::geometry::Molecule;

/// A primitive Cartesian Gaussian `coef · x^i y^j z^k · exp(-α r²)` centered
/// on its basis function's center. `coef` already contains primitive and
/// contraction normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Gaussian exponent α.
    pub exponent: f64,
    /// Total coefficient (contraction × normalization).
    pub coefficient: f64,
}

/// A contracted Cartesian Gaussian basis function.
///
/// # Examples
///
/// ```
/// use chem::basis::build_basis;
/// use chem::geometry::shapes::diatomic;
/// use chem::Element;
///
/// let h2 = diatomic(Element::H, Element::H, 0.74);
/// let basis = build_basis(&h2);
/// assert_eq!(basis.len(), 2); // one 1s function per H
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BasisFunction {
    /// Center in Bohr.
    pub center: [f64; 3],
    /// Cartesian angular momentum `(i, j, k)`.
    pub angmom: [u32; 3],
    /// Contracted primitives.
    pub primitives: Vec<Primitive>,
}

impl BasisFunction {
    /// Total angular momentum `L = i + j + k`.
    pub fn total_angmom(&self) -> u32 {
        self.angmom.iter().sum()
    }
}

/// Fixed STO-3G expansion constants for a shell: exponent scale factors
/// (multiplied by ζ²) and contraction coefficients for the s and p parts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellFit {
    /// Exponent scale factors `a_k` (exponents are `a_k · ζ²`).
    pub alpha_scale: [f64; 3],
    /// s-orbital contraction coefficients.
    pub coeff_s: [f64; 3],
    /// p-orbital contraction coefficients (unused for 1s shells).
    pub coeff_p: [f64; 3],
}

/// Published STO-3G fit for the 1s shell.
pub const FIT_1S: ShellFit = ShellFit {
    alpha_scale: [2.227_660_584, 0.405_771_156_2, 0.109_817_510_4],
    coeff_s: [0.154_328_967_3, 0.535_328_142_3, 0.444_634_542_2],
    coeff_p: [0.0, 0.0, 0.0],
};

/// Published STO-3G fit for the 2sp shell.
pub const FIT_2SP: ShellFit = ShellFit {
    alpha_scale: [0.994_203_4, 0.231_031_0, 0.075_138_6],
    coeff_s: [-0.099_967_23, 0.399_512_83, 0.700_115_47],
    coeff_p: [0.155_916_27, 0.607_683_72, 0.391_957_39],
};

/// The 3sp fit, computed once by [`fit_shell`] for quantum number n = 3.
pub fn fit_3sp() -> &'static ShellFit {
    static FIT: OnceLock<ShellFit> = OnceLock::new();
    FIT.get_or_init(|| fit_shell(3))
}

fn shell_fit(shell: Shell) -> ShellFit {
    match shell {
        Shell::S1 => FIT_1S,
        Shell::SP2 => FIT_2SP,
        Shell::SP3 => *fit_3sp(),
    }
}

/// Builds the STO-3G basis for a molecule. Functions are emitted atom by
/// atom, shells inner-to-outer, with p functions in `x, y, z` order.
pub fn build_basis(molecule: &Molecule) -> Vec<BasisFunction> {
    let mut out = Vec::new();
    for atom in molecule.atoms() {
        for &(shell, zeta) in atom.element.sto3g_zetas() {
            let fit = shell_fit(shell);
            let z2 = zeta * zeta;
            // s function.
            out.push(contracted(
                atom.position,
                [0, 0, 0],
                &fit.alpha_scale,
                &fit.coeff_s,
                z2,
            ));
            // p functions for sp shells.
            if !matches!(shell, Shell::S1) {
                for axis in 0..3 {
                    let mut am = [0u32; 3];
                    am[axis] = 1;
                    out.push(contracted(
                        atom.position,
                        am,
                        &fit.alpha_scale,
                        &fit.coeff_p,
                        z2,
                    ));
                }
            }
        }
    }
    out
}

/// Normalization constant of a primitive Cartesian Gaussian with exponent α
/// and angular momentum `(i, j, k)`.
pub fn primitive_norm(alpha: f64, angmom: [u32; 3]) -> f64 {
    let l: u32 = angmom.iter().sum();
    let dfac: f64 = angmom
        .iter()
        .map(|&m| double_factorial(2 * m as i64 - 1))
        .product();
    let base = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
    base * ((4.0 * alpha).powi(l as i32) / dfac).sqrt()
}

/// Odd double factorial `(2m-1)!!` with the convention `(-1)!! = 1`.
pub fn double_factorial(mut n: i64) -> f64 {
    let mut acc = 1.0;
    while n > 1 {
        acc *= n as f64;
        n -= 2;
    }
    acc
}

fn contracted(
    center: [f64; 3],
    angmom: [u32; 3],
    alpha_scale: &[f64; 3],
    coeffs: &[f64; 3],
    zeta_sq: f64,
) -> BasisFunction {
    let mut prims: Vec<Primitive> = alpha_scale
        .iter()
        .zip(coeffs)
        .map(|(&a, &c)| {
            let alpha = a * zeta_sq;
            Primitive {
                exponent: alpha,
                coefficient: c * primitive_norm(alpha, angmom),
            }
        })
        .collect();

    // Normalize the contraction: ⟨φ|φ⟩ = Σ_ij c_i c_j S_ij(prim) = 1.
    let mut self_overlap = 0.0;
    for a in &prims {
        for b in &prims {
            self_overlap += a.coefficient
                * b.coefficient
                * primitive_pair_overlap(a.exponent, b.exponent, angmom);
        }
    }
    let scale = 1.0 / self_overlap.sqrt();
    for p in &mut prims {
        p.coefficient *= scale;
    }
    BasisFunction {
        center,
        angmom,
        primitives: prims,
    }
}

/// Overlap of two *unnormalized* same-center Cartesian Gaussians with the
/// same angular momentum: `∫ x^{2i} y^{2j} z^{2k} e^{-(a+b)r²}`.
fn primitive_pair_overlap(a: f64, b: f64, angmom: [u32; 3]) -> f64 {
    let p = a + b;
    let mut v = (std::f64::consts::PI / p).powf(1.5);
    for &m in &angmom {
        v *= double_factorial(2 * m as i64 - 1) / (2.0 * p).powi(m as i32);
    }
    v
}

// ---------------------------------------------------------------------------
// STO-NG fitting (used for the 3sp shell).
// ---------------------------------------------------------------------------

/// Fits 3-Gaussian expansions for the `ns`/`np` shell with principal quantum
/// number `n` at ζ = 1, maximizing the summed s- and p-overlap with the
/// Slater orbital. Returns exponent scale factors and contraction
/// coefficients in the same convention as the published tables.
///
/// Deterministic: a fixed-seed Nelder–Mead over the three log-exponents,
/// with the optimal coefficients obtained in closed form at each step.
pub fn fit_shell(n: u32) -> ShellFit {
    assert!((1..=3).contains(&n), "fit implemented for n = 1..=3");
    let objective = |logs: &[f64; 3]| -> f64 {
        let alphas = [logs[0].exp(), logs[1].exp(), logs[2].exp()];
        let (ov_s, _) = best_coefficients(n, 0, &alphas);
        if n == 1 {
            -ov_s
        } else {
            let (ov_p, _) = best_coefficients(n, 1, &alphas);
            -(ov_s + ov_p)
        }
    };

    // Nelder–Mead on the 3 log-exponents.
    let start: [f64; 3] = match n {
        1 => [0.8, -0.9, -2.2],
        2 => [0.0, -1.5, -2.6],
        _ => [-1.0, -2.0, -3.2],
    };
    let logs = nelder_mead_3(objective, start, 600);
    let mut alphas = [logs[0].exp(), logs[1].exp(), logs[2].exp()];
    // Sort descending to match the published convention.
    alphas.sort_by(|a, b| b.total_cmp(a));

    let (_, cs) = best_coefficients(n, 0, &alphas);
    let cp = if n == 1 {
        [0.0; 3]
    } else {
        best_coefficients(n, 1, &alphas).1
    };
    ShellFit {
        alpha_scale: alphas,
        coeff_s: cs,
        coeff_p: cp,
    }
}

/// For fixed exponents, the coefficients maximizing overlap with the Slater
/// orbital are `c ∝ S⁻¹·t`; returns `(overlap, coefficients)` where the
/// coefficients are normalized so the contracted function has unit norm.
fn best_coefficients(n: u32, l: u32, alphas: &[f64; 3]) -> (f64, [f64; 3]) {
    // Primitive-primitive overlaps (normalized primitives, same center).
    let am = if l == 0 { [0u32, 0, 0] } else { [1u32, 0, 0] };
    let mut s = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            s[i][j] = primitive_norm(alphas[i], am)
                * primitive_norm(alphas[j], am)
                * primitive_pair_overlap(alphas[i], alphas[j], am);
        }
    }
    // Primitive–Slater overlaps.
    let mut t = [0.0f64; 3];
    for i in 0..3 {
        t[i] = slater_gaussian_overlap(n, l, 1.0, alphas[i]);
    }
    // Solve S·c = t (3×3, symmetric positive definite).
    let c = solve3(&s, &t);
    // Normalize: overlap achieved is tᵀc / √(cᵀSc).
    let num: f64 = t.iter().zip(&c).map(|(a, b)| a * b).sum();
    let mut csc = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            csc += c[i] * s[i][j] * c[j];
        }
    }
    let norm = csc.sqrt();
    let overlap = num / norm;
    (overlap, [c[0] / norm, c[1] / norm, c[2] / norm])
}

/// Overlap of a normalized primitive Gaussian (angular momentum `l` ∈ {0,1})
/// with the normalized Slater orbital `R_{nl}(r) ∝ r^{n-1} e^{-ζr}` sharing
/// its angular factor. Radial integrals are evaluated by fixed-step Simpson
/// quadrature (smooth, rapidly decaying integrands).
fn slater_gaussian_overlap(n: u32, l: u32, zeta: f64, alpha: f64) -> f64 {
    // Slater radial normalization: ∫ R² r² dr = 1 with R = N r^{n-1} e^{-ζr}
    // → N² (2n)!/(2ζ)^{2n+1} = 1.
    let fact_2n: f64 = (1..=2 * n as u64).map(|k| k as f64).product();
    let n_slater = ((2.0 * zeta).powi(2 * n as i32 + 1) / fact_2n).sqrt();
    let n_gauss = primitive_norm(alpha, if l == 0 { [0, 0, 0] } else { [1, 0, 0] });

    // Angular integral folds into these closed forms:
    //   l = 0: ⟨g|S⟩ = n_g·n_S·√(4π)/√(4π) ∫ r^{n+1} e^{-αr²-ζr} dr … both
    //   share Y₀₀, the angular integral is 1; radial measure r².
    //   l = 1: x-type primitive = n_g·r·(x/r)·e^{-αr²}; Slater p shares the
    //   (x/r)·√(3/4π) angular factor; ∫(x/r)² dΩ = 4π/3.
    let radial_power = match l {
        0 => n as i32 + 1, // r^{n-1} · r² from measure, Gaussian r^0
        _ => n as i32 + 2, // r^{n-1} · r (gaussian) · r² … combined below
    };
    // For l=0: integrand r^{n-1}·e^{-ζr} · e^{-αr²} · r² = r^{n+1}…
    // For l=1: gaussian radial part is r·e^{-αr²}; integrand r^{n-1}·r·r².
    let radial = simpson(
        |r| r.powi(radial_power) * (-alpha * r * r - zeta * r).exp(),
        60.0,
    );
    let angular = match l {
        0 => 1.0,
        _ => {
            // n_g includes the full 3D normalization of x·e^{-αr²}; the
            // Slater normalization n_slater is radial-only with angular
            // √(3/4π). Overlap = n_g·n_S·√(3/4π)·(4π/3)·radial
            //                  = n_g·n_S·√(4π/3)·radial.
            (4.0 * std::f64::consts::PI / 3.0).sqrt()
        }
    };
    let angular_s = if l == 0 {
        // s primitive is normalized in 3D: ψ = n_g e^{-αr²}; Slater s is
        // R·Y₀₀. Overlap = n_g·n_S·√(4π)·Y₀₀·radial = n_g·n_S·√(4π)/√(4π)…
        // i.e. n_g·n_S·radial·√(4π)·(1/√(4π)) = n_g·n_S·radial·1 — but the
        // 3D integral of a spherical function is 4π∫r²dr, giving
        // n_g·n_S·(4π/√(4π))·∫ = n_g·n_S·√(4π)·∫.
        (4.0 * std::f64::consts::PI).sqrt()
    } else {
        1.0
    };
    n_gauss * n_slater * radial * angular * angular_s
}

fn simpson(f: impl Fn(f64) -> f64, upper: f64) -> f64 {
    let n = 4000; // even
    let h = upper / n as f64;
    let mut acc = f(0.0) + f(upper);
    for k in 1..n {
        let w = if k % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(k as f64 * h);
    }
    acc * h / 3.0
}

fn solve3(s: &[[f64; 3]; 3], t: &[f64; 3]) -> [f64; 3] {
    // Cramer's rule on the 3×3 system.
    let det = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(s);
    let mut out = [0.0; 3];
    for col in 0..3 {
        let mut m = *s;
        for row in 0..3 {
            m[row][col] = t[row];
        }
        out[col] = det(&m) / d;
    }
    out
}

fn nelder_mead_3(f: impl Fn(&[f64; 3]) -> f64, start: [f64; 3], iters: usize) -> [f64; 3] {
    let mut simplex: Vec<[f64; 3]> = vec![start];
    for k in 0..3 {
        let mut v = start;
        v[k] += 0.35;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(&f).collect();
    for _ in 0..iters {
        // Sort ascending by value.
        let mut idx: Vec<usize> = (0..4).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let reorder: Vec<[f64; 3]> = idx.iter().map(|&i| simplex[i]).collect();
        let revals: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        simplex = reorder;
        values = revals;

        let centroid = {
            let mut c = [0.0; 3];
            for v in &simplex[..3] {
                for k in 0..3 {
                    c[k] += v[k] / 3.0;
                }
            }
            c
        };
        let worst = simplex[3];
        let reflect = std::array::from_fn(|k| centroid[k] + (centroid[k] - worst[k]));
        let fr = f(&reflect);
        if fr < values[0] {
            let expand = std::array::from_fn(|k| centroid[k] + 2.0 * (centroid[k] - worst[k]));
            let fe = f(&expand);
            if fe < fr {
                simplex[3] = expand;
                values[3] = fe;
            } else {
                simplex[3] = reflect;
                values[3] = fr;
            }
        } else if fr < values[2] {
            simplex[3] = reflect;
            values[3] = fr;
        } else {
            let contract = std::array::from_fn(|k| centroid[k] + 0.5 * (worst[k] - centroid[k]));
            let fc = f(&contract);
            if fc < values[3] {
                simplex[3] = contract;
                values[3] = fc;
            } else {
                // Shrink toward best.
                let top = simplex[0];
                for j in 1..4 {
                    for (s, b) in simplex[j].iter_mut().zip(&top) {
                        *s = b + 0.5 * (*s - b);
                    }
                    values[j] = f(&simplex[j]);
                }
            }
        }
    }
    let mut best = 0;
    for j in 1..4 {
        if values[j] < values[best] {
            best = j;
        }
    }
    simplex[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::shapes::diatomic;
    use crate::Element;

    #[test]
    fn h_sto3g_primitives_match_published_values() {
        let h2 = diatomic(Element::H, Element::H, 0.74);
        let basis = build_basis(&h2);
        let exps: Vec<f64> = basis[0].primitives.iter().map(|p| p.exponent).collect();
        // EMSL STO-3G hydrogen exponents.
        let reference = [3.425_250_91, 0.623_913_73, 0.168_855_40];
        for (a, b) in exps.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn basis_sizes_match_minimal_basis() {
        use crate::geometry::shapes::*;
        assert_eq!(build_basis(&diatomic(Element::H, Element::H, 0.7)).len(), 2);
        assert_eq!(
            build_basis(&diatomic(Element::Li, Element::H, 1.6)).len(),
            6
        );
        assert_eq!(build_basis(&bent_xh2(Element::O, 0.96, 104.5)).len(), 7);
        assert_eq!(build_basis(&tetrahedral_xh4(Element::C, 1.09)).len(), 9);
        assert_eq!(
            build_basis(&diatomic(Element::Na, Element::H, 1.9)).len(),
            10
        );
    }

    #[test]
    fn p_functions_follow_s_in_sp_shells() {
        let lih = diatomic(Element::Li, Element::H, 1.6);
        let basis = build_basis(&lih);
        // Li: 1s, 2s, 2px, 2py, 2pz then H 1s.
        assert_eq!(basis[0].angmom, [0, 0, 0]);
        assert_eq!(basis[1].angmom, [0, 0, 0]);
        assert_eq!(basis[2].angmom, [1, 0, 0]);
        assert_eq!(basis[3].angmom, [0, 1, 0]);
        assert_eq!(basis[4].angmom, [0, 0, 1]);
        assert_eq!(basis[5].angmom, [0, 0, 0]);
    }

    #[test]
    fn fit_recovers_1s_constants() {
        // Fitting the 1s shell ourselves must land near the published
        // constants (the published table was produced the same way).
        let fit = fit_shell(1);
        for (a, b) in fit.alpha_scale.iter().zip(&FIT_1S.alpha_scale) {
            assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
        }
        // The achieved overlap must be excellent.
        let (ov, _) = best_coefficients(1, 0, &fit.alpha_scale);
        assert!(ov > 0.998, "1s fit overlap {ov}");
    }

    #[test]
    fn fit_3sp_has_high_overlap() {
        let fit = fit_3sp();
        let (ov_s, _) = best_coefficients(3, 0, &fit.alpha_scale);
        let (ov_p, _) = best_coefficients(3, 1, &fit.alpha_scale);
        assert!(ov_s > 0.995, "3s fit overlap {ov_s}");
        assert!(ov_p > 0.995, "3p fit overlap {ov_p}");
        // Exponents must be positive and descending.
        assert!(fit.alpha_scale[0] > fit.alpha_scale[1]);
        assert!(fit.alpha_scale[1] > fit.alpha_scale[2]);
        assert!(fit.alpha_scale[2] > 0.0);
    }

    #[test]
    fn double_factorial_values() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(1), 1.0);
        assert_eq!(double_factorial(3), 3.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(7), 105.0);
    }

    #[test]
    fn contracted_functions_are_normalized() {
        let basis = build_basis(&diatomic(Element::O, Element::H, 0.96));
        for bf in &basis {
            let mut s = 0.0;
            for a in &bf.primitives {
                for b in &bf.primitives {
                    s += a.coefficient
                        * b.coefficient
                        * primitive_pair_overlap(a.exponent, b.exponent, bf.angmom);
                }
            }
            assert!((s - 1.0).abs() < 1e-10, "self-overlap {s}");
        }
    }
}
