//! Restricted Hartree-Fock with DIIS convergence acceleration.

use std::error::Error;
use std::fmt;

use numeric::{jacobi_eigen, lu_solve, RealMatrix};

use crate::integrals::AoIntegrals;

/// Error from the SCF procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum ScfError {
    /// Odd electron count (RHF is closed-shell only).
    OddElectronCount(usize),
    /// More occupied orbitals than basis functions.
    BasisTooSmall {
        /// Doubly-occupied orbitals required.
        occupied: usize,
        /// Basis functions available.
        basis: usize,
    },
    /// SCF failed to converge within the iteration limit.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Last energy change seen.
        delta_e: f64,
    },
    /// The electronic energy or DIIS error became NaN/±∞. Raised on the
    /// first iteration a non-finite value appears, so callers can retry
    /// (e.g. with damping or a level shift) instead of iterating on garbage.
    NonFiniteEnergy {
        /// Iteration at which the non-finite value appeared.
        iteration: usize,
        /// The offending electronic energy.
        energy: f64,
    },
}

impl fmt::Display for ScfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfError::OddElectronCount(n) => {
                write!(
                    f,
                    "restricted Hartree-Fock requires an even electron count, got {n}"
                )
            }
            ScfError::BasisTooSmall { occupied, basis } => {
                write!(
                    f,
                    "{occupied} occupied orbitals exceed {basis} basis functions"
                )
            }
            ScfError::NotConverged {
                iterations,
                delta_e,
            } => {
                write!(
                    f,
                    "SCF did not converge in {iterations} iterations (ΔE = {delta_e:e})"
                )
            }
            ScfError::NonFiniteEnergy { iteration, energy } => {
                write!(
                    f,
                    "SCF energy became non-finite ({energy}) at iteration {iteration}"
                )
            }
        }
    }
}

impl Error for ScfError {}

/// Converged Hartree-Fock solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear repulsion), Hartree.
    pub total_energy: f64,
    /// Electronic energy, Hartree.
    pub electronic_energy: f64,
    /// MO coefficients: column `k` is orbital `k` in the AO basis, sorted by
    /// ascending orbital energy.
    pub mo_coefficients: RealMatrix,
    /// Orbital energies, ascending.
    pub orbital_energies: Vec<f64>,
    /// Number of doubly-occupied orbitals.
    pub num_occupied: usize,
    /// SCF iterations used.
    pub iterations: usize,
}

/// SCF convergence options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScfOptions {
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence threshold on the energy change.
    pub energy_tol: f64,
    /// Convergence threshold on the DIIS error norm.
    pub error_tol: f64,
    /// Maximum DIIS history length.
    pub diis_depth: usize,
    /// Fock damping factor `α ∈ [0, 1)`: the next Fock matrix becomes
    /// `(1−α)·F_new + α·F_prev`. `0.0` disables damping. When damping or a
    /// level shift is active, DIIS extrapolation is bypassed — this is the
    /// conservative convergence ladder used for difficult geometries.
    pub damping: f64,
    /// Level shift `λ` (Hartree) added to the virtual orbitals via
    /// `F ← F + λ(S − ½·S·D·S)`, separating occupied and virtual manifolds
    /// on near-degenerate problems. `0.0` disables the shift.
    pub level_shift: f64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            max_iter: 200,
            energy_tol: 1e-10,
            error_tol: 1e-8,
            diis_depth: 8,
            damping: 0.0,
            level_shift: 0.0,
        }
    }
}

/// SCF loop state captured at an iteration boundary, sufficient to resume
/// the run bit-identically.
///
/// The loop's only carried state is the Fock matrix about to be
/// diagonalized, the DIIS histories, the last electronic energy, and the
/// iteration index — the density is recomputed from the Fock matrix every
/// iteration. Restoring these and re-entering the loop reproduces the
/// uninterrupted trajectory exactly (every operation is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ScfCheckpoint {
    /// The 1-based iteration the resumed loop executes next.
    pub next_iteration: usize,
    /// Electronic energy after the last completed iteration (0 before the
    /// first).
    pub energy: f64,
    /// Energy change seen on the last completed iteration (NaN before the
    /// first).
    pub last_delta_e: f64,
    /// The Fock matrix the next iteration will diagonalize.
    pub fock: RealMatrix,
    /// DIIS Fock history (empty when damping/level-shift bypass DIIS).
    pub fock_history: Vec<RealMatrix>,
    /// DIIS error history, parallel to `fock_history`.
    pub error_history: Vec<RealMatrix>,
}

/// Outcome of a budget-aware SCF run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScfRun {
    /// The loop converged to a solution.
    Converged(ScfResult),
    /// The budget expired first; resume later from the checkpoint.
    Interrupted(Box<ScfCheckpoint>),
}

/// Runs restricted Hartree-Fock for `num_electrons` electrons.
///
/// # Errors
///
/// Returns [`ScfError`] for odd electron counts, too-small bases, or
/// non-convergence.
pub fn restricted_hartree_fock(
    ints: &AoIntegrals,
    num_electrons: usize,
    options: ScfOptions,
) -> Result<ScfResult, ScfError> {
    match restricted_hartree_fock_resumable(
        ints,
        num_electrons,
        options,
        None,
        &par::Budget::unlimited(),
    )? {
        ScfRun::Converged(result) => Ok(result),
        ScfRun::Interrupted(_) => unreachable!("unlimited budget cannot expire"),
    }
}

/// Budget-aware, resumable restricted Hartree-Fock.
///
/// Polls `budget` once per SCF iteration; on expiry the loop stops at the
/// iteration boundary and returns [`ScfRun::Interrupted`] with a
/// [`ScfCheckpoint`]. Passing that checkpoint back as `resume` continues
/// the run exactly where it stopped — an interrupted-then-resumed run
/// converges to a bit-identical [`ScfResult`] (same energy, same MO
/// coefficients) as an uninterrupted one, at any thread count.
///
/// `options` must be the same across segments; the iteration cap counts
/// total iterations across all segments.
///
/// # Errors
///
/// Returns [`ScfError`] for odd electron counts, too-small bases,
/// non-convergence, or a non-finite energy.
pub fn restricted_hartree_fock_resumable(
    ints: &AoIntegrals,
    num_electrons: usize,
    options: ScfOptions,
    resume: Option<ScfCheckpoint>,
    budget: &par::Budget,
) -> Result<ScfRun, ScfError> {
    if !num_electrons.is_multiple_of(2) {
        return Err(ScfError::OddElectronCount(num_electrons));
    }
    let mut scf_span = obs::span("chem.scf");
    scf_span.record("electrons", num_electrons);
    scf_span.record("max_iter", options.max_iter);
    let n = ints.overlap.rows();
    let nocc = num_electrons / 2;
    if nocc > n {
        return Err(ScfError::BasisTooSmall {
            occupied: nocc,
            basis: n,
        });
    }

    // Symmetric orthogonalization X = S^{-1/2}.
    let s_eig = jacobi_eigen(&ints.overlap);
    let x = {
        let u = &s_eig.vectors;
        RealMatrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| u[(i, k)] / s_eig.values[k].sqrt() * u[(j, k)])
                .sum()
        })
    };

    let h = &ints.core_hamiltonian;
    let (
        start_iteration,
        mut fock,
        mut energy,
        mut last_delta_e,
        mut fock_history,
        mut error_history,
    ) = match resume {
        Some(ckpt) => {
            scf_span.record("resumed_from", ckpt.next_iteration);
            (
                ckpt.next_iteration,
                ckpt.fock,
                ckpt.energy,
                ckpt.last_delta_e,
                ckpt.fock_history,
                ckpt.error_history,
            )
        }
        None => (1, h.clone(), 0.0, f64::NAN, Vec::new(), Vec::new()),
    };
    #[allow(unused_assignments)]
    let mut density = RealMatrix::zeros(n, n);
    // Damping/level-shift take precedence over DIIS: they are the stable,
    // slow ladder used on retries after divergence.
    let use_ladder = options.damping != 0.0 || options.level_shift != 0.0;

    for it in start_iteration..=options.max_iter {
        if !budget.tick() {
            scf_span.record("interrupted_at", it);
            obs::event!("chem.scf.interrupted", iteration = it);
            return Ok(ScfRun::Interrupted(Box::new(ScfCheckpoint {
                next_iteration: it,
                energy,
                last_delta_e,
                fock,
                fock_history,
                error_history,
            })));
        }
        // Orthogonalize, diagonalize, back-transform.
        let f_ortho = x.mul(&fock).mul(&x);
        let f_eig = jacobi_eigen(&f_ortho);
        let c = x.mul(&f_eig.vectors);

        // Closed-shell density D = 2 C_occ C_occᵀ.
        density = RealMatrix::from_fn(n, n, |mu, nu| {
            2.0 * (0..nocc).map(|i| c[(mu, i)] * c[(nu, i)]).sum::<f64>()
        });

        // New Fock matrix F = h + G(D).
        let mut g = RealMatrix::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut acc = 0.0;
                for la in 0..n {
                    for si in 0..n {
                        acc += density[(la, si)]
                            * (ints.eri.get(mu, nu, la, si) - 0.5 * ints.eri.get(mu, si, la, nu));
                    }
                }
                g[(mu, nu)] = acc;
            }
        }
        let new_fock = h + &g;

        // Electronic energy E = ½ Σ D (h + F).
        let mut e_elec = 0.0;
        for mu in 0..n {
            for nu in 0..n {
                e_elec += 0.5 * density[(mu, nu)] * (h[(mu, nu)] + new_fock[(mu, nu)]);
            }
        }

        // DIIS error e = X(FDS − SDF)X.
        let fds = new_fock.mul(&density).mul(&ints.overlap);
        let sdf = ints.overlap.mul(&density).mul(&new_fock);
        let err = x.mul(&(&fds - &sdf)).mul(&x);
        let err_norm = err.frobenius_norm();
        if !e_elec.is_finite() || !err_norm.is_finite() {
            scf_span.record("iterations", it);
            scf_span.record("converged", false);
            scf_span.record("non_finite", true);
            return Err(ScfError::NonFiniteEnergy {
                iteration: it,
                energy: e_elec,
            });
        }
        let delta_e = (e_elec - energy).abs();
        energy = e_elec;
        last_delta_e = delta_e;

        obs::event!(
            "chem.scf.iter",
            iter = it,
            energy = e_elec,
            delta_e = delta_e,
            diis_error = err_norm
        );
        obs::histogram_record("chem.scf.diis_error", err_norm);

        if delta_e < options.energy_tol && err_norm < options.error_tol {
            // Recompute final orbitals from the converged Fock matrix.
            let f_ortho = x.mul(&new_fock).mul(&x);
            let f_eig = jacobi_eigen(&f_ortho);
            let c = x.mul(&f_eig.vectors);
            scf_span.record("iterations", it);
            scf_span.record("converged", true);
            scf_span.record("electronic_energy", energy);
            scf_span.record("total_energy", energy + ints.nuclear_repulsion);
            obs::counter_add("chem.scf.iterations", it as u64);
            return Ok(ScfRun::Converged(ScfResult {
                total_energy: energy + ints.nuclear_repulsion,
                electronic_energy: energy,
                mo_coefficients: c,
                orbital_energies: f_eig.values,
                num_occupied: nocc,
                iterations: it,
            }));
        }

        fock = if use_ladder {
            // Damping: mix the fresh Fock with the one used this iteration.
            let alpha = options.damping;
            let mut next = if alpha != 0.0 {
                RealMatrix::from_fn(n, n, |i, j| {
                    (1.0 - alpha) * new_fock[(i, j)] + alpha * fock[(i, j)]
                })
            } else {
                new_fock
            };
            // Level shift: F += λ(S − ½·S·D·S) raises virtual orbital
            // energies by λ while leaving the occupied space untouched.
            if options.level_shift != 0.0 {
                let sds = ints.overlap.mul(&density).mul(&ints.overlap);
                let lam = options.level_shift;
                next = RealMatrix::from_fn(n, n, |i, j| {
                    next[(i, j)] + lam * (ints.overlap[(i, j)] - 0.5 * sds[(i, j)])
                });
            }
            next
        } else {
            // DIIS extrapolation.
            fock_history.push(new_fock.clone());
            error_history.push(err);
            if fock_history.len() > options.diis_depth {
                fock_history.remove(0);
                error_history.remove(0);
            }
            if fock_history.len() >= 2 {
                diis_extrapolate(&fock_history, &error_history).unwrap_or(new_fock)
            } else {
                new_fock
            }
        };
    }

    scf_span.record("iterations", options.max_iter);
    scf_span.record("converged", false);
    obs::counter_add("chem.scf.iterations", options.max_iter as u64);
    Err(ScfError::NotConverged {
        iterations: options.max_iter,
        delta_e: last_delta_e,
    })
}

/// Solves the DIIS least-squares problem and returns the extrapolated Fock
/// matrix, or `None` if the system is singular.
fn diis_extrapolate(focks: &[RealMatrix], errors: &[RealMatrix]) -> Option<RealMatrix> {
    let m = focks.len();
    // B_ij = ⟨e_i, e_j⟩ bordered with -1 row/col (Pulay).
    let mut b = RealMatrix::zeros(m + 1, m + 1);
    for i in 0..m {
        for j in 0..m {
            let dot: f64 = errors[i]
                .as_slice()
                .iter()
                .zip(errors[j].as_slice())
                .map(|(a, c)| a * c)
                .sum();
            b[(i, j)] = dot;
        }
        b[(i, m)] = -1.0;
        b[(m, i)] = -1.0;
    }
    let mut rhs = vec![0.0; m + 1];
    rhs[m] = -1.0;
    let coeffs = lu_solve(&b, &rhs).ok()?;

    let n = focks[0].rows();
    let mut out = RealMatrix::zeros(n, n);
    for (k, f) in focks.iter().enumerate() {
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] += coeffs[k] * f[(i, j)];
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::build_basis;
    use crate::geometry::shapes::{bent_xh2, diatomic};
    use crate::integrals::compute_ao_integrals;
    use crate::{Element, ANGSTROM_TO_BOHR};

    fn run(molecule: &crate::Molecule) -> ScfResult {
        let basis = build_basis(molecule);
        let ints = compute_ao_integrals(molecule, &basis);
        restricted_hartree_fock(&ints, molecule.num_electrons(), ScfOptions::default()).unwrap()
    }

    #[test]
    fn h2_energy_matches_szabo_ostlund() {
        // E(HF/STO-3G) at R = 1.4 Bohr: −1.1167 Hartree.
        let m = diatomic(Element::H, Element::H, 1.4 / ANGSTROM_TO_BOHR);
        let r = run(&m);
        assert!(
            (r.total_energy + 1.1167).abs() < 2e-3,
            "E = {}",
            r.total_energy
        );
        assert_eq!(r.num_occupied, 1);
    }

    #[test]
    fn h2o_energy_near_literature() {
        // HF/STO-3G water ≈ −74.96 Hartree near equilibrium.
        let m = bent_xh2(Element::O, 0.96, 104.5);
        let r = run(&m);
        assert!(
            (r.total_energy + 74.96).abs() < 0.05,
            "E = {}",
            r.total_energy
        );
        assert_eq!(r.num_occupied, 5);
    }

    #[test]
    fn lih_energy_near_literature() {
        // HF/STO-3G LiH ≈ −7.86 Hartree near equilibrium.
        let m = diatomic(Element::Li, Element::H, 1.60);
        let r = run(&m);
        assert!(
            (r.total_energy + 7.86).abs() < 0.02,
            "E = {}",
            r.total_energy
        );
    }

    #[test]
    fn orbital_energies_sorted_and_aufbau() {
        let m = bent_xh2(Element::O, 0.96, 104.5);
        let r = run(&m);
        for w in r.orbital_energies.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Occupied orbitals must be below the LUMO.
        assert!(r.orbital_energies[r.num_occupied - 1] < r.orbital_energies[r.num_occupied]);
    }

    #[test]
    fn mo_coefficients_are_s_orthonormal() {
        let m = diatomic(Element::Li, Element::H, 1.6);
        let basis = build_basis(&m);
        let ints = compute_ao_integrals(&m, &basis);
        let r = restricted_hartree_fock(&ints, 4, ScfOptions::default()).unwrap();
        let ctsc = r
            .mo_coefficients
            .transpose()
            .mul(&ints.overlap)
            .mul(&r.mo_coefficients);
        assert!(ctsc.max_abs_diff(&RealMatrix::identity(basis.len())) < 1e-8);
    }

    #[test]
    fn odd_electron_count_is_rejected() {
        let m = diatomic(Element::H, Element::H, 0.74);
        let basis = build_basis(&m);
        let ints = compute_ao_integrals(&m, &basis);
        assert!(matches!(
            restricted_hartree_fock(&ints, 3, ScfOptions::default()),
            Err(ScfError::OddElectronCount(3))
        ));
    }

    #[test]
    fn interrupted_and_resumed_scf_is_bit_identical() {
        let m = bent_xh2(Element::O, 0.96, 104.5);
        let basis = build_basis(&m);
        let ints = compute_ao_integrals(&m, &basis);
        let uninterrupted =
            restricted_hartree_fock(&ints, m.num_electrons(), ScfOptions::default()).unwrap();

        for interrupt_after in [1u64, 3, 7] {
            let budget = par::Budget::max_ticks(interrupt_after);
            let first = restricted_hartree_fock_resumable(
                &ints,
                m.num_electrons(),
                ScfOptions::default(),
                None,
                &budget,
            )
            .unwrap();
            let ScfRun::Interrupted(ckpt) = first else {
                panic!("tight budget must interrupt");
            };
            assert_eq!(ckpt.next_iteration as u64, interrupt_after + 1);
            let resumed = restricted_hartree_fock_resumable(
                &ints,
                m.num_electrons(),
                ScfOptions::default(),
                Some(*ckpt),
                &par::Budget::unlimited(),
            )
            .unwrap();
            let ScfRun::Converged(result) = resumed else {
                panic!("resumed run must converge");
            };
            // PartialEq compares every f64 exactly: energy, orbitals, MOs.
            assert_eq!(result, uninterrupted, "after {interrupt_after} iters");
        }
    }

    #[test]
    fn scf_survives_many_tiny_resume_segments() {
        let m = diatomic(Element::Li, Element::H, 1.60);
        let basis = build_basis(&m);
        let ints = compute_ao_integrals(&m, &basis);
        let uninterrupted = restricted_hartree_fock(&ints, 4, ScfOptions::default()).unwrap();

        let mut checkpoint: Option<ScfCheckpoint> = None;
        let mut segments = 0usize;
        let result = loop {
            segments += 1;
            assert!(segments < 300, "resume loop must terminate");
            let budget = par::Budget::max_ticks(2);
            match restricted_hartree_fock_resumable(
                &ints,
                4,
                ScfOptions::default(),
                checkpoint.take(),
                &budget,
            )
            .unwrap()
            {
                ScfRun::Converged(r) => break r,
                ScfRun::Interrupted(c) => checkpoint = Some(*c),
            }
        };
        assert!(
            segments > 1,
            "2-iteration segments must interrupt at least once"
        );
        assert_eq!(result, uninterrupted);
    }

    #[test]
    fn exhausted_budget_interrupts_before_the_first_iteration() {
        let m = diatomic(Element::H, Element::H, 0.74);
        let basis = build_basis(&m);
        let ints = compute_ao_integrals(&m, &basis);
        let run = restricted_hartree_fock_resumable(
            &ints,
            2,
            ScfOptions::default(),
            None,
            &par::Budget::max_ticks(0),
        )
        .unwrap();
        let ScfRun::Interrupted(ckpt) = run else {
            panic!("zero budget must interrupt immediately");
        };
        assert_eq!(ckpt.next_iteration, 1);
        assert!(ckpt.last_delta_e.is_nan());
    }

    #[test]
    fn energy_is_variational_in_bond_length() {
        // HF energy curve of H2 must have a minimum near 0.73 Å.
        let energies: Vec<f64> = [0.5, 0.7, 0.9]
            .iter()
            .map(|&d| run(&diatomic(Element::H, Element::H, d)).total_energy)
            .collect();
        assert!(energies[1] < energies[0]);
        assert!(energies[1] < energies[2]);
    }
}
