//! The paper's nine benchmark molecules (Table I).
//!
//! Each benchmark fixes a geometry family (parameterized by the scanned bond
//! length) and an active space chosen so the qubit counts match the paper's
//! Table I exactly: frozen chemical cores, plus the two documented orbital
//! reductions (LiH drops its two degenerate π virtuals, NaH its highest
//! virtual — the same reductions used by the Qiskit chemistry stack the
//! paper built on).

use crate::element::Element;
use crate::geometry::{shapes, Molecule};
use crate::hamiltonian::{ChemError, MolecularSystem};
use crate::mo::ActiveSpace;

/// One of the paper's benchmark molecules.
///
/// # Examples
///
/// ```no_run
/// use chem::Benchmark;
///
/// let sys = Benchmark::LiH.build(1.6)?;
/// assert_eq!(sys.num_qubits(), 6);
/// # Ok::<(), chem::ChemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Hydrogen, 4 qubits.
    H2,
    /// Lithium hydride, 6 qubits.
    LiH,
    /// Sodium hydride, 8 qubits.
    NaH,
    /// Hydrogen fluoride, 10 qubits.
    HF,
    /// Beryllium hydride, 12 qubits.
    BeH2,
    /// Water, 12 qubits.
    H2O,
    /// Borane, 14 qubits.
    BH3,
    /// Ammonia, 14 qubits.
    NH3,
    /// Methane, 16 qubits.
    CH4,
}

impl Benchmark {
    /// All nine benchmarks in Table I order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::H2,
        Benchmark::LiH,
        Benchmark::NaH,
        Benchmark::HF,
        Benchmark::BeH2,
        Benchmark::H2O,
        Benchmark::BH3,
        Benchmark::NH3,
        Benchmark::CH4,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::H2 => "H2",
            Benchmark::LiH => "LiH",
            Benchmark::NaH => "NaH",
            Benchmark::HF => "HF",
            Benchmark::BeH2 => "BeH2",
            Benchmark::H2O => "H2O",
            Benchmark::BH3 => "BH3",
            Benchmark::NH3 => "NH3",
            Benchmark::CH4 => "CH4",
        }
    }

    /// Geometry at the given varied bond length (Angstrom).
    pub fn molecule(self, bond_length: f64) -> Molecule {
        match self {
            Benchmark::H2 => shapes::diatomic(Element::H, Element::H, bond_length),
            Benchmark::LiH => shapes::diatomic(Element::Li, Element::H, bond_length),
            Benchmark::NaH => shapes::diatomic(Element::Na, Element::H, bond_length),
            Benchmark::HF => shapes::diatomic(Element::F, Element::H, bond_length),
            Benchmark::BeH2 => shapes::linear_xh2(Element::Be, bond_length),
            Benchmark::H2O => shapes::bent_xh2(Element::O, bond_length, 104.5),
            Benchmark::BH3 => shapes::planar_xh3(Element::B, bond_length),
            Benchmark::NH3 => shapes::pyramidal_xh3(Element::N, bond_length, 107.0),
            Benchmark::CH4 => shapes::tetrahedral_xh4(Element::C, bond_length),
        }
    }

    /// Equilibrium (experimental) bond length in Angstrom, the default
    /// evaluation point.
    pub fn equilibrium_bond_length(self) -> f64 {
        match self {
            Benchmark::H2 => 0.74,
            Benchmark::LiH => 1.60,
            Benchmark::NaH => 1.89,
            Benchmark::HF => 0.92,
            Benchmark::BeH2 => 1.33,
            Benchmark::H2O => 0.96,
            Benchmark::BH3 => 1.19,
            Benchmark::NH3 => 1.01,
            Benchmark::CH4 => 1.09,
        }
    }

    /// The bond-length scan used in the paper's Fig 9-style sweeps
    /// (Angstrom, 0.1 Å steps around equilibrium).
    pub fn bond_length_scan(self) -> Vec<f64> {
        let eq = self.equilibrium_bond_length();
        let lo = (eq - 0.3).max(0.3);
        (0..7).map(|k| lo + 0.1 * k as f64).collect()
    }

    /// The number of molecular orbitals in the STO-3G basis.
    pub fn num_molecular_orbitals(self) -> usize {
        match self {
            Benchmark::H2 => 2,
            Benchmark::LiH => 6,
            Benchmark::NaH => 10,
            Benchmark::HF => 6,
            Benchmark::BeH2 => 7,
            Benchmark::H2O => 7,
            Benchmark::BH3 => 8,
            Benchmark::NH3 => 8,
            Benchmark::CH4 => 9,
        }
    }

    /// The active space reproducing the paper's Table I qubit counts.
    pub fn active_space(self) -> ActiveSpace {
        let n_mo = self.num_molecular_orbitals();
        match self {
            // LiH: freeze Li 1s; drop the two degenerate 2pπ virtuals.
            Benchmark::LiH => ActiveSpace::new(n_mo, vec![0], vec![3, 4]),
            // NaH: freeze the Na 1s2s2p core; drop the highest virtual.
            Benchmark::NaH => ActiveSpace::new(n_mo, vec![0, 1, 2, 3, 4], vec![9]),
            // Everything else: freeze the chemical core only.
            _ => {
                let frozen: Vec<usize> = (0..self
                    .molecule(self.equilibrium_bond_length())
                    .core_orbital_count())
                    .collect();
                ActiveSpace::new(n_mo, frozen, vec![])
            }
        }
    }

    /// Expected qubit count (Table I column 2).
    pub fn expected_qubits(self) -> usize {
        match self {
            Benchmark::H2 => 4,
            Benchmark::LiH => 6,
            Benchmark::NaH => 8,
            Benchmark::HF => 10,
            Benchmark::BeH2 | Benchmark::H2O => 12,
            Benchmark::BH3 | Benchmark::NH3 => 14,
            Benchmark::CH4 => 16,
        }
    }

    /// Expected UCCSD parameter count (Table I column 4).
    pub fn expected_parameters(self) -> usize {
        match self {
            Benchmark::H2 => 3,
            Benchmark::LiH => 8,
            Benchmark::NaH => 15,
            Benchmark::HF => 24,
            Benchmark::BeH2 | Benchmark::H2O => 92,
            Benchmark::BH3 | Benchmark::NH3 => 204,
            Benchmark::CH4 => 360,
        }
    }

    /// Expected UCCSD Pauli-string count (Table I column 3).
    pub fn expected_pauli_strings(self) -> usize {
        match self {
            Benchmark::H2 => 12,
            Benchmark::LiH => 40,
            Benchmark::NaH => 84,
            Benchmark::HF => 144,
            Benchmark::BeH2 | Benchmark::H2O => 640,
            Benchmark::BH3 | Benchmark::NH3 => 1488,
            Benchmark::CH4 => 2688,
        }
    }

    /// Runs the electronic-structure pipeline at the given bond length.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError`] if the SCF stage fails at this geometry.
    pub fn build(self, bond_length: f64) -> Result<MolecularSystem, ChemError> {
        MolecularSystem::build(self.molecule(bond_length), self.active_space(), self.name())
    }

    /// Like [`Benchmark::build`], with explicit SCF options (used by the
    /// resilience retry ladder).
    ///
    /// # Errors
    ///
    /// Returns [`ChemError`] if the SCF stage fails at this geometry.
    pub fn build_with_scf(
        self,
        bond_length: f64,
        scf_options: crate::scf::ScfOptions,
    ) -> Result<MolecularSystem, ChemError> {
        MolecularSystem::build_with_options(
            self.molecule(bond_length),
            self.active_space(),
            self.name(),
            scf_options,
        )
    }

    /// Convenience: build at the equilibrium bond length.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError`] if the SCF stage fails.
    pub fn build_equilibrium(self) -> Result<MolecularSystem, ChemError> {
        self.build(self.equilibrium_bond_length())
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::build_basis;

    #[test]
    fn basis_sizes_match_declared_mo_counts() {
        for b in Benchmark::ALL {
            let m = b.molecule(b.equilibrium_bond_length());
            assert_eq!(
                build_basis(&m).len(),
                b.num_molecular_orbitals(),
                "{b}: basis size mismatch"
            );
        }
    }

    #[test]
    fn active_spaces_reproduce_table1_qubit_counts() {
        for b in Benchmark::ALL {
            let space = b.active_space();
            assert_eq!(2 * space.num_active(), b.expected_qubits(), "{b}");
        }
    }

    #[test]
    fn active_electron_counts_are_even_and_fit() {
        for b in Benchmark::ALL {
            let m = b.molecule(b.equilibrium_bond_length());
            let space = b.active_space();
            let ae = space.active_electrons(m.num_electrons());
            assert!(ae % 2 == 0, "{b}: odd active electrons");
            assert!(ae <= 2 * space.num_active(), "{b}: overfull active space");
            assert!(ae >= 2, "{b}: empty active space");
        }
    }

    #[test]
    fn h2_and_lih_build_end_to_end() {
        let h2 = Benchmark::H2.build_equilibrium().unwrap();
        assert_eq!(h2.num_qubits(), 4);
        let lih = Benchmark::LiH.build_equilibrium().unwrap();
        assert_eq!(lih.num_qubits(), 6);
        assert_eq!(lih.num_active_electrons(), 2);
        // LiH exact active-space energy must be below HF and near -7.88 Ha.
        let e = lih.exact_ground_state_energy();
        assert!(e < lih.hartree_fock_energy() + 1e-8);
        assert!((e + 7.88).abs() < 0.1, "LiH exact {e}");
    }
}
