//! One- and two-electron integrals over contracted Cartesian Gaussians,
//! McMurchie–Davidson scheme.
//!
//! The minimal STO-3G basis only needs s and p functions, but the recursions
//! are implemented for general angular momentum. References: Helgaker,
//! Jørgensen & Olsen, *Molecular Electronic-Structure Theory*, ch. 9; test
//! values from Szabo & Ostlund appendix tables.

use numeric::RealMatrix;

use crate::basis::BasisFunction;
use crate::boys::boys;
use crate::geometry::Molecule;

/// Hermite expansion coefficient `E_t^{ij}` for a 1D Gaussian product.
///
/// `qx = Ax − Bx`; `a`, `b` are the primitive exponents.
fn hermite_e(i: i32, j: i32, t: i32, qx: f64, a: f64, b: f64) -> f64 {
    let p = a + b;
    let q = a * b / p;
    if t < 0 || t > i + j {
        return 0.0;
    }
    if i == 0 && j == 0 && t == 0 {
        return (-q * qx * qx).exp();
    }
    if i > 0 {
        // Decrement i.
        hermite_e(i - 1, j, t - 1, qx, a, b) / (2.0 * p)
            - q * qx / a * hermite_e(i - 1, j, t, qx, a, b)
            + (t + 1) as f64 * hermite_e(i - 1, j, t + 1, qx, a, b)
    } else {
        // Decrement j.
        hermite_e(i, j - 1, t - 1, qx, a, b) / (2.0 * p)
            + q * qx / b * hermite_e(i, j - 1, t, qx, a, b)
            + (t + 1) as f64 * hermite_e(i, j - 1, t + 1, qx, a, b)
    }
}

/// Hermite Coulomb integral `R^0_{tuv}(p, PC)` by downward recursion on the
/// Boys order.
fn hermite_coulomb(t: i32, u: i32, v: i32, n: usize, p: f64, pc: [f64; 3], fb: &[f64]) -> f64 {
    if t < 0 || u < 0 || v < 0 {
        return 0.0;
    }
    if t == 0 && u == 0 && v == 0 {
        return (-2.0 * p).powi(n as i32) * fb[n];
    }
    if t > 0 {
        (t - 1) as f64 * hermite_coulomb(t - 2, u, v, n + 1, p, pc, fb)
            + pc[0] * hermite_coulomb(t - 1, u, v, n + 1, p, pc, fb)
    } else if u > 0 {
        (u - 1) as f64 * hermite_coulomb(t, u - 2, v, n + 1, p, pc, fb)
            + pc[1] * hermite_coulomb(t, u - 1, v, n + 1, p, pc, fb)
    } else {
        (v - 1) as f64 * hermite_coulomb(t, u, v - 2, n + 1, p, pc, fb)
            + pc[2] * hermite_coulomb(t, u, v - 1, n + 1, p, pc, fb)
    }
}

fn dist_sq(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Overlap of two primitive Gaussians (unnormalized, unit coefficients).
fn overlap_prim(a: f64, la: [u32; 3], ra: [f64; 3], b: f64, lb: [u32; 3], rb: [f64; 3]) -> f64 {
    let p = a + b;
    let mut s = (std::f64::consts::PI / p).powf(1.5);
    for d in 0..3 {
        s *= hermite_e(la[d] as i32, lb[d] as i32, 0, ra[d] - rb[d], a, b);
    }
    s
}

/// Kinetic-energy integral of two primitives.
fn kinetic_prim(a: f64, la: [u32; 3], ra: [f64; 3], b: f64, lb: [u32; 3], rb: [f64; 3]) -> f64 {
    // 1D overlap factors s(i, j) per dimension, with shifted j.
    let sd = |d: usize, di: i32, dj: i32| -> f64 {
        let i = la[d] as i32 + di;
        let j = lb[d] as i32 + dj;
        if i < 0 || j < 0 {
            0.0
        } else {
            hermite_e(i, j, 0, ra[d] - rb[d], a, b)
        }
    };
    let t1d = |d: usize| -> f64 {
        let j = lb[d] as f64;
        -2.0 * b * b * sd(d, 0, 2) + b * (2.0 * j + 1.0) * sd(d, 0, 0)
            - 0.5 * j * (j - 1.0) * sd(d, 0, -2)
    };
    let p = a + b;
    let pref = (std::f64::consts::PI / p).powf(1.5);
    let (sx, sy, sz) = (sd(0, 0, 0), sd(1, 0, 0), sd(2, 0, 0));
    pref * (t1d(0) * sy * sz + sx * t1d(1) * sz + sx * sy * t1d(2))
}

/// Nuclear-attraction integral of two primitives with a nucleus at `rc`
/// (charge +1; multiply by −Z externally).
fn nuclear_prim(
    a: f64,
    la: [u32; 3],
    ra: [f64; 3],
    b: f64,
    lb: [u32; 3],
    rb: [f64; 3],
    rc: [f64; 3],
) -> f64 {
    let p = a + b;
    let rp = [
        (a * ra[0] + b * rb[0]) / p,
        (a * ra[1] + b * rb[1]) / p,
        (a * ra[2] + b * rb[2]) / p,
    ];
    let pc = [rp[0] - rc[0], rp[1] - rc[1], rp[2] - rc[2]];
    let l_total = (la.iter().sum::<u32>() + lb.iter().sum::<u32>()) as usize;
    let fb = boys(l_total, p * dist_sq(rp, rc));

    let mut acc = 0.0;
    for t in 0..=(la[0] + lb[0]) as i32 {
        for u in 0..=(la[1] + lb[1]) as i32 {
            for v in 0..=(la[2] + lb[2]) as i32 {
                let e = hermite_e(la[0] as i32, lb[0] as i32, t, ra[0] - rb[0], a, b)
                    * hermite_e(la[1] as i32, lb[1] as i32, u, ra[1] - rb[1], a, b)
                    * hermite_e(la[2] as i32, lb[2] as i32, v, ra[2] - rb[2], a, b);
                acc += e * hermite_coulomb(t, u, v, 0, p, pc, &fb);
            }
        }
    }
    2.0 * std::f64::consts::PI / p * acc
}

/// Electron-repulsion integral `(ab|cd)` of four primitives (chemist
/// notation).
#[allow(clippy::too_many_arguments)]
fn eri_prim(
    a: f64,
    la: [u32; 3],
    ra: [f64; 3],
    b: f64,
    lb: [u32; 3],
    rb: [f64; 3],
    c: f64,
    lc: [u32; 3],
    rc: [f64; 3],
    d: f64,
    ld: [u32; 3],
    rd: [f64; 3],
) -> f64 {
    let p = a + b;
    let q = c + d;
    let alpha = p * q / (p + q);
    let rp = [
        (a * ra[0] + b * rb[0]) / p,
        (a * ra[1] + b * rb[1]) / p,
        (a * ra[2] + b * rb[2]) / p,
    ];
    let rq = [
        (c * rc[0] + d * rd[0]) / q,
        (c * rc[1] + d * rd[1]) / q,
        (c * rc[2] + d * rd[2]) / q,
    ];
    let pq = [rp[0] - rq[0], rp[1] - rq[1], rp[2] - rq[2]];
    let l_total = (la.iter().sum::<u32>()
        + lb.iter().sum::<u32>()
        + lc.iter().sum::<u32>()
        + ld.iter().sum::<u32>()) as usize;
    let fb = boys(l_total, alpha * dist_sq(rp, rq));

    let e1 = |d_: usize, t: i32| hermite_e(la[d_] as i32, lb[d_] as i32, t, ra[d_] - rb[d_], a, b);
    let e2 = |d_: usize, t: i32| hermite_e(lc[d_] as i32, ld[d_] as i32, t, rc[d_] - rd[d_], c, d);

    let mut acc = 0.0;
    for t in 0..=(la[0] + lb[0]) as i32 {
        for u in 0..=(la[1] + lb[1]) as i32 {
            for v in 0..=(la[2] + lb[2]) as i32 {
                let eab = e1(0, t) * e1(1, u) * e1(2, v);
                if eab == 0.0 {
                    continue;
                }
                for tau in 0..=(lc[0] + ld[0]) as i32 {
                    for nu in 0..=(lc[1] + ld[1]) as i32 {
                        for phi in 0..=(lc[2] + ld[2]) as i32 {
                            let ecd = e2(0, tau) * e2(1, nu) * e2(2, phi);
                            if ecd == 0.0 {
                                continue;
                            }
                            let sign = if (tau + nu + phi) % 2 == 0 { 1.0 } else { -1.0 };
                            acc += eab
                                * ecd
                                * sign
                                * hermite_coulomb(t + tau, u + nu, v + phi, 0, alpha, pq, &fb);
                        }
                    }
                }
            }
        }
    }
    2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt()) * acc
}

// ---------------------------------------------------------------------------
// Contracted wrappers.
// ---------------------------------------------------------------------------

fn contract2(fa: &BasisFunction, fb: &BasisFunction, f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut acc = 0.0;
    for pa in &fa.primitives {
        for pb in &fb.primitives {
            acc += pa.coefficient * pb.coefficient * f(pa.exponent, pb.exponent);
        }
    }
    acc
}

/// Overlap integral `⟨a|b⟩` of two contracted functions.
pub fn overlap(fa: &BasisFunction, fb: &BasisFunction) -> f64 {
    contract2(fa, fb, |a, b| {
        overlap_prim(a, fa.angmom, fa.center, b, fb.angmom, fb.center)
    })
}

/// Kinetic-energy integral `⟨a|−∇²/2|b⟩`.
pub fn kinetic(fa: &BasisFunction, fb: &BasisFunction) -> f64 {
    contract2(fa, fb, |a, b| {
        kinetic_prim(a, fa.angmom, fa.center, b, fb.angmom, fb.center)
    })
}

/// Nuclear-attraction integral `⟨a|Σ_C −Z_C/r_C|b⟩` over all nuclei.
pub fn nuclear(fa: &BasisFunction, fb: &BasisFunction, molecule: &Molecule) -> f64 {
    let mut acc = 0.0;
    for atom in molecule.atoms() {
        let z = atom.element.atomic_number() as f64;
        acc -= z * contract2(fa, fb, |a, b| {
            nuclear_prim(
                a,
                fa.angmom,
                fa.center,
                b,
                fb.angmom,
                fb.center,
                atom.position,
            )
        });
    }
    acc
}

/// Dipole-moment integral `⟨a| r̂_axis |b⟩` about the origin
/// (`axis ∈ {0, 1, 2}` for x, y, z).
///
/// Uses the Hermite moment relation `∫ x·Λ(x) dx = (E₁ + P_x·E₀)·√(π/p)`.
///
/// # Panics
///
/// Panics if `axis > 2`.
pub fn dipole(fa: &BasisFunction, fb: &BasisFunction, axis: usize) -> f64 {
    assert!(axis <= 2, "axis must be 0, 1, or 2");
    contract2(fa, fb, |a, b| {
        let p = a + b;
        let pref = (std::f64::consts::PI / p).powf(1.5);
        let mut v = pref;
        for d in 0..3 {
            let (i, j) = (fa.angmom[d] as i32, fb.angmom[d] as i32);
            let qx = fa.center[d] - fb.center[d];
            if d == axis {
                let p_center = (a * fa.center[d] + b * fb.center[d]) / p;
                v *= hermite_e(i, j, 1, qx, a, b) + p_center * hermite_e(i, j, 0, qx, a, b);
            } else {
                v *= hermite_e(i, j, 0, qx, a, b);
            }
        }
        v
    })
}

/// Electron-repulsion integral `(ab|cd)` in chemist notation.
pub fn eri(fa: &BasisFunction, fb: &BasisFunction, fc: &BasisFunction, fd: &BasisFunction) -> f64 {
    let mut acc = 0.0;
    for pa in &fa.primitives {
        for pb in &fb.primitives {
            for pc in &fc.primitives {
                for pd in &fd.primitives {
                    acc += pa.coefficient
                        * pb.coefficient
                        * pc.coefficient
                        * pd.coefficient
                        * eri_prim(
                            pa.exponent,
                            fa.angmom,
                            fa.center, //
                            pb.exponent,
                            fb.angmom,
                            fb.center, //
                            pc.exponent,
                            fc.angmom,
                            fc.center, //
                            pd.exponent,
                            fd.angmom,
                            fd.center,
                        );
                }
            }
        }
    }
    acc
}

/// The dense two-electron integral tensor `(pq|rs)` with 8-fold symmetry.
#[derive(Debug, Clone, PartialEq)]
pub struct EriTensor {
    n: usize,
    data: Vec<f64>,
}

impl EriTensor {
    /// Number of basis functions per index.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The integral `(pq|rs)` (chemist notation).
    #[inline]
    pub fn get(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.data[((p * self.n + q) * self.n + r) * self.n + s]
    }

    fn set_sym(&mut self, p: usize, q: usize, r: usize, s: usize, v: f64) {
        let n = self.n;
        let mut put = |a: usize, b: usize, c: usize, d: usize| {
            self.data[((a * n + b) * n + c) * n + d] = v;
        };
        put(p, q, r, s);
        put(q, p, r, s);
        put(p, q, s, r);
        put(q, p, s, r);
        put(r, s, p, q);
        put(s, r, p, q);
        put(r, s, q, p);
        put(s, r, q, p);
    }

    /// Builds a tensor by evaluating `f(p,q,r,s)` on the canonical octant
    /// and mirroring. Exposed for the MO transform.
    ///
    /// The canonical quadruples are enumerated up front and `f` — the
    /// expensive part, a primitive-quartet contraction or MO contraction —
    /// is evaluated in parallel; the 8-fold mirroring stays serial. Each
    /// canonical value lands in exactly the same slot regardless of thread
    /// count, so the tensor is bit-identical to a serial build.
    ///
    /// # Panics
    ///
    /// Panics if the `n⁴` element count overflows `usize`.
    pub fn from_fn_symmetric(
        n: usize,
        f: impl Fn(usize, usize, usize, usize) -> f64 + Sync,
    ) -> Self {
        let len = n
            .checked_mul(n)
            .and_then(|m| m.checked_mul(n))
            .and_then(|m| m.checked_mul(n));
        let len = match len {
            Some(len) => len,
            None => panic!("ERI tensor with {n}^4 elements overflows usize on this platform"),
        };
        let mut t = EriTensor {
            n,
            data: vec![0.0; len],
        };
        let mut quads = Vec::new();
        for p in 0..n {
            for q in 0..=p {
                for r in 0..=p {
                    let s_max = if r == p { q } else { r };
                    for s in 0..=s_max {
                        quads.push((p, q, r, s));
                    }
                }
            }
        }
        // One parallel task per quadruple made the build ~10% slower than
        // serial at a thread budget of 1 (per-task queue traffic and
        // closure dispatch dominate a cheap contraction). Batch quadruples
        // into fixed-size runs so dispatch amortizes over QUAD_BATCH
        // evaluations; batches are enumerated and flattened in canonical
        // order, so the tensor stays bit-identical at every thread count.
        const QUAD_BATCH: usize = 64;
        let n_batches = quads.len().div_ceil(QUAD_BATCH);
        let batches = par::map_indexed(n_batches, |b| {
            let lo = b * QUAD_BATCH;
            let hi = (lo + QUAD_BATCH).min(quads.len());
            quads[lo..hi]
                .iter()
                .map(|&(p, q, r, s)| f(p, q, r, s))
                .collect::<Vec<f64>>()
        });
        for (&(p, q, r, s), v) in quads.iter().zip(batches.into_iter().flatten()) {
            t.set_sym(p, q, r, s, v);
        }
        t
    }
}

/// All AO integrals needed by the SCF procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct AoIntegrals {
    /// Overlap matrix `S`.
    pub overlap: RealMatrix,
    /// Core Hamiltonian `h = T + V`.
    pub core_hamiltonian: RealMatrix,
    /// Two-electron tensor `(pq|rs)`.
    pub eri: EriTensor,
    /// Nuclear repulsion energy.
    pub nuclear_repulsion: f64,
}

/// Computes every AO integral for a molecule in the given basis.
pub fn compute_ao_integrals(molecule: &Molecule, basis: &[BasisFunction]) -> AoIntegrals {
    let n = basis.len();
    let s = RealMatrix::from_fn(n, n, |i, j| overlap(&basis[i], &basis[j]));
    let t = RealMatrix::from_fn(n, n, |i, j| kinetic(&basis[i], &basis[j]));
    let v = RealMatrix::from_fn(n, n, |i, j| nuclear(&basis[i], &basis[j], molecule));
    let h = &t + &v;
    let eri_t = EriTensor::from_fn_symmetric(n, |p, q, r, s| {
        eri(&basis[p], &basis[q], &basis[r], &basis[s])
    });
    AoIntegrals {
        overlap: s,
        core_hamiltonian: h,
        eri: eri_t,
        nuclear_repulsion: molecule.nuclear_repulsion(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::build_basis;
    use crate::geometry::shapes::diatomic;
    use crate::{Element, ANGSTROM_TO_BOHR};

    /// H2 with R = 1.4 Bohr — the Szabo–Ostlund reference system.
    fn h2_szabo() -> (Molecule, Vec<BasisFunction>) {
        let d_ang = 1.4 / ANGSTROM_TO_BOHR;
        let m = diatomic(Element::H, Element::H, d_ang);
        let b = build_basis(&m);
        (m, b)
    }

    #[test]
    fn h2_overlap_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        assert!((overlap(&b[0], &b[0]) - 1.0).abs() < 1e-10);
        // S12 = 0.6593 (Szabo & Ostlund table 3.5).
        assert!((overlap(&b[0], &b[1]) - 0.6593).abs() < 5e-4);
    }

    #[test]
    fn h2_kinetic_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        // T11 = 0.7600, T12 = 0.2365.
        assert!((kinetic(&b[0], &b[0]) - 0.7600).abs() < 5e-4);
        assert!((kinetic(&b[0], &b[1]) - 0.2365).abs() < 5e-4);
    }

    #[test]
    fn h2_nuclear_matches_szabo_ostlund() {
        let (m, b) = h2_szabo();
        // V11 (both nuclei) = -1.2266 + -0.6538 = -1.8804;
        // V12 = -0.5974·2 = -1.1948 (tables 3.5/3.6).
        assert!((nuclear(&b[0], &b[0], &m) + 1.8804).abs() < 1e-3);
        assert!((nuclear(&b[0], &b[1], &m) + 1.1948).abs() < 1e-3);
    }

    #[test]
    fn h2_eri_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        // (11|11) = 0.7746, (11|22) = 0.5697, (21|21) = 0.2970,
        // (21|11) = 0.4441 (table 3.8 values).
        assert!((eri(&b[0], &b[0], &b[0], &b[0]) - 0.7746).abs() < 1e-3);
        assert!((eri(&b[0], &b[0], &b[1], &b[1]) - 0.5697).abs() < 1e-3);
        assert!((eri(&b[1], &b[0], &b[1], &b[0]) - 0.2970).abs() < 1e-3);
        assert!((eri(&b[1], &b[0], &b[0], &b[0]) - 0.4441).abs() < 1e-3);
    }

    #[test]
    fn eri_tensor_symmetries() {
        let m = diatomic(Element::Li, Element::H, 1.6);
        let b = build_basis(&m);
        let ints = compute_ao_integrals(&m, &b);
        let n = b.len();
        // Spot-check the 8-fold symmetry on a few random-ish indices.
        for &(p, q, r, s) in &[(0, 1, 2, 3), (1, 4, 5, 2), (3, 3, 1, 0), (5, 2, 4, 4)] {
            let v = ints.eri.get(p, q, r, s);
            assert_eq!(v, ints.eri.get(q, p, r, s));
            assert_eq!(v, ints.eri.get(p, q, s, r));
            assert_eq!(v, ints.eri.get(r, s, p, q));
            assert_eq!(v, ints.eri.get(s, r, q, p));
            assert!(p < n && q < n && r < n && s < n);
        }
    }

    #[test]
    fn overlap_matrix_is_symmetric_positive_diagonal() {
        let m = diatomic(Element::Li, Element::H, 1.6);
        let b = build_basis(&m);
        let ints = compute_ao_integrals(&m, &b);
        assert!(ints.overlap.is_symmetric(1e-10));
        for i in 0..b.len() {
            assert!((ints.overlap[(i, i)] - 1.0).abs() < 1e-8, "diag {i}");
        }
    }

    #[test]
    fn p_function_overlap_vanishes_by_symmetry() {
        // For a diatomic along z, s–px overlap must vanish.
        let m = diatomic(Element::Li, Element::H, 1.6);
        let b = build_basis(&m);
        // b[2] is Li 2px, b[5] is H 1s.
        assert_eq!(b[2].angmom, [1, 0, 0]);
        assert!(overlap(&b[2], &b[5]).abs() < 1e-12);
        // s–pz overlap is nonzero.
        assert_eq!(b[4].angmom, [0, 0, 1]);
        assert!(overlap(&b[4], &b[5]).abs() > 1e-3);
    }

    #[test]
    fn kinetic_is_positive_definite_on_diagonal() {
        let m = diatomic(Element::O, Element::H, 0.96);
        let b = build_basis(&m);
        for f in &b {
            assert!(kinetic(f, f) > 0.0);
        }
    }
}
