//! The Fermi–Hubbard model — the paper's first "future direction" (§VII,
//! *More physical systems*).
//!
//! "We expect that the Pauli-string-centric principle will still be
//! applicable since the mathematics about simulating a Hamiltonian is
//! invariant." This module demonstrates exactly that: a condensed-matter
//! Hamiltonian enters the same Jordan–Wigner → Pauli-IR → compression →
//! X-Tree pipeline as the molecules, with no changes elsewhere in the
//! stack.
//!
//! `H = −t Σ_{⟨i,j⟩,σ} (a†_{iσ} a_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}
//!      − μ Σ_{i,σ} n_{iσ}`

use std::collections::HashMap;

use pauli::WeightedPauliSum;

use crate::fermion::{
    accumulate_term, hartree_fock_bitmask, into_real_sum, spin_orbital, ComplexPauliMap, LadderOp,
};

/// A Fermi–Hubbard lattice model.
///
/// Sites are numbered `0..num_sites`; `edges` lists the hopping bonds.
/// Spin orbitals use the same block ordering as the chemistry stack
/// (α sites on qubits `0..n`, β on `n..2n`), so every downstream tool —
/// UCCSD-style ansatz generation, compression, Merge-to-Root — applies
/// unchanged.
///
/// # Examples
///
/// ```
/// use chem::hubbard::HubbardModel;
///
/// // A 2-site dimer at U/t = 4, pinned to half filling with μ = U/2:
/// // the half-filled ground energy is 2 − 2√2.
/// let model = HubbardModel::chain(2, 1.0, 4.0).with_chemical_potential(2.0);
/// let shifted = model.qubit_hamiltonian().ground_state_energy();
/// let half_filled = shifted + 2.0 * 2.0; // undo −μ·N for N = 2
/// assert!((half_filled - (2.0 - 2.0 * 2f64.sqrt())).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HubbardModel {
    num_sites: usize,
    edges: Vec<(usize, usize)>,
    hopping: f64,
    interaction: f64,
    chemical_potential: f64,
}

impl HubbardModel {
    /// Builds a model on an arbitrary lattice given by its bond list.
    ///
    /// # Panics
    ///
    /// Panics if there are no sites, an edge is out of range or reflexive.
    pub fn new(
        num_sites: usize,
        edges: Vec<(usize, usize)>,
        hopping: f64,
        interaction: f64,
    ) -> Self {
        assert!(num_sites >= 1, "at least one site required");
        for &(a, b) in &edges {
            assert!(
                a < num_sites && b < num_sites,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "reflexive bond ({a},{b})");
        }
        HubbardModel {
            num_sites,
            edges,
            hopping,
            interaction,
            chemical_potential: 0.0,
        }
    }

    /// A 1D open chain of `n` sites.
    pub fn chain(n: usize, hopping: f64, interaction: f64) -> Self {
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        HubbardModel::new(n, edges, hopping, interaction)
    }

    /// A 1D ring (periodic chain) of `n ≥ 3` sites.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize, hopping: f64, interaction: f64) -> Self {
        assert!(n >= 3, "a ring needs at least 3 sites");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        HubbardModel::new(n, edges, hopping, interaction)
    }

    /// A `rows × cols` open rectangular lattice.
    pub fn lattice(rows: usize, cols: usize, hopping: f64, interaction: f64) -> Self {
        let id = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        HubbardModel::new(rows * cols, edges, hopping, interaction)
    }

    /// Sets the chemical potential `μ`.
    pub fn with_chemical_potential(mut self, mu: f64) -> Self {
        self.chemical_potential = mu;
        self
    }

    /// Number of lattice sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of qubits (2 spin orbitals per site).
    pub fn num_qubits(&self) -> usize {
        2 * self.num_sites
    }

    /// The hopping bonds.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The Jordan–Wigner qubit Hamiltonian.
    pub fn qubit_hamiltonian(&self) -> WeightedPauliSum {
        let n = self.num_qubits();
        let mut acc: ComplexPauliMap = HashMap::new();

        // Hopping: −t (a†_i a_j + a†_j a_i) per bond and spin.
        for &(i, j) in &self.edges {
            for beta in [false, true] {
                let si = spin_orbital(self.num_sites, i, beta);
                let sj = spin_orbital(self.num_sites, j, beta);
                accumulate_term(
                    &mut acc,
                    n,
                    &[LadderOp::create(si), LadderOp::annihilate(sj)],
                    -self.hopping,
                );
                accumulate_term(
                    &mut acc,
                    n,
                    &[LadderOp::create(sj), LadderOp::annihilate(si)],
                    -self.hopping,
                );
            }
        }

        // On-site interaction: U n_{i↑} n_{i↓}.
        for i in 0..self.num_sites {
            let up = spin_orbital(self.num_sites, i, false);
            let dn = spin_orbital(self.num_sites, i, true);
            accumulate_term(
                &mut acc,
                n,
                &[
                    LadderOp::create(up),
                    LadderOp::annihilate(up),
                    LadderOp::create(dn),
                    LadderOp::annihilate(dn),
                ],
                self.interaction,
            );
        }

        // Chemical potential: −μ n_{iσ}.
        if self.chemical_potential != 0.0 {
            for i in 0..self.num_sites {
                for beta in [false, true] {
                    let s = spin_orbital(self.num_sites, i, beta);
                    accumulate_term(
                        &mut acc,
                        n,
                        &[LadderOp::create(s), LadderOp::annihilate(s)],
                        -self.chemical_potential,
                    );
                }
            }
        }

        let mut h = into_real_sum(n, acc);
        h.simplify(1e-12);
        h
    }

    /// A half-filling reference determinant (closed shell: `num_sites`
    /// electrons, equal spin populations) as a basis-state bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the site count is odd (no closed-shell half filling).
    pub fn half_filling_state(&self) -> u64 {
        assert!(
            self.num_sites.is_multiple_of(2),
            "closed-shell half filling requires an even site count"
        );
        hartree_fock_bitmask(self.num_sites, self.num_sites)
    }

    /// Electron count at half filling.
    pub fn half_filling_electrons(&self) -> usize {
        self.num_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Complex64;

    #[test]
    fn dimer_ground_state_is_analytic() {
        // 2-site Hubbard at half filling: E0 = (U − √(U² + 16t²)) / 2.
        // The Lanczos solver minimizes over the whole Fock space, so pin
        // the half-filled sector with the particle-hole-symmetric chemical
        // potential μ = U/2 and shift back by μ·N.
        for (t, u) in [(1.0, 0.0), (1.0, 4.0), (0.5, 8.0), (2.0, 1.0)] {
            let model = HubbardModel::chain(2, t, u).with_chemical_potential(u / 2.0);
            let shifted = model.qubit_hamiltonian().ground_state_energy();
            let exact = shifted + u / 2.0 * 2.0; // N = 2 electrons
            let analytic = (u - (u * u + 16.0 * t * t).sqrt()) / 2.0;
            assert!(
                (exact - analytic).abs() < 1e-8,
                "t={t}, U={u}: {exact} vs {analytic}"
            );
        }
    }

    #[test]
    fn zero_interaction_reduces_to_tight_binding() {
        // U = 0: the 2-site model is free fermions; ground energy at
        // half filling = 2 × (−t) (both spins occupy the bonding orbital).
        let model = HubbardModel::chain(2, 1.3, 0.0);
        let exact = model.qubit_hamiltonian().ground_state_energy();
        assert!((exact + 2.0 * 1.3).abs() < 1e-8, "{exact}");
    }

    #[test]
    fn atomic_limit_has_zero_ground_energy() {
        // t = 0: electrons avoid double occupancy; ground energy 0.
        let model = HubbardModel::chain(2, 0.0, 5.0);
        let exact = model.qubit_hamiltonian().ground_state_energy();
        assert!(exact.abs() < 1e-8, "{exact}");
    }

    #[test]
    fn interaction_energy_on_reference_state() {
        // The half-filling determinant |↑↓ on the lowest sites…⟩ has a
        // definite interaction expectation: sites 0..n/2 doubly occupied.
        let model = HubbardModel::chain(4, 1.0, 6.0);
        let hf = model.half_filling_state();
        let mut state = vec![Complex64::ZERO; 1 << model.num_qubits()];
        state[hf as usize] = Complex64::ONE;
        let h_u_only = HubbardModel::chain(4, 0.0, 6.0).qubit_hamiltonian();
        // Sites 0 and 1 are doubly occupied → E = 2U.
        assert!((h_u_only.expectation(&state) - 12.0).abs() < 1e-10);
    }

    #[test]
    fn hamiltonian_term_counts_scale_with_lattice() {
        let chain = HubbardModel::chain(4, 1.0, 2.0).qubit_hamiltonian();
        let ring = HubbardModel::ring(4, 1.0, 2.0).qubit_hamiltonian();
        assert!(ring.len() > chain.len(), "extra bond adds hopping strings");
        let grid = HubbardModel::lattice(2, 2, 1.0, 2.0).qubit_hamiltonian();
        assert_eq!(grid.num_qubits(), 8);
    }

    #[test]
    fn hopping_strings_carry_z_chains() {
        // A long-range JW bond must include the parity string.
        let model = HubbardModel::ring(4, 1.0, 0.0);
        let h = model.qubit_hamiltonian();
        // The (3,0) bond hops between site 3 and site 0 within each spin
        // block; its α strings are weight-4 (X/Y at 0 and 3, Z at 1, 2).
        let has_long = h.iter().any(|(_, p)| p.weight() == 4);
        assert!(has_long, "periodic bond should create Z-chained strings");
    }

    #[test]
    fn chemical_potential_shifts_particle_sectors() {
        let base = HubbardModel::chain(2, 1.0, 4.0);
        let doped = base.clone().with_chemical_potential(10.0);
        // Large μ favors maximal filling; ground energy drops by ~μ·N_max.
        let e_base = base.qubit_hamiltonian().ground_state_energy();
        let e_doped = doped.qubit_hamiltonian().ground_state_energy();
        assert!(e_doped < e_base - 20.0, "{e_doped} vs {e_base}");
    }

    #[test]
    #[should_panic]
    fn odd_half_filling_rejected() {
        let _ = HubbardModel::chain(3, 1.0, 1.0).half_filling_state();
    }
}
