//! Second quantization and the Jordan–Wigner encoding.
//!
//! Spin orbitals use *block ordering*: for `m` active spatial orbitals,
//! qubits `0..m` are the α spin orbitals and qubits `m..2m` the β spin
//! orbitals, matching the Qiskit convention the paper's Table I counts are
//! based on.

use std::collections::HashMap;

use numeric::Complex64;
use pauli::{Pauli, PauliString, WeightedPauliSum};

use crate::mo::ActiveIntegrals;

/// A fermionic ladder operator: creation (`a†_p`) or annihilation (`a_p`) on
/// spin orbital `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LadderOp {
    /// Spin-orbital index.
    pub index: usize,
    /// `true` for creation, `false` for annihilation.
    pub creation: bool,
}

impl LadderOp {
    /// Creation operator `a†_p`.
    pub fn create(index: usize) -> Self {
        LadderOp {
            index,
            creation: true,
        }
    }

    /// Annihilation operator `a_p`.
    pub fn annihilate(index: usize) -> Self {
        LadderOp {
            index,
            creation: false,
        }
    }
}

/// A sparse complex-weighted Pauli expansion, used as the working
/// representation while multiplying Jordan–Wigner factors.
///
/// # Examples
///
/// ```
/// use chem::fermion::{jordan_wigner_product, LadderOp};
///
/// // The number operator a†_0 a_0 = (I − Z_0)/2.
/// let n0 = jordan_wigner_product(2, &[LadderOp::create(0), LadderOp::annihilate(0)]);
/// assert_eq!(n0.len(), 2);
/// ```
pub type ComplexPauliMap = HashMap<PauliString, Complex64>;

/// The Jordan–Wigner image of one ladder operator: two weighted strings
/// `a†_p = ½(X_p − iY_p)·Z_{p-1}…Z_0`, `a_p = ½(X_p + iY_p)·Z_{p-1}…Z_0`.
pub fn jordan_wigner_ladder(num_qubits: usize, op: LadderOp) -> [(Complex64, PauliString); 2] {
    assert!(
        op.index < num_qubits,
        "spin orbital {} out of range",
        op.index
    );
    let mut x_string = PauliString::identity(num_qubits);
    let mut y_string = PauliString::identity(num_qubits);
    for q in 0..op.index {
        x_string.set_op(q, Pauli::Z);
        y_string.set_op(q, Pauli::Z);
    }
    x_string.set_op(op.index, Pauli::X);
    y_string.set_op(op.index, Pauli::Y);
    let half = Complex64::from_real(0.5);
    let y_coef = if op.creation {
        Complex64::new(0.0, -0.5)
    } else {
        Complex64::new(0.0, 0.5)
    };
    [(half, x_string), (y_coef, y_string)]
}

/// Expands a product of ladder operators into its Pauli decomposition.
pub fn jordan_wigner_product(num_qubits: usize, ops: &[LadderOp]) -> ComplexPauliMap {
    let mut acc: ComplexPauliMap = HashMap::new();
    acc.insert(PauliString::identity(num_qubits), Complex64::ONE);
    for &op in ops {
        let factors = jordan_wigner_ladder(num_qubits, op);
        let mut next: ComplexPauliMap = HashMap::with_capacity(acc.len() * 2);
        for (p, w) in &acc {
            for (fw, fp) in &factors {
                let (phase, prod) = p.mul(fp);
                let coef = *w * *fw * phase.to_complex();
                *next.entry(prod).or_insert(Complex64::ZERO) += coef;
            }
        }
        next.retain(|_, w| w.norm() > 1e-14);
        acc = next;
    }
    acc
}

/// Adds `scale · JW(ops)` into an accumulator map.
pub fn accumulate_term(acc: &mut ComplexPauliMap, num_qubits: usize, ops: &[LadderOp], scale: f64) {
    if scale == 0.0 {
        return;
    }
    for (p, w) in jordan_wigner_product(num_qubits, ops) {
        *acc.entry(p).or_insert(Complex64::ZERO) += w * scale;
    }
}

/// Converts an accumulated (Hermitian) complex map into a real weighted sum.
///
/// # Panics
///
/// Panics if any coefficient has an imaginary part above `1e-8` — that would
/// mean the assembled operator is not Hermitian.
pub fn into_real_sum(num_qubits: usize, acc: ComplexPauliMap) -> WeightedPauliSum {
    let mut terms: Vec<(f64, PauliString)> = acc
        .into_iter()
        .filter(|(_, w)| w.norm() > 1e-12)
        .map(|(p, w)| {
            assert!(
                w.im.abs() < 1e-8,
                "non-Hermitian accumulation: {p} has imaginary weight {}",
                w.im
            );
            (w.re, p)
        })
        .collect();
    // Deterministic order: sort by string for reproducibility.
    terms.sort_by_key(|a| a.1);
    WeightedPauliSum::from_terms(num_qubits, terms)
}

/// The anti-Hermitian cluster operator `T − T†` of an excitation, expanded
/// as `i·Σ_k c_k·P_k` with real `c_k`; returns the `(c_k, P_k)` pairs.
///
/// `excitation` is the ladder-operator product for `T` (e.g.
/// `[a†_a, a_i]` for a single excitation `i→a`).
///
/// # Panics
///
/// Panics if the expansion is not of the form `i·(real combination)`, which
/// would indicate `T` was not a proper excitation product.
pub fn antihermitian_pauli_terms(
    num_qubits: usize,
    excitation: &[LadderOp],
) -> Vec<(f64, PauliString)> {
    let mut acc: ComplexPauliMap = HashMap::new();
    accumulate_term(&mut acc, num_qubits, excitation, 1.0);
    // Subtract the Hermitian conjugate: reverse order, flip dagger.
    let conj: Vec<LadderOp> = excitation
        .iter()
        .rev()
        .map(|op| LadderOp {
            index: op.index,
            creation: !op.creation,
        })
        .collect();
    accumulate_term(&mut acc, num_qubits, &conj, -1.0);

    let mut out: Vec<(f64, PauliString)> = acc
        .into_iter()
        .filter(|(_, w)| w.norm() > 1e-12)
        .map(|(p, w)| {
            assert!(
                w.re.abs() < 1e-10,
                "anti-Hermitian operator must be purely imaginary in the Pauli basis"
            );
            (w.im, p)
        })
        .collect();
    out.sort_by_key(|a| a.1);
    out
}

/// Spin-orbital index for spatial orbital `i` with the given spin in block
/// ordering (`false` = α, `true` = β).
pub fn spin_orbital(num_spatial: usize, spatial: usize, beta: bool) -> usize {
    assert!(spatial < num_spatial, "spatial orbital out of range");
    if beta {
        num_spatial + spatial
    } else {
        spatial
    }
}

/// Builds the qubit Hamiltonian of an active space under Jordan–Wigner:
/// `H = E_core + Σ h_pq a†p aq + ½ Σ ⟨pq|rs⟩ a†p a†q a_s a_r`.
///
/// The physicist-notation element `⟨pq|rs⟩` is `(pr|qs)` of the chemist
/// tensor with the spin selection rules `σ_p = σ_r`, `σ_q = σ_s`.
pub fn build_qubit_hamiltonian(act: &ActiveIntegrals) -> WeightedPauliSum {
    let m = act.h.rows();
    let n_so = 2 * m;
    let mut acc: ComplexPauliMap = HashMap::new();

    // Constant core energy on the identity string.
    acc.insert(
        PauliString::identity(n_so),
        Complex64::from_real(act.core_energy),
    );

    // One-body terms (spin-diagonal).
    for p in 0..m {
        for q in 0..m {
            let h = act.h[(p, q)];
            if h.abs() < 1e-12 {
                continue;
            }
            for beta in [false, true] {
                let sp = spin_orbital(m, p, beta);
                let sq = spin_orbital(m, q, beta);
                accumulate_term(
                    &mut acc,
                    n_so,
                    &[LadderOp::create(sp), LadderOp::annihilate(sq)],
                    h,
                );
            }
        }
    }

    // Two-body terms: ½ Σ_{pqrs,στ} (pr|qs) a†_{pσ} a†_{qτ} a_{sτ} a_{rσ}.
    for p in 0..m {
        for q in 0..m {
            for r in 0..m {
                for s in 0..m {
                    let g = act.eri.get(p, r, q, s);
                    if g.abs() < 1e-12 {
                        continue;
                    }
                    for sigma in [false, true] {
                        for tau in [false, true] {
                            let a = spin_orbital(m, p, sigma);
                            let b = spin_orbital(m, q, tau);
                            let c = spin_orbital(m, s, tau);
                            let d = spin_orbital(m, r, sigma);
                            if a == b || c == d {
                                continue; // a†a† or aa on the same mode is zero
                            }
                            accumulate_term(
                                &mut acc,
                                n_so,
                                &[
                                    LadderOp::create(a),
                                    LadderOp::create(b),
                                    LadderOp::annihilate(c),
                                    LadderOp::annihilate(d),
                                ],
                                0.5 * g,
                            );
                        }
                    }
                }
            }
        }
    }

    into_real_sum(n_so, acc)
}

/// The Hartree-Fock reference determinant as a computational-basis bitmask
/// (block spin ordering; closed shell).
///
/// # Panics
///
/// Panics if the electron count is odd or exceeds the orbital capacity.
pub fn hartree_fock_bitmask(num_spatial: usize, num_electrons: usize) -> u64 {
    assert!(
        num_electrons.is_multiple_of(2),
        "closed-shell reference requires even electrons"
    );
    let pairs = num_electrons / 2;
    assert!(
        pairs <= num_spatial,
        "too many electrons for the active space"
    );
    let mut mask = 0u64;
    for i in 0..pairs {
        mask |= 1 << spin_orbital(num_spatial, i, false);
        mask |= 1 << spin_orbital(num_spatial, i, true);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_operator_expansion() {
        // a†_0 a_0 = (I − Z_0)/2.
        let map = jordan_wigner_product(2, &[LadderOp::create(0), LadderOp::annihilate(0)]);
        let id = PauliString::identity(2);
        let z0: PauliString = "IZ".parse().unwrap();
        assert!(map[&id].approx_eq(Complex64::from_real(0.5), 1e-12));
        assert!(map[&z0].approx_eq(Complex64::from_real(-0.5), 1e-12));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn anticommutation_a_adagger() {
        // a_0 a†_0 = (I + Z_0)/2.
        let map = jordan_wigner_product(1, &[LadderOp::annihilate(0), LadderOp::create(0)]);
        let id = PauliString::identity(1);
        let z: PauliString = "Z".parse().unwrap();
        assert!(map[&id].approx_eq(Complex64::from_real(0.5), 1e-12));
        assert!(map[&z].approx_eq(Complex64::from_real(0.5), 1e-12));
    }

    #[test]
    fn pauli_exclusion_adagger_squared_is_zero() {
        let map = jordan_wigner_product(2, &[LadderOp::create(1), LadderOp::create(1)]);
        assert!(map.is_empty(), "a†a† must vanish, got {map:?}");
    }

    #[test]
    fn hopping_term_has_z_chain() {
        // a†_2 a_0 + h.c. on 3 qubits → ½(X Z X + Y Z Y).
        let mut acc: ComplexPauliMap = HashMap::new();
        accumulate_term(
            &mut acc,
            3,
            &[LadderOp::create(2), LadderOp::annihilate(0)],
            1.0,
        );
        accumulate_term(
            &mut acc,
            3,
            &[LadderOp::create(0), LadderOp::annihilate(2)],
            1.0,
        );
        let sum = into_real_sum(3, acc);
        let mut found = std::collections::HashMap::new();
        for (w, p) in sum.iter() {
            found.insert(p.to_string(), *w);
        }
        assert!((found["XZX"] - 0.5).abs() < 1e-12);
        assert!((found["YZY"] - 0.5).abs() < 1e-12);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn single_excitation_antihermitian_terms() {
        // T = a†_1 a_0; T−T† = (i/2)(X_1 Y_0 − Y_1 X_0) → coefficients ±½.
        let terms = antihermitian_pauli_terms(2, &[LadderOp::create(1), LadderOp::annihilate(0)]);
        assert_eq!(terms.len(), 2);
        let mut m = std::collections::HashMap::new();
        for (c, p) in &terms {
            m.insert(p.to_string(), *c);
        }
        assert!((m["XY"].abs() - 0.5).abs() < 1e-12);
        assert!((m["YX"].abs() - 0.5).abs() < 1e-12);
        assert!((m["XY"] + m["YX"]).abs() < 1e-12, "opposite signs expected");
    }

    #[test]
    fn double_excitation_has_eight_strings() {
        // T = a†_2 a†_3 a_1 a_0 on 4 qubits → 8 Pauli strings (paper §II-C).
        let terms = antihermitian_pauli_terms(
            4,
            &[
                LadderOp::create(2),
                LadderOp::create(3),
                LadderOp::annihilate(1),
                LadderOp::annihilate(0),
            ],
        );
        assert_eq!(terms.len(), 8);
        for (c, p) in &terms {
            assert!((c.abs() - 0.125).abs() < 1e-12);
            assert_eq!(p.weight(), 4);
        }
    }

    #[test]
    fn spin_orbital_block_ordering() {
        assert_eq!(spin_orbital(3, 0, false), 0);
        assert_eq!(spin_orbital(3, 2, false), 2);
        assert_eq!(spin_orbital(3, 0, true), 3);
        assert_eq!(spin_orbital(3, 2, true), 5);
    }

    #[test]
    fn hartree_fock_bitmask_blocks() {
        // 2 spatial orbitals, 2 electrons: qubits 0 (α) and 2 (β) occupied.
        assert_eq!(hartree_fock_bitmask(2, 2), 0b0101);
        // 3 spatial, 4 electrons: qubits 0,1 (α) and 3,4 (β).
        assert_eq!(hartree_fock_bitmask(3, 4), 0b011011);
    }

    #[test]
    fn number_operator_counts_in_hf_state() {
        // ⟨HF| Σ_p n_p |HF⟩ = electron count.
        let m = 2;
        let n_so = 4;
        let mut acc: ComplexPauliMap = HashMap::new();
        for p in 0..n_so {
            accumulate_term(
                &mut acc,
                n_so,
                &[LadderOp::create(p), LadderOp::annihilate(p)],
                1.0,
            );
        }
        let op = into_real_sum(n_so, acc);
        let hf = hartree_fock_bitmask(m, 2);
        let mut state = vec![Complex64::ZERO; 1 << n_so];
        state[hf as usize] = Complex64::ONE;
        assert!((op.expectation(&state) - 2.0).abs() < 1e-12);
    }
}
