//! Molecular geometries.
//!
//! Positions are stored in Bohr (atomic units); constructors take Angstrom
//! because the paper reports bond lengths in Angstrom (§VI-A).

use crate::element::Element;
use crate::ANGSTROM_TO_BOHR;

/// An atom at a fixed position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// The element.
    pub element: Element,
    /// Position in Bohr.
    pub position: [f64; 3],
}

impl Atom {
    /// Creates an atom from a position given in Angstrom.
    pub fn new_angstrom(element: Element, pos: [f64; 3]) -> Self {
        Atom {
            element,
            position: [
                pos[0] * ANGSTROM_TO_BOHR,
                pos[1] * ANGSTROM_TO_BOHR,
                pos[2] * ANGSTROM_TO_BOHR,
            ],
        }
    }
}

/// A neutral molecule: a list of atoms.
///
/// # Examples
///
/// ```
/// use chem::{Atom, Element, Molecule};
///
/// let h2 = Molecule::new(vec![
///     Atom::new_angstrom(Element::H, [0.0, 0.0, 0.0]),
///     Atom::new_angstrom(Element::H, [0.0, 0.0, 0.74]),
/// ]);
/// assert_eq!(h2.num_electrons(), 2);
/// assert!(h2.nuclear_repulsion() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    atoms: Vec<Atom>,
}

impl Molecule {
    /// Creates a molecule from its atoms.
    ///
    /// # Panics
    ///
    /// Panics if `atoms` is empty.
    pub fn new(atoms: Vec<Atom>) -> Self {
        assert!(!atoms.is_empty(), "molecule must have at least one atom");
        Molecule { atoms }
    }

    /// Borrows the atom list.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Total electron count (neutral molecule).
    pub fn num_electrons(&self) -> usize {
        self.atoms
            .iter()
            .map(|a| a.element.atomic_number() as usize)
            .sum()
    }

    /// Nuclear repulsion energy `Σ Z_a Z_b / r_ab` in Hartree.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                let a = &self.atoms[i];
                let b = &self.atoms[j];
                let r = dist(a.position, b.position);
                e += (a.element.atomic_number() * b.element.atomic_number()) as f64 / r;
            }
        }
        e
    }

    /// Number of conventionally frozen core spatial orbitals.
    pub fn core_orbital_count(&self) -> usize {
        self.atoms
            .iter()
            .map(|a| a.element.core_orbital_count())
            .sum()
    }
}

fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

/// Builders for the geometric families in the paper's benchmark set, all
/// parameterized by the varied bond length `d` in Angstrom.
pub mod shapes {
    use super::*;

    /// A diatomic `A–B` along z with bond length `d` Å.
    pub fn diatomic(a: Element, b: Element, d: f64) -> Molecule {
        Molecule::new(vec![
            Atom::new_angstrom(a, [0.0, 0.0, 0.0]),
            Atom::new_angstrom(b, [0.0, 0.0, d]),
        ])
    }

    /// Linear symmetric `H–A–H` (BeH₂) with both bonds `d` Å.
    pub fn linear_xh2(center: Element, d: f64) -> Molecule {
        Molecule::new(vec![
            Atom::new_angstrom(center, [0.0, 0.0, 0.0]),
            Atom::new_angstrom(Element::H, [0.0, 0.0, d]),
            Atom::new_angstrom(Element::H, [0.0, 0.0, -d]),
        ])
    }

    /// Bent `H–A–H` (H₂O) with bond `d` Å and the given H-A-H angle in
    /// degrees.
    pub fn bent_xh2(center: Element, d: f64, angle_deg: f64) -> Molecule {
        let half = angle_deg.to_radians() / 2.0;
        Molecule::new(vec![
            Atom::new_angstrom(center, [0.0, 0.0, 0.0]),
            Atom::new_angstrom(Element::H, [d * half.sin(), 0.0, d * half.cos()]),
            Atom::new_angstrom(Element::H, [-d * half.sin(), 0.0, d * half.cos()]),
        ])
    }

    /// Trigonal-planar `AH₃` (BH₃) with bond `d` Å.
    pub fn planar_xh3(center: Element, d: f64) -> Molecule {
        let mut atoms = vec![Atom::new_angstrom(center, [0.0, 0.0, 0.0])];
        for k in 0..3 {
            let phi = 2.0 * std::f64::consts::PI * k as f64 / 3.0;
            atoms.push(Atom::new_angstrom(
                Element::H,
                [d * phi.cos(), d * phi.sin(), 0.0],
            ));
        }
        Molecule::new(atoms)
    }

    /// Pyramidal `AH₃` (NH₃) with bond `d` Å and H-A-H angle in degrees.
    pub fn pyramidal_xh3(center: Element, d: f64, hah_angle_deg: f64) -> Molecule {
        // Place the three H on a cone around z; the cone half-angle θ
        // satisfies sin(θ)·√3 = 2·sin(HAH/2) per the circumradius relation.
        let half_hah = hah_angle_deg.to_radians() / 2.0;
        let sin_theta = 2.0 * half_hah.sin() / 3f64.sqrt();
        let theta = sin_theta.asin();
        let mut atoms = vec![Atom::new_angstrom(center, [0.0, 0.0, 0.0])];
        for k in 0..3 {
            let phi = 2.0 * std::f64::consts::PI * k as f64 / 3.0;
            atoms.push(Atom::new_angstrom(
                Element::H,
                [
                    d * theta.sin() * phi.cos(),
                    d * theta.sin() * phi.sin(),
                    d * theta.cos(),
                ],
            ));
        }
        Molecule::new(atoms)
    }

    /// Tetrahedral `AH₄` (CH₄) with bond `d` Å.
    pub fn tetrahedral_xh4(center: Element, d: f64) -> Molecule {
        let s = d / 3f64.sqrt();
        Molecule::new(vec![
            Atom::new_angstrom(center, [0.0, 0.0, 0.0]),
            Atom::new_angstrom(Element::H, [s, s, s]),
            Atom::new_angstrom(Element::H, [s, -s, -s]),
            Atom::new_angstrom(Element::H, [-s, s, -s]),
            Atom::new_angstrom(Element::H, [-s, -s, s]),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::shapes::*;
    use super::*;

    fn bond_lengths(m: &Molecule) -> Vec<f64> {
        let c = m.atoms()[0].position;
        m.atoms()[1..]
            .iter()
            .map(|a| dist(c, a.position) / ANGSTROM_TO_BOHR)
            .collect()
    }

    #[test]
    fn h2_nuclear_repulsion_at_1p4_bohr() {
        // Szabo–Ostlund reference geometry: R = 1.4 Bohr → E_nn = 1/1.4.
        let d_ang = 1.4 / ANGSTROM_TO_BOHR;
        let m = diatomic(Element::H, Element::H, d_ang);
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn electron_counts() {
        assert_eq!(diatomic(Element::Li, Element::H, 1.6).num_electrons(), 4);
        assert_eq!(tetrahedral_xh4(Element::C, 1.09).num_electrons(), 10);
        assert_eq!(pyramidal_xh3(Element::N, 1.01, 107.0).num_electrons(), 10);
    }

    #[test]
    fn shape_bond_lengths_match_parameter() {
        for m in [
            linear_xh2(Element::Be, 1.3),
            bent_xh2(Element::O, 0.96, 104.5),
            planar_xh3(Element::B, 1.19),
            pyramidal_xh3(Element::N, 1.01, 107.0),
            tetrahedral_xh4(Element::C, 1.09),
        ] {
            for b in bond_lengths(&m) {
                assert!(
                    (b - bond_lengths(&m)[0]).abs() < 1e-12,
                    "bonds must be symmetric"
                );
            }
        }
        let m = tetrahedral_xh4(Element::C, 1.09);
        assert!((bond_lengths(&m)[0] - 1.09).abs() < 1e-12);
    }

    #[test]
    fn tetrahedral_angles() {
        let m = tetrahedral_xh4(Element::C, 1.0);
        let a = m.atoms()[1].position;
        let b = m.atoms()[2].position;
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let cos = dot / (ANGSTROM_TO_BOHR * ANGSTROM_TO_BOHR);
        assert!(
            (cos - (-1.0 / 3.0)).abs() < 1e-12,
            "tetrahedral angle must be 109.47°"
        );
    }

    #[test]
    fn pyramidal_hah_angle_is_respected() {
        let m = pyramidal_xh3(Element::N, 1.0, 107.0);
        let a = m.atoms()[1].position;
        let b = m.atoms()[2].position;
        let d2 = dist(a, b);
        // law of cosines with unit bond lengths (in Å → Bohr scale cancels).
        let bond = ANGSTROM_TO_BOHR;
        let cos = 1.0 - d2 * d2 / (2.0 * bond * bond);
        assert!((cos.acos().to_degrees() - 107.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_molecule_rejected() {
        let _ = Molecule::new(vec![]);
    }
}
