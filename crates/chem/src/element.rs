//! Chemical elements and their STO-3G Slater exponents.

use std::fmt;
use std::str::FromStr;

/// The elements appearing in the paper's benchmark set.
///
/// # Examples
///
/// ```
/// use chem::Element;
///
/// assert_eq!(Element::O.atomic_number(), 8);
/// assert_eq!("C".parse::<Element>().unwrap(), Element::C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Lithium.
    Li,
    /// Beryllium.
    Be,
    /// Boron.
    B,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Fluorine.
    F,
    /// Sodium.
    Na,
}

impl Element {
    /// Nuclear charge Z.
    pub fn atomic_number(self) -> u32 {
        match self {
            Element::H => 1,
            Element::Li => 3,
            Element::Be => 4,
            Element::B => 5,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::Na => 11,
        }
    }

    /// The element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::Li => "Li",
            Element::Be => "Be",
            Element::B => "B",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::Na => "Na",
        }
    }

    /// Slater exponents `ζ` per shell for the STO-3G basis, in shell order
    /// `[1s, 2sp, 3sp]` (only the shells the element uses are returned).
    ///
    /// These are the standard "best atom + molecular" exponents of Hehre,
    /// Stewart & Pople; expanding each Slater orbital in three Gaussians
    /// with the fixed STO-3G fit constants reproduces the published STO-3G
    /// primitives (e.g. H 1s exponents 3.42525, 0.62391, 0.16886 from
    /// ζ = 1.24).
    pub fn sto3g_zetas(self) -> &'static [(Shell, f64)] {
        match self {
            Element::H => &[(Shell::S1, 1.24)],
            Element::Li => &[(Shell::S1, 2.69), (Shell::SP2, 0.80)],
            Element::Be => &[(Shell::S1, 3.68), (Shell::SP2, 1.15)],
            Element::B => &[(Shell::S1, 4.68), (Shell::SP2, 1.50)],
            Element::C => &[(Shell::S1, 5.67), (Shell::SP2, 1.72)],
            Element::N => &[(Shell::S1, 6.67), (Shell::SP2, 1.95)],
            Element::O => &[(Shell::S1, 7.66), (Shell::SP2, 2.25)],
            Element::F => &[(Shell::S1, 8.65), (Shell::SP2, 2.55)],
            // Na third-row exponents; the 3sp Gaussian expansion constants
            // are fitted (see `basis::sto3g_fit_constants`), a documented
            // substitution in DESIGN.md.
            Element::Na => &[(Shell::S1, 10.61), (Shell::SP2, 3.48), (Shell::SP3, 1.75)],
        }
    }

    /// Number of core *spatial* orbitals conventionally frozen for this
    /// element (1s for Li–F; 1s2s2p for Na; none for H).
    pub fn core_orbital_count(self) -> usize {
        match self {
            Element::H => 0,
            Element::Li
            | Element::Be
            | Element::B
            | Element::C
            | Element::N
            | Element::O
            | Element::F => 1,
            Element::Na => 5,
        }
    }
}

/// A Slater shell used by the STO-3G basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shell {
    /// 1s shell (one s function).
    S1,
    /// 2sp shell (one s and three p functions sharing exponents).
    SP2,
    /// 3sp shell (one s and three p functions sharing exponents).
    SP3,
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Error for parsing an unknown element symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseElementError(String);

impl fmt::Display for ParseElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown element symbol `{}`", self.0)
    }
}

impl std::error::Error for ParseElementError {}

impl FromStr for Element {
    type Err = ParseElementError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "H" => Ok(Element::H),
            "Li" => Ok(Element::Li),
            "Be" => Ok(Element::Be),
            "B" => Ok(Element::B),
            "C" => Ok(Element::C),
            "N" => Ok(Element::N),
            "O" => Ok(Element::O),
            "F" => Ok(Element::F),
            "Na" => Ok(Element::Na),
            other => Err(ParseElementError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_numbers() {
        assert_eq!(Element::H.atomic_number(), 1);
        assert_eq!(Element::Na.atomic_number(), 11);
        assert_eq!(Element::C.atomic_number(), 6);
    }

    #[test]
    fn parse_round_trips() {
        for e in [
            Element::H,
            Element::Li,
            Element::Be,
            Element::B,
            Element::C,
            Element::N,
            Element::O,
            Element::F,
            Element::Na,
        ] {
            assert_eq!(e.symbol().parse::<Element>().unwrap(), e);
        }
        assert!("Xx".parse::<Element>().is_err());
    }

    #[test]
    fn shell_structure() {
        assert_eq!(Element::H.sto3g_zetas().len(), 1);
        assert_eq!(Element::O.sto3g_zetas().len(), 2);
        assert_eq!(Element::Na.sto3g_zetas().len(), 3);
    }

    #[test]
    fn frozen_core_counts() {
        assert_eq!(Element::H.core_orbital_count(), 0);
        assert_eq!(Element::O.core_orbital_count(), 1);
        assert_eq!(Element::Na.core_orbital_count(), 5);
    }
}
