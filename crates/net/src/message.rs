//! The coordinator/worker vocabulary, as single-line JSON frame payloads.
//!
//! Worker → coordinator: `hello`, `claim`, `job-result`, `heartbeat`,
//! `lease-renew`. Coordinator → worker: `welcome`, `grant`, `wait`,
//! `ack`, `reject`, `drain`. Every exchange is strictly request/response
//! — one frame out, one frame back — so a connection never multiplexes
//! replies and a severed link is always at a message boundary or inside
//! exactly one frame (which the CRC catches).
//!
//! Full-width integers (`batch_seed`, `epoch`, the fault-rate bits)
//! travel as decimal or hex *strings*, never JSON numbers — the same
//! shear-avoidance rule the manifests follow. Job records travel as
//! opaque manifest-encoded JSON strings (`record_json`): the supervisor
//! encodes and decodes them with its own bit-exact codec, so the wire
//! adds no second serialization to keep in sync.

use std::collections::BTreeMap;
use std::fmt;

use obs::json::{self, JsonValue};

/// Protocol version spoken by this build; a `hello` carrying any other
/// version is rejected before anything else is trusted.
pub const PROTOCOL_VERSION: u64 = 1;

/// A malformed or unexpected message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker introduces itself on every new connection.
    Hello {
        /// Worker name (host:pid style; provenance, not identity — job
        /// outcomes never depend on it).
        worker: String,
        /// Protocol version the worker speaks.
        version: u64,
    },
    /// Coordinator accepts a hello and ships the batch identity.
    Welcome {
        /// Root seed of every per-job derivation.
        batch_seed: u64,
        /// Pipeline fault rate as raw IEEE-754 bits.
        fault_rate_bits: u64,
        /// Total shard count of the batch.
        shards: usize,
        /// The full jobs file, JSONL (workers need global indices).
        jobs_jsonl: String,
        /// Lease duration: a shard with no heartbeat for this long is
        /// reassigned.
        lease_ms: u64,
        /// How often the worker must heartbeat.
        heartbeat_ms: u64,
    },
    /// Worker asks for a shard to run.
    Claim {
        /// Worker name, recorded as the lease owner.
        worker: String,
    },
    /// Coordinator leases a shard to the claiming worker.
    Grant {
        /// Shard to run.
        shard_id: usize,
        /// Monotonic lease epoch; stale epochs are rejected on renew.
        epoch: u64,
        /// Previous owner, when this grant is a takeover reassignment.
        taken_over_from: Option<String>,
    },
    /// Coordinator has no grantable shard right now (all leased and
    /// live); retry the claim after the suggested delay.
    Wait {
        /// Suggested retry delay in milliseconds.
        backoff_ms: u64,
    },
    /// Worker delivers one finished job record (at-least-once; the
    /// coordinator dedups by content).
    JobResult {
        /// Shard the record belongs to.
        shard_id: usize,
        /// Lease epoch the worker holds.
        epoch: u64,
        /// Global job index.
        index: usize,
        /// Manifest-encoded record line.
        record_json: String,
    },
    /// Worker liveness ping while computing.
    Heartbeat {
        /// Shard being worked.
        shard_id: usize,
        /// Lease epoch the worker holds.
        epoch: u64,
        /// Beats sent so far on this lease.
        beats: u64,
    },
    /// Worker asks to extend its lease; the reply tells it whether it
    /// still owns the shard (a partitioned worker discovers here that
    /// its shard was reassigned).
    LeaseRenew {
        /// Shard being worked.
        shard_id: usize,
        /// Lease epoch the worker holds.
        epoch: u64,
    },
    /// Positive reply (to job-result, heartbeat, lease-renew).
    Ack {
        /// The epoch the coordinator currently recognizes for the shard.
        epoch: u64,
    },
    /// Negative reply: stale epoch, unknown shard, version mismatch,
    /// divergent duplicate record.
    Reject {
        /// Human-readable reason (also logged coordinator-side).
        reason: String,
    },
    /// The batch is complete (or draining): the worker should exit.
    Drain,
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn n(v: usize) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn u64s(v: u64) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn get<'a>(msg: &'a JsonValue, field: &str) -> Result<&'a JsonValue, ProtocolError> {
    msg.get(field)
        .ok_or_else(|| ProtocolError(format!("missing field `{field}`")))
}

fn get_str<'a>(msg: &'a JsonValue, field: &str) -> Result<&'a str, ProtocolError> {
    get(msg, field)?
        .as_str()
        .ok_or_else(|| ProtocolError(format!("field `{field}` is not a string")))
}

fn get_usize(msg: &JsonValue, field: &str) -> Result<usize, ProtocolError> {
    get(msg, field)?
        .as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| ProtocolError(format!("field `{field}` is not an integer")))
}

fn get_u64_str(msg: &JsonValue, field: &str) -> Result<u64, ProtocolError> {
    get_str(msg, field)?
        .parse::<u64>()
        .map_err(|_| ProtocolError(format!("field `{field}` is not a decimal u64")))
}

impl Message {
    /// The wire tag of this message (`"hello"`, `"job-result"`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Welcome { .. } => "welcome",
            Message::Claim { .. } => "claim",
            Message::Grant { .. } => "grant",
            Message::Wait { .. } => "wait",
            Message::JobResult { .. } => "job-result",
            Message::Heartbeat { .. } => "heartbeat",
            Message::LeaseRenew { .. } => "lease-renew",
            Message::Ack { .. } => "ack",
            Message::Reject { .. } => "reject",
            Message::Drain => "drain",
        }
    }

    /// Serializes to a single-line JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let value = match self {
            Message::Hello { worker, version } => obj(vec![
                ("type", s("hello")),
                ("worker", s(worker)),
                ("version", n(*version as usize)),
            ]),
            Message::Welcome {
                batch_seed,
                fault_rate_bits,
                shards,
                jobs_jsonl,
                lease_ms,
                heartbeat_ms,
            } => obj(vec![
                ("type", s("welcome")),
                ("batch_seed", u64s(*batch_seed)),
                ("fault_rate_bits", u64s(*fault_rate_bits)),
                ("shards", n(*shards)),
                ("jobs_jsonl", s(jobs_jsonl)),
                ("lease_ms", u64s(*lease_ms)),
                ("heartbeat_ms", u64s(*heartbeat_ms)),
            ]),
            Message::Claim { worker } => obj(vec![("type", s("claim")), ("worker", s(worker))]),
            Message::Grant {
                shard_id,
                epoch,
                taken_over_from,
            } => {
                let mut fields = vec![
                    ("type", s("grant")),
                    ("shard_id", n(*shard_id)),
                    ("epoch", u64s(*epoch)),
                ];
                if let Some(prev) = taken_over_from {
                    fields.push(("taken_over_from", s(prev)));
                }
                obj(fields)
            }
            Message::Wait { backoff_ms } => {
                obj(vec![("type", s("wait")), ("backoff_ms", u64s(*backoff_ms))])
            }
            Message::JobResult {
                shard_id,
                epoch,
                index,
                record_json,
            } => obj(vec![
                ("type", s("job-result")),
                ("shard_id", n(*shard_id)),
                ("epoch", u64s(*epoch)),
                ("index", n(*index)),
                ("record_json", s(record_json)),
            ]),
            Message::Heartbeat {
                shard_id,
                epoch,
                beats,
            } => obj(vec![
                ("type", s("heartbeat")),
                ("shard_id", n(*shard_id)),
                ("epoch", u64s(*epoch)),
                ("beats", u64s(*beats)),
            ]),
            Message::LeaseRenew { shard_id, epoch } => obj(vec![
                ("type", s("lease-renew")),
                ("shard_id", n(*shard_id)),
                ("epoch", u64s(*epoch)),
            ]),
            Message::Ack { epoch } => obj(vec![("type", s("ack")), ("epoch", u64s(*epoch))]),
            Message::Reject { reason } => obj(vec![("type", s("reject")), ("reason", s(reason))]),
            Message::Drain => obj(vec![("type", s("drain"))]),
        };
        value.to_string().into_bytes()
    }

    /// Parses a frame payload back into a message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on non-UTF-8, non-JSON, an unknown `type`, or a
    /// missing/mistyped field.
    pub fn decode(payload: &[u8]) -> Result<Message, ProtocolError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| ProtocolError(format!("payload is not UTF-8: {e}")))?;
        let msg =
            json::parse(text).map_err(|e| ProtocolError(format!("payload is not JSON: {e}")))?;
        match get_str(&msg, "type")? {
            "hello" => Ok(Message::Hello {
                worker: get_str(&msg, "worker")?.to_string(),
                version: get_usize(&msg, "version")? as u64,
            }),
            "welcome" => Ok(Message::Welcome {
                batch_seed: get_u64_str(&msg, "batch_seed")?,
                fault_rate_bits: get_u64_str(&msg, "fault_rate_bits")?,
                shards: get_usize(&msg, "shards")?,
                jobs_jsonl: get_str(&msg, "jobs_jsonl")?.to_string(),
                lease_ms: get_u64_str(&msg, "lease_ms")?,
                heartbeat_ms: get_u64_str(&msg, "heartbeat_ms")?,
            }),
            "claim" => Ok(Message::Claim {
                worker: get_str(&msg, "worker")?.to_string(),
            }),
            "grant" => Ok(Message::Grant {
                shard_id: get_usize(&msg, "shard_id")?,
                epoch: get_u64_str(&msg, "epoch")?,
                taken_over_from: msg
                    .get("taken_over_from")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
            }),
            "wait" => Ok(Message::Wait {
                backoff_ms: get_u64_str(&msg, "backoff_ms")?,
            }),
            "job-result" => Ok(Message::JobResult {
                shard_id: get_usize(&msg, "shard_id")?,
                epoch: get_u64_str(&msg, "epoch")?,
                index: get_usize(&msg, "index")?,
                record_json: get_str(&msg, "record_json")?.to_string(),
            }),
            "heartbeat" => Ok(Message::Heartbeat {
                shard_id: get_usize(&msg, "shard_id")?,
                epoch: get_u64_str(&msg, "epoch")?,
                beats: get_u64_str(&msg, "beats")?,
            }),
            "lease-renew" => Ok(Message::LeaseRenew {
                shard_id: get_usize(&msg, "shard_id")?,
                epoch: get_u64_str(&msg, "epoch")?,
            }),
            "ack" => Ok(Message::Ack {
                epoch: get_u64_str(&msg, "epoch")?,
            }),
            "reject" => Ok(Message::Reject {
                reason: get_str(&msg, "reason")?.to_string(),
            }),
            "drain" => Ok(Message::Drain),
            other => Err(ProtocolError(format!("unknown message type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn samples() -> Vec<Message> {
        vec![
            Message::Hello {
                worker: "host:123".to_string(),
                version: PROTOCOL_VERSION,
            },
            Message::Welcome {
                batch_seed: u64::MAX - 7, // would shear as a JSON number
                fault_rate_bits: 0.25f64.to_bits(),
                shards: 3,
                jobs_jsonl: "{\"molecule\":\"H2\"}\n".to_string(),
                lease_ms: 500,
                heartbeat_ms: 100,
            },
            Message::Claim {
                worker: "host:123".to_string(),
            },
            Message::Grant {
                shard_id: 2,
                epoch: 4,
                taken_over_from: Some("pid:99/deadbeef".to_string()),
            },
            Message::Grant {
                shard_id: 0,
                epoch: 1,
                taken_over_from: None,
            },
            Message::Wait { backoff_ms: 40 },
            Message::JobResult {
                shard_id: 1,
                epoch: 2,
                index: 5,
                record_json: "{\"id\":\"a\",\"state\":\"done\"}".to_string(),
            },
            Message::Heartbeat {
                shard_id: 1,
                epoch: 2,
                beats: 17,
            },
            Message::LeaseRenew {
                shard_id: 1,
                epoch: 2,
            },
            Message::Ack { epoch: 3 },
            Message::Reject {
                reason: "stale epoch".to_string(),
            },
            Message::Drain,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let back = Message::decode(&msg.encode()).unwrap();
            assert_eq!(back, msg, "round trip of {}", msg.tag());
        }
    }

    #[test]
    fn full_width_integers_survive() {
        let msg = Message::Welcome {
            batch_seed: u64::MAX,
            fault_rate_bits: f64::NAN.to_bits(),
            shards: 1,
            jobs_jsonl: String::new(),
            lease_ms: u64::MAX,
            heartbeat_ms: 1,
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn garbage_is_typed_not_a_panic() {
        assert!(Message::decode(&[0xFF, 0xFE]).is_err());
        assert!(Message::decode(b"not json").is_err());
        assert!(Message::decode(b"{\"type\":\"warp\"}").is_err());
        assert!(Message::decode(b"{\"type\":\"grant\",\"shard_id\":0}").is_err());
        // Sheared epoch: a JSON number where a string is required.
        assert!(
            Message::decode(b"{\"type\":\"ack\",\"epoch\":3}").is_err(),
            "numeric epoch must be rejected (shear risk)"
        );
    }
}
