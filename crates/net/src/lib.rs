//! CRC-framed TCP transport for multi-machine batches.
//!
//! The supervisor's shard layer (PR 7) made one batch survivable across
//! *processes* that share a checkpoint directory. This crate removes the
//! shared-directory assumption: a coordinator and its workers speak a
//! small framed protocol over TCP (loopback in CI, real hosts in
//! production), so the only thing machines share is the wire.
//!
//! - **Frames** ([`frame`]) — every message travels as a length-prefixed
//!   frame sealed with the same CRC-32 the checkpoint container uses. A
//!   truncated, bit-flipped, or mis-framed message surfaces as a typed
//!   [`FrameError`](frame::FrameError) *before* any payload parsing —
//!   the transport twin of "verify the checksum before trusting the
//!   bytes". The incremental [`FrameReader`](frame::FrameReader)
//!   reassembles frames from arbitrarily small reads, so a peer that
//!   dribbles one byte at a time decodes identically to one that writes
//!   whole frames.
//! - **Messages** ([`message`]) — the coordinator/worker vocabulary
//!   (hello/welcome/claim/grant/job-result/heartbeat/lease-renew/
//!   ack/reject/drain) as single-line JSON payloads, mirroring the serve
//!   protocol's one-object-per-line idiom. Job records travel as opaque
//!   manifest-encoded JSON strings, so the supervisor's bit-exact record
//!   encoding is reused verbatim rather than re-specified here.
//! - **Fault proxy** ([`proxy`]) — an in-process TCP proxy that sits
//!   between coordinator and workers and, driven by the seeded
//!   [`resilience::FaultPlan`] sites `net.frame_write`, `net.accept`,
//!   and `net.partition`, drops, delays, corrupts, truncates,
//!   duplicates, and reorders frames and severs connections mid-message.
//!   `pcd chaos --net` drives whole batches through it and asserts the
//!   merged manifest still matches the in-process reference bit for bit.
//!
//! Zero dependencies beyond the workspace's own `obs` and `resilience`:
//! the transport is `std::net` plus the codec in this crate.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod frame;
pub mod message;
pub mod proxy;

pub use frame::{encode_frame, read_frame, write_frame, FrameError, FrameReader, MAX_FRAME_LEN};
pub use message::{Message, ProtocolError, PROTOCOL_VERSION};
pub use proxy::{FaultProxy, ProxyOptions};

/// SplitMix64 finalizer — the same constants as the supervisor's and the
/// fault plan's mixers, so the whole fleet shares one notion of
/// "decorrelate this key".
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
