//! An in-process TCP fault proxy for chaos campaigns.
//!
//! The proxy sits between workers and the coordinator (workers connect
//! to the proxy, the proxy connects to the real listener) and damages
//! traffic at *frame* granularity, driven by the seeded
//! [`FaultPlan`](resilience::FaultPlan) sites:
//!
//! - `net.accept` — an incoming connection is refused (closed before a
//!   byte flows), exercising the worker's connect-retry backoff.
//! - `net.partition` — the link is severed mid-message: half a frame is
//!   delivered, then both directions are shut down.
//! - `net.frame_write` — one frame is damaged; which way is drawn from
//!   the proxy seed: dropped, bit-flipped (CRC rejection downstream),
//!   duplicated (dedup exercise), delayed, or reordered past its
//!   successor.
//!
//! The proxy understands the frame codec but never the messages — it
//! damages bytes, not semantics, exactly like a real flaky link. Fault
//! *decisions* are seeded and replay for a fixed visit order; across
//! concurrently pumped connections the interleaving is scheduler-driven,
//! which is the point: the batch outcome must be bit-identical anyway.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use resilience::{FaultKind, FaultPlan};

use crate::frame::{encode_frame, read_frame};
use crate::splitmix64;

/// Fault proxy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyOptions {
    /// Address to listen on (use port 0 for an ephemeral test port).
    pub listen: SocketAddr,
    /// The real endpoint (the coordinator's listener).
    pub target: SocketAddr,
    /// Seed for the fault plan and the damage-mode draws.
    pub seed: u64,
    /// Injection rate per fault site per frame/connection.
    pub fault_rate: f64,
}

/// A running fault proxy. Dropping (or [`stop`](FaultProxy::stop)ping)
/// it closes the accept loop; in-flight pumps die with their
/// connections.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

const ACCEPT_POLL: Duration = Duration::from_millis(2);
const DELAY: Duration = Duration::from_millis(3);

impl FaultProxy {
    /// Binds the listen address and starts proxying to the target.
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn start(opts: ProxyOptions) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(opts.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let plan = Arc::new(Mutex::new(FaultPlan::new(
            splitmix64(opts.seed ^ 0x9E7_F4A7),
            opts.fault_rate,
        )));
        let frame_counter = Arc::new(AtomicU64::new(0));
        let accept = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || accept_loop(&listener, &opts, &stop, &plan, &frame_counter)
        });
        obs::event!(
            "net.proxy_started",
            listen = addr.to_string(),
            target = opts.target.to_string()
        );
        Ok(FaultProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting; existing pumps drain with their connections.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    opts: &ProxyOptions,
    stop: &Arc<AtomicBool>,
    plan: &Arc<Mutex<FaultPlan>>,
    frame_counter: &Arc<AtomicU64>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let refused = {
                    let mut plan = plan.lock().unwrap_or_else(|e| e.into_inner());
                    plan.should_inject(FaultKind::NetAccept)
                };
                if refused {
                    obs::counter_add("net.proxy.refused", 1);
                    drop(client);
                    continue;
                }
                let upstream = match TcpStream::connect(opts.target) {
                    Ok(s) => s,
                    Err(_) => {
                        // Coordinator gone: behave like the link it is.
                        drop(client);
                        continue;
                    }
                };
                let (c2, u2) = match (client.try_clone(), upstream.try_clone()) {
                    (Ok(c), Ok(u)) => (c, u),
                    _ => continue,
                };
                let seed = opts.seed;
                spawn_pump(
                    client,
                    u2,
                    Arc::clone(plan),
                    Arc::clone(frame_counter),
                    seed,
                );
                spawn_pump(
                    upstream,
                    c2,
                    Arc::clone(plan),
                    Arc::clone(frame_counter),
                    seed,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_pump(
    src: TcpStream,
    dst: TcpStream,
    plan: Arc<Mutex<FaultPlan>>,
    frame_counter: Arc<AtomicU64>,
    seed: u64,
) {
    std::thread::spawn(move || pump(src, dst, &plan, &frame_counter, seed));
}

/// Frame-granular one-direction pump. Ends (shutting down both streams)
/// on any read/write failure or an injected partition.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &Mutex<FaultPlan>,
    frame_counter: &AtomicU64,
    seed: u64,
) {
    // A frame held back by a reorder draw: delivered after its successor.
    let mut held: Option<Vec<u8>> = None;
    while let Ok(payload) = read_frame(&mut src) {
        let visit = frame_counter.fetch_add(1, Ordering::Relaxed);
        let (partition, damage) = {
            let mut plan = plan.lock().unwrap_or_else(|e| e.into_inner());
            (
                plan.should_inject(FaultKind::Partition),
                plan.should_inject(FaultKind::FrameWrite),
            )
        };
        if partition {
            // Sever mid-message: half a frame lands, then the link dies.
            let bytes = encode_frame(&payload);
            let _ = dst.write_all(&bytes[..bytes.len() / 2]);
            obs::counter_add("net.proxy.severed", 1);
            break;
        }
        let deferred = held.take();
        if damage {
            match splitmix64(seed ^ visit.wrapping_mul(0x9E1D)) % 5 {
                0 => {
                    obs::counter_add("net.proxy.dropped", 1);
                    // The frame vanishes; a deferred frame still flows.
                }
                1 => {
                    let mut bytes = encode_frame(&payload);
                    let pos = 8 + (splitmix64(seed ^ visit) % payload.len().max(1) as u64) as usize;
                    let pos = pos.min(bytes.len() - 1);
                    bytes[pos] ^= 1 << (splitmix64(visit ^ 0xB17) % 8);
                    obs::counter_add("net.proxy.corrupted", 1);
                    if dst.write_all(&bytes).is_err() {
                        break;
                    }
                }
                2 => {
                    obs::counter_add("net.proxy.duplicated", 1);
                    let bytes = encode_frame(&payload);
                    if dst
                        .write_all(&bytes)
                        .and_then(|()| dst.write_all(&bytes))
                        .is_err()
                    {
                        break;
                    }
                }
                3 => {
                    obs::counter_add("net.proxy.delayed", 1);
                    std::thread::sleep(DELAY);
                    if dst.write_all(&encode_frame(&payload)).is_err() {
                        break;
                    }
                }
                _ => {
                    obs::counter_add("net.proxy.reordered", 1);
                    held = Some(payload);
                }
            }
        } else if dst.write_all(&encode_frame(&payload)).is_err() {
            break;
        }
        if let Some(h) = deferred {
            if dst.write_all(&encode_frame(&h)).is_err() {
                break;
            }
        }
        if dst.flush().is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use std::io::Read;

    /// Echo server: reads frames, echoes their payloads back framed.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let mut out = stream.try_clone().unwrap();
                while let Ok(payload) = read_frame(&mut stream) {
                    if payload == b"quit" {
                        return;
                    }
                    if write_frame(&mut out, &payload).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn transparent_at_zero_fault_rate() {
        let (target, server) = echo_server();
        let proxy = FaultProxy::start(ProxyOptions {
            listen: "127.0.0.1:0".parse().unwrap(),
            target,
            seed: 7,
            fault_rate: 0.0,
        })
        .unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        for i in 0..20u32 {
            let payload = format!("frame-{i}").into_bytes();
            write_frame(&mut stream, &payload).unwrap();
            assert_eq!(read_frame(&mut stream).unwrap(), payload);
        }
        write_frame(&mut stream, b"quit").unwrap();
        proxy.stop();
        server.join().unwrap();
    }

    #[test]
    fn full_partition_rate_severs_but_never_wedges() {
        let (target, _server) = echo_server();
        let proxy = FaultProxy::start(ProxyOptions {
            listen: "127.0.0.1:0".parse().unwrap(),
            target,
            seed: 11,
            fault_rate: 1.0,
        })
        .unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        // Either the connection is refused outright or the first frame
        // dies to the partition — both must surface as clean errors.
        let _ = write_frame(&mut stream, b"doomed");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        // Whatever arrived must not decode as the intact frame.
        let mut reader = crate::frame::FrameReader::new();
        reader.feed(&sink);
        if let Ok(Some(payload)) = reader.next_frame() {
            assert_ne!(payload, b"doomed");
        }
        proxy.stop();
    }
}
