//! The wire frame: `magic ∥ length ∥ payload ∥ crc32(payload)`.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! +------+----------+-----------------+----------+
//! | PCDN | len: u32 | payload (len B) | crc: u32 |
//! +------+----------+-----------------+----------+
//! ```
//!
//! The CRC-32 (IEEE) is verified **before** the payload is handed to the
//! message layer, so a bit flip anywhere in the payload is a typed
//! [`FrameError::ChecksumMismatch`] carrying the damaged bytes (for
//! quarantine-aside), never a misparsed message. A wrong magic or an
//! oversized length means the stream itself has lost framing — both are
//! connection-fatal by design: the peer reconnects and the at-least-once
//! delivery layer re-sends.

use std::fmt;
use std::io::{self, Read, Write};

/// Magic prefix of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"PCDN";

/// Upper bound on a frame payload; a length above this means the stream
/// has lost framing (or a peer is hostile), not that a message is big.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes of header before the payload (magic + length).
const HEADER_LEN: usize = 8;

/// Bytes of trailer after the payload (CRC-32).
const TRAILER_LEN: usize = 4;

/// A failure decoding a frame from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`FRAME_MAGIC`] — framing is lost.
    BadMagic([u8; 4]),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload CRC does not match the trailer. Carries the damaged
    /// frame bytes (header through trailer) so the receiver can
    /// quarantine them aside.
    ChecksumMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
        /// The damaged frame, byte for byte as received.
        frame: Vec<u8>,
    },
    /// The underlying stream failed or closed mid-frame.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(found) => {
                write!(f, "frame magic mismatch: found {found:02x?}")
            }
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds max {MAX_FRAME_LEN}")
            }
            FrameError::ChecksumMismatch {
                expected, actual, ..
            } => write!(
                f,
                "frame checksum mismatch: trailer {expected:#010x}, payload {actual:#010x}"
            ),
            FrameError::Io(msg) => write!(f, "frame I/O: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one payload as a complete wire frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&obs::crc32(payload).to_be_bytes());
    frame
}

/// Writes one framed payload to `w` and flushes.
///
/// # Errors
///
/// The underlying [`io::Error`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    obs::counter_add("net.frames_sent", 1);
    Ok(())
}

/// Reads exactly one frame from `r`, blocking until it is complete.
///
/// # Errors
///
/// [`FrameError::Io`] on EOF or stream failure (including a close
/// mid-frame), otherwise the codec errors of [`FrameReader`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&header[..4]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut rest = vec![0u8; len + TRAILER_LEN];
    r.read_exact(&mut rest)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    let expected = u32::from_be_bytes([rest[len], rest[len + 1], rest[len + 2], rest[len + 3]]);
    rest.truncate(len);
    let actual = obs::crc32(&rest);
    if actual != expected {
        let mut frame = header.to_vec();
        frame.extend_from_slice(&rest);
        frame.extend_from_slice(&expected.to_be_bytes());
        obs::counter_add("net.frame_crc_rejected", 1);
        return Err(FrameError::ChecksumMismatch {
            expected,
            actual,
            frame,
        });
    }
    obs::counter_add("net.frames_received", 1);
    Ok(rest)
}

/// Incremental frame reassembler: feed it bytes in any granularity (one
/// byte at a time included) and pull complete payloads out.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reassembler.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed. A codec error (bad magic, oversize, CRC mismatch) leaves
    /// the reassembler positioned *after* the damaged region when that
    /// is well-defined (CRC mismatch) and is otherwise connection-fatal.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] except `Io`.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&self.buf[..4]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let len = u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        let total = HEADER_LEN + len + TRAILER_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..total).collect();
        let payload = &frame[HEADER_LEN..HEADER_LEN + len];
        let expected = u32::from_be_bytes([
            frame[total - 4],
            frame[total - 3],
            frame[total - 2],
            frame[total - 1],
        ]);
        let actual = obs::crc32(payload);
        if actual != expected {
            obs::counter_add("net.frame_crc_rejected", 1);
            return Err(FrameError::ChecksumMismatch {
                expected,
                actual,
                frame,
            });
        }
        obs::counter_add("net.frames_received", 1);
        Ok(Some(payload.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_blocking_reader() {
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello frames"];
        let mut wire = Vec::new();
        for p in payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for p in payloads {
            assert_eq!(read_frame(&mut cursor).unwrap(), p);
        }
        // Stream exhausted: EOF is a typed Io error, not a panic.
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn one_byte_feeds_reassemble() {
        let frame = encode_frame(b"dribble");
        let mut reader = FrameReader::new();
        for (i, byte) in frame.iter().enumerate() {
            reader.feed(std::slice::from_ref(byte));
            let got = reader.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame complete early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), b"dribble");
            }
        }
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn bit_flip_is_a_checksum_mismatch_with_the_bytes() {
        let mut frame = encode_frame(b"payload under test");
        frame[HEADER_LEN + 3] ^= 0x20;
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        match reader.next_frame() {
            Err(FrameError::ChecksumMismatch { frame: damaged, .. }) => {
                assert_eq!(damaged, frame, "damaged bytes preserved for quarantine");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn crc_mismatch_resyncs_to_the_next_frame() {
        let mut bad = encode_frame(b"first");
        let len = bad.len();
        bad[len - 1] ^= 0xFF; // damage the trailer itself
        let good = encode_frame(b"second");
        let mut reader = FrameReader::new();
        reader.feed(&bad);
        reader.feed(&good);
        assert!(matches!(
            reader.next_frame(),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"second");
    }

    #[test]
    fn bad_magic_and_oversize_are_typed() {
        let mut reader = FrameReader::new();
        reader.feed(b"NOPExxxxxxxx");
        assert!(matches!(
            reader.next_frame(),
            Err(FrameError::BadMagic(m)) if &m == b"NOPE"
        ));
        let mut oversize = FRAME_MAGIC.to_vec();
        oversize.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut reader = FrameReader::new();
        reader.feed(&oversize);
        assert!(matches!(reader.next_frame(), Err(FrameError::TooLarge(_))));
    }
}
