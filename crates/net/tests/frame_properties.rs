//! Property tests for the wire codec: every message type must round-trip
//! through framing under 1-byte reassembly, and no damaged frame —
//! truncated, bit-flipped, or duplicated — may ever decode silently
//! wrong.

use net::frame::{encode_frame, FrameError, FrameReader};
use net::message::{Message, PROTOCOL_VERSION};
use proptest::prelude::*;

fn arb_name() -> BoxedStrategy<String> {
    // Includes JSON-special characters so escaping is exercised.
    prop::collection::vec(0usize..6, 0..12)
        .prop_map(|picks| {
            picks
                .into_iter()
                .map(|p| ['a', 'Z', '"', '\\', '/', ' '][p])
                .collect()
        })
        .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        arb_name().prop_map(|worker| Message::Hello {
            worker,
            version: PROTOCOL_VERSION,
        }),
        ((0usize..5), arb_name()).prop_map(|(shards, jobs_jsonl)| {
            Message::Welcome {
                batch_seed: u64::MAX - shards as u64,
                fault_rate_bits: 0.25f64.to_bits(),
                shards: shards + 1,
                jobs_jsonl,
                lease_ms: 500,
                heartbeat_ms: 100,
            }
        }),
        arb_name().prop_map(|worker| Message::Claim { worker }),
        ((0usize..8), (0usize..1000)).prop_map(|(shard_id, epoch)| Message::Grant {
            shard_id,
            epoch: epoch as u64,
            taken_over_from: (epoch % 2 == 0).then(|| format!("pid:{epoch}/feed")),
        }),
        (0usize..100_000).prop_map(|ms| Message::Wait {
            backoff_ms: ms as u64
        }),
        ((0usize..8), (0usize..64), arb_name()).prop_map(|(shard_id, index, record_json)| {
            Message::JobResult {
                shard_id,
                epoch: 3,
                index,
                record_json,
            }
        }),
        ((0usize..8), (0usize..1000)).prop_map(|(shard_id, beats)| Message::Heartbeat {
            shard_id,
            epoch: 1,
            beats: beats as u64,
        }),
        (0usize..8).prop_map(|shard_id| Message::LeaseRenew { shard_id, epoch: 2 }),
        (0usize..1000).prop_map(|epoch| Message::Ack {
            epoch: epoch as u64
        }),
        arb_name().prop_map(|reason| Message::Reject { reason }),
        Just(Message::Drain),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn one_byte_reassembly_round_trips(msg in arb_message()) {
        let frame = encode_frame(&msg.encode());
        let mut reader = FrameReader::new();
        let mut decoded = None;
        for byte in &frame {
            reader.feed(std::slice::from_ref(byte));
            if let Some(payload) = reader.next_frame().map_err(|e| {
                TestCaseError::fail(format!("codec error mid-stream: {e}"))
            })? {
                prop_assert!(decoded.is_none(), "frame produced twice");
                decoded = Some(payload);
            }
        }
        let payload = decoded.ok_or_else(|| TestCaseError::fail("frame never completed"))?;
        let back = Message::decode(&payload)
            .map_err(|e| TestCaseError::fail(format!("decode: {e}")))?;
        prop_assert_eq!(back, msg);
        prop_assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn truncation_never_yields_a_frame(msg in arb_message(), cut_per_mille in 0usize..1000) {
        let frame = encode_frame(&msg.encode());
        let cut = (frame.len() * cut_per_mille) / 1000;
        prop_assert!(cut < frame.len());
        let mut reader = FrameReader::new();
        reader.feed(&frame[..cut]);
        match reader.next_frame() {
            Ok(None) => {}
            Ok(Some(p)) => {
                return Err(TestCaseError::fail(format!(
                    "truncated at {cut}/{} but produced a {}-byte payload",
                    frame.len(),
                    p.len()
                )))
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "truncation must look incomplete, not damaged: {e}"
                )))
            }
        }
    }

    #[test]
    fn bit_flips_never_decode_silently(msg in arb_message(), pos_seed in 0usize..10_000, bit in 0usize..8) {
        let mut frame = encode_frame(&msg.encode());
        let pos = pos_seed % frame.len();
        frame[pos] ^= 1 << bit;
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        match reader.next_frame() {
            // A flipped length field can make the frame look incomplete —
            // the stream stalls, which a real peer handles as a timeout.
            Ok(None) => {}
            Ok(Some(_)) => {
                return Err(TestCaseError::fail(format!(
                    "bit {bit} at byte {pos} decoded as a valid frame"
                )))
            }
            Err(FrameError::BadMagic(_))
            | Err(FrameError::TooLarge(_))
            | Err(FrameError::ChecksumMismatch { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    #[test]
    fn duplication_decodes_to_two_identical_messages(msg in arb_message()) {
        let frame = encode_frame(&msg.encode());
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        reader.feed(&frame);
        let first = reader
            .next_frame()
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .ok_or_else(|| TestCaseError::fail("first copy missing"))?;
        let second = reader
            .next_frame()
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .ok_or_else(|| TestCaseError::fail("second copy missing"))?;
        prop_assert_eq!(&first, &second);
        let decoded = Message::decode(&first)
            .map_err(|e| TestCaseError::fail(format!("decode: {e}")))?;
        prop_assert_eq!(decoded, msg);
    }
}
