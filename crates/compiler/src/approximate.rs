//! Approximate compilation — the paper's §VII direction: "the variational
//! quantum simulation is a numerical optimization algorithm. It is thus
//! possible to allow approximate compilation for more aggressive compiler
//! optimization."
//!
//! A Pauli-evolution block with rotation angle φ deviates from identity by
//! at most `|φ|/2` in spectral norm (`‖exp(-i·φ/2·P) − I‖ = 2|sin(φ/4)| ≤
//! |φ|/2`), so blocks whose optimized angle is tiny can be dropped with a
//! bounded, accumulating error. This pass filters the IR by angle threshold
//! *before* Merge-to-Root, trading a certified fidelity bound for CNOTs.

use ansatz::{IrEntry, PauliIr};

/// Result of angle-threshold filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximationReport {
    /// Entries kept.
    pub kept_entries: usize,
    /// Entries dropped.
    pub dropped_entries: usize,
    /// Upper bound on the accumulated operator-norm error:
    /// `Σ_dropped |φ|/2`.
    pub error_bound: f64,
}

/// Drops every IR entry whose evolution angle at `params` is below
/// `angle_threshold` (radians), renumbering parameters compactly. Returns
/// the filtered IR, the parameter values matching its new numbering, and
/// the report.
///
/// `angle_threshold = 0` keeps everything (and the bound is 0).
///
/// # Panics
///
/// Panics if `params` has the wrong length or the threshold is negative.
pub fn approximate_ir(
    ir: &PauliIr,
    params: &[f64],
    angle_threshold: f64,
) -> (PauliIr, Vec<f64>, ApproximationReport) {
    assert_eq!(
        params.len(),
        ir.num_parameters(),
        "parameter count mismatch"
    );
    assert!(angle_threshold >= 0.0, "threshold must be non-negative");

    let mut out = PauliIr::new(ir.num_qubits(), ir.initial_state());
    let mut new_params: Vec<f64> = Vec::new();
    let mut param_map: Vec<Option<usize>> = vec![None; ir.num_parameters()];
    let mut dropped = 0usize;
    let mut error_bound = 0.0;

    for e in ir.entries() {
        let angle = e.rotation_angle(params[e.param]);
        if angle.abs() < angle_threshold {
            dropped += 1;
            error_bound += angle.abs() / 2.0;
            continue;
        }
        let new_idx = *param_map[e.param].get_or_insert_with(|| {
            new_params.push(params[e.param]);
            new_params.len() - 1
        });
        out.push(IrEntry {
            string: e.string,
            param: new_idx,
            coefficient: e.coefficient,
        });
    }

    let report = ApproximationReport {
        kept_entries: out.len(),
        dropped_entries: dropped,
        error_bound,
    };
    (out, new_params, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansatz::uccsd::UccsdAnsatz;

    fn sample() -> (PauliIr, Vec<f64>) {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        // Mixed magnitudes: some parameters essentially zero.
        let params = vec![0.2, 1e-6, -0.15, 2e-7, 0.0, 0.3, -1e-5, 0.08];
        (ir, params)
    }

    #[test]
    fn zero_threshold_is_identity() {
        let (ir, params) = sample();
        let (out, p2, report) = approximate_ir(&ir, &params, 0.0);
        assert_eq!(out.len(), ir.len());
        assert_eq!(report.dropped_entries, 0);
        assert_eq!(report.error_bound, 0.0);
        assert_eq!(p2.len(), ir.num_parameters());
    }

    #[test]
    fn tiny_angles_are_dropped_with_bound() {
        let (ir, params) = sample();
        let (out, _, report) = approximate_ir(&ir, &params, 1e-3);
        assert!(report.dropped_entries > 0);
        assert!(out.len() < ir.len());
        assert!(report.error_bound < 1e-3 * report.dropped_entries as f64 / 2.0 + 1e-12);
        assert_eq!(out.len() + report.dropped_entries, ir.len());
    }

    #[test]
    fn kept_entries_preserve_angles() {
        let (ir, params) = sample();
        let (out, p2, _) = approximate_ir(&ir, &params, 1e-3);
        // Every surviving entry must evolve by exactly its original angle.
        for e in out.entries() {
            let original = ir
                .entries()
                .iter()
                .find(|o| o.string == e.string && (o.coefficient - e.coefficient).abs() < 1e-15)
                .expect("entry originates from the input IR");
            assert!(
                (e.rotation_angle(p2[e.param]) - original.rotation_angle(params[original.param]))
                    .abs()
                    < 1e-15
            );
        }
    }

    #[test]
    fn dropping_everything_leaves_reference_state() {
        let (ir, _) = sample();
        let zeros = vec![0.0; ir.num_parameters()];
        let (out, p2, report) = approximate_ir(&ir, &zeros, 1e-12);
        assert!(out.is_empty());
        assert!(p2.is_empty());
        assert_eq!(report.dropped_entries, ir.len());
        assert_eq!(report.error_bound, 0.0);
    }

    #[test]
    fn parameters_renumber_compactly() {
        let (ir, params) = sample();
        let (out, p2, _) = approximate_ir(&ir, &params, 1e-3);
        assert_eq!(out.num_parameters(), p2.len());
        // Parameter ids must be a contiguous 0..k range.
        let max = out.entries().iter().map(|e| e.param).max().unwrap_or(0);
        assert_eq!(max + 1, p2.len());
    }
}
