//! SABRE swap-insertion routing — the paper's compiler baseline
//! (Li, Ding, Xie, ASPLOS'19 \[52\]), reimplemented from the publication.
//!
//! SABRE maintains a *front layer* of gates whose dependencies are resolved,
//! executes those that are hardware-adjacent, and otherwise inserts the SWAP
//! that minimizes a distance heuristic over the front layer plus a lookahead
//! window, with a decay factor discouraging ping-ponging on the same qubits.
//! The initial layout is improved with the bidirectional
//! forward–backward pass from the same paper ([`sabre_layout`]).

use arch::Topology;
use circuit::{Circuit, Gate};

use crate::error::CompileError;
use crate::layout::Layout;

/// Options for SABRE routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SabreOptions {
    /// Size of the lookahead (extended) gate set.
    pub lookahead: usize,
    /// Weight of the lookahead term in the heuristic.
    pub lookahead_weight: f64,
    /// Decay increment per swap on the involved qubits.
    pub decay_delta: f64,
    /// Reset the decay table after this many swaps.
    pub decay_reset: usize,
}

impl Default for SabreOptions {
    fn default() -> Self {
        SabreOptions {
            lookahead: 20,
            lookahead_weight: 0.5,
            decay_delta: 0.001,
            decay_reset: 5,
        }
    }
}

/// Result of SABRE routing.
#[derive(Debug, Clone, PartialEq)]
pub struct SabreOutput {
    /// The routed physical circuit (SWAPs included as [`Gate::Swap`]).
    pub circuit: Circuit,
    /// The layout after the last gate.
    pub final_layout: Layout,
    /// SWAPs inserted.
    pub swap_count: usize,
}

/// Routes a logical circuit onto `topology` starting from `initial_layout`.
///
/// # Panics
///
/// Panics if the topology has fewer qubits than the circuit or is
/// disconnected. Use [`try_sabre_route`] for a typed error instead.
pub fn sabre_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    options: SabreOptions,
) -> SabreOutput {
    match try_sabre_route(circuit, topology, initial_layout, options) {
        Ok(out) => out,
        Err(e) => panic!("sabre_route: {e}"),
    }
}

/// Fallible [`sabre_route`].
///
/// # Errors
///
/// [`CompileError::TopologyTooSmall`] if the topology cannot host the
/// circuit, [`CompileError::Disconnected`] if the coupling graph is not
/// connected.
pub fn try_sabre_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    options: SabreOptions,
) -> Result<SabreOutput, CompileError> {
    if topology.num_qubits() < circuit.num_qubits() {
        return Err(CompileError::TopologyTooSmall {
            needed: circuit.num_qubits(),
            available: topology.num_qubits(),
        });
    }
    if !topology.is_connected() {
        // Report a concrete unreachable pair for the error message.
        let (a, b) = disconnected_pair(topology);
        return Err(CompileError::Disconnected { a, b });
    }
    let mut span = obs::span("compiler.sabre.route");
    span.record("gates", circuit.gates().len());
    let dist = topology.distance_matrix();
    let gates = circuit.gates();
    let n_gates = gates.len();

    // Dependency graph: each gate depends on the previous gate touching any
    // of its qubits.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n_gates];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_gates];
    {
        let mut last: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, g) in gates.iter().enumerate() {
            for q in g.qubits() {
                if let Some(prev) = last[q] {
                    if !deps[i].contains(&prev) {
                        deps[i].push(prev);
                        dependents[prev].push(i);
                    }
                }
                last[q] = Some(i);
            }
        }
    }
    let mut unresolved: Vec<usize> = deps.iter().map(Vec::len).collect();

    // The ordered list of remaining two-qubit gates, for the lookahead set.
    let two_qubit_order: Vec<usize> = (0..n_gates).filter(|&i| gates[i].is_two_qubit()).collect();
    let mut next_2q_cursor = 0usize;
    let mut executed = vec![false; n_gates];

    let mut front: Vec<usize> = (0..n_gates).filter(|&i| unresolved[i] == 0).collect();
    let mut layout = initial_layout;
    let mut out = Circuit::new(topology.num_qubits());
    let mut swap_count = 0usize;
    let mut decay = vec![1.0f64; topology.num_qubits()];
    let mut swaps_since_reset = 0usize;
    let mut swaps_since_progress = 0usize;

    while !front.is_empty() {
        // Execute everything executable in the front layer.
        let mut progressed = false;
        let mut i = 0;
        while i < front.len() {
            let g = front[i];
            let executable = match gates[g] {
                ref sg if !sg.is_two_qubit() => true,
                ref tg => {
                    let qs = tg.qubits();
                    topology.are_connected(layout.physical(qs[0]), layout.physical(qs[1]))
                }
            };
            if executable {
                out.push(gates[g].remapped(|q| layout.physical(q)));
                executed[g] = true;
                front.swap_remove(i);
                for &d in &dependents[g] {
                    unresolved[d] -= 1;
                    if unresolved[d] == 0 {
                        front.push(d);
                    }
                }
                progressed = true;
            } else {
                i += 1;
            }
        }
        if progressed {
            swaps_since_progress = 0;
            continue;
        }
        if front.is_empty() {
            break;
        }

        // Advance the lookahead cursor past executed gates.
        while next_2q_cursor < two_qubit_order.len() && executed[two_qubit_order[next_2q_cursor]] {
            next_2q_cursor += 1;
        }

        // Safety valve: if the heuristic thrashes, route the first blocked
        // gate directly along a shortest path.
        if swaps_since_progress > 4 * topology.num_qubits() {
            let g = front[0];
            let qs = gates[g].qubits();
            let (pc, pt) = (layout.physical(qs[0]), layout.physical(qs[1]));
            // Connectivity was checked on entry, so a path always exists.
            let Some(path) = topology.try_shortest_path(pc, pt) else {
                unreachable!("connected topology has a path {pc}→{pt}")
            };
            for w in path.windows(2).take(path.len().saturating_sub(2)) {
                out.push(Gate::Swap(w[0], w[1]));
                layout.swap_physical(w[0], w[1]);
                swap_count += 1;
            }
            swaps_since_progress = 0;
            continue;
        }

        // Candidate swaps: edges touching a physical home of a front-layer
        // two-qubit gate operand.
        let mut involved = vec![false; topology.num_qubits()];
        for &g in &front {
            if gates[g].is_two_qubit() {
                for q in gates[g].qubits() {
                    involved[layout.physical(q)] = true;
                }
            }
        }
        let front_2q: Vec<(usize, usize)> = front
            .iter()
            .filter(|&&g| gates[g].is_two_qubit())
            .map(|&g| {
                let qs = gates[g].qubits();
                (qs[0], qs[1])
            })
            .collect();
        let extended: Vec<(usize, usize)> = two_qubit_order[next_2q_cursor..]
            .iter()
            .filter(|&&g| !executed[g])
            .take(options.lookahead)
            .map(|&g| {
                let qs = gates[g].qubits();
                (qs[0], qs[1])
            })
            .collect();

        let mut best: Option<(f64, (usize, usize))> = None;
        for &(pa, pb) in topology.edges() {
            if !involved[pa] && !involved[pb] {
                continue;
            }
            // Tentatively swap and score.
            let mut tentative = layout.clone();
            tentative.swap_physical(pa, pb);
            let front_cost: f64 = front_2q
                .iter()
                .map(|&(a, b)| dist[tentative.physical(a)][tentative.physical(b)] as f64)
                .sum::<f64>()
                / front_2q.len().max(1) as f64;
            let ext_cost: f64 = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&(a, b)| dist[tentative.physical(a)][tentative.physical(b)] as f64)
                    .sum::<f64>()
                    / extended.len() as f64
            };
            let score =
                decay[pa].max(decay[pb]) * (front_cost + options.lookahead_weight * ext_cost);
            let better = match best {
                None => true,
                Some((s, _)) => score < s - 1e-12,
            };
            if better {
                best = Some((score, (pa, pb)));
            }
        }
        // A blocked two-qubit gate marks its physical homes as involved, and
        // every qubit of a connected (n ≥ 2) graph has an incident edge.
        let Some((_, (pa, pb))) = best else {
            unreachable!("front layer blocked with no candidate swaps")
        };
        out.push(Gate::Swap(pa, pb));
        layout.swap_physical(pa, pb);
        swap_count += 1;
        swaps_since_progress += 1;
        decay[pa] += options.decay_delta;
        decay[pb] += options.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= options.decay_reset {
            decay.fill(1.0);
            swaps_since_reset = 0;
        }
    }

    span.record("swaps", swap_count);
    obs::counter_add("compiler.sabre.route.swaps", swap_count as u64);
    Ok(SabreOutput {
        circuit: out,
        final_layout: layout,
        swap_count,
    })
}

/// Finds one pair of disconnected qubits for error reporting; falls back to
/// `(0, 0)` for the degenerate empty topology.
pub(crate) fn disconnected_pair(topology: &Topology) -> (usize, usize) {
    for q in 1..topology.num_qubits() {
        if topology.try_shortest_path(0, q).is_none() {
            return (0, q);
        }
    }
    (0, 0)
}

/// SABRE's bidirectional initial-layout search: route the circuit forward
/// and backward, feeding each pass's final layout into the next, for
/// `rounds` round trips. Returns the resulting initial layout.
pub fn sabre_layout(
    circuit: &Circuit,
    topology: &Topology,
    rounds: usize,
    options: SabreOptions,
) -> Layout {
    let mut span = obs::span("compiler.sabre.layout");
    span.record("rounds", rounds);
    let mut layout = Layout::trivial(circuit.num_qubits(), topology.num_qubits());
    let reversed = {
        let mut r = Circuit::new(circuit.num_qubits());
        for g in circuit.gates().iter().rev() {
            r.push(*g);
        }
        r
    };
    for _ in 0..rounds {
        let fwd = sabre_route(circuit, topology, layout, options);
        layout = fwd.final_layout;
        let bwd = sabre_route(&reversed, topology, layout, options);
        layout = bwd.final_layout;
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Complex64;
    use sim::Statevector;

    fn line_circuit() -> Circuit {
        // CNOT between the two ends of a 4-qubit register.
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 3,
        });
        c
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 1,
            target: 2,
        });
        let t = Topology::line(3);
        let out = sabre_route(&c, &t, Layout::trivial(3, 3), SabreOptions::default());
        assert_eq!(out.swap_count, 0);
        assert_eq!(out.circuit.cnot_count(), 2);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let t = Topology::line(4);
        let out = sabre_route(
            &line_circuit(),
            &t,
            Layout::trivial(4, 4),
            SabreOptions::default(),
        );
        assert!(
            out.swap_count >= 2,
            "distance-3 CNOT needs ≥ 2 swaps, got {}",
            out.swap_count
        );
        // Every emitted 2q gate must respect the coupling.
        for g in &out.circuit {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(t.are_connected(qs[0], qs[1]), "{g}");
            }
        }
    }

    /// Routed circuit must be semantically equal to the original, modulo
    /// the qubit permutation of the final layout.
    fn assert_routed_equivalent(c: &Circuit, t: &Topology) {
        let layout = Layout::trivial(c.num_qubits(), t.num_qubits());
        let out = sabre_route(c, t, layout, SabreOptions::default());

        let mut logical = Statevector::zero_state(c.num_qubits());
        logical.apply_circuit(c);
        let mut physical = Statevector::zero_state(t.num_qubits());
        physical.apply_circuit(&out.circuit);

        let n = c.num_qubits();
        let mut extracted = vec![Complex64::ZERO; 1 << n];
        for (pi, amp) in physical.amplitudes().iter().enumerate() {
            if amp.norm_sqr() < 1e-24 {
                continue;
            }
            let mut li = 0u64;
            for p in 0..t.num_qubits() {
                if (pi >> p) & 1 == 1 {
                    match out.final_layout.logical(p) {
                        Some(l) => li |= 1 << l,
                        None => panic!("ancilla excited"),
                    }
                }
            }
            extracted[li as usize] += *amp;
        }
        let overlap: Complex64 = logical
            .amplitudes()
            .iter()
            .zip(&extracted)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        assert!(
            (overlap.norm() - 1.0).abs() < 1e-9,
            "|overlap| = {}",
            overlap.norm()
        );
    }

    #[test]
    fn routing_preserves_semantics_on_line() {
        assert_routed_equivalent(&line_circuit(), &Topology::line(4));
    }

    #[test]
    fn routing_preserves_semantics_on_xtree() {
        let mut c = Circuit::new(5);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 4,
        });
        c.push(Gate::Ry(2, 0.3));
        c.push(Gate::Cnot {
            control: 4,
            target: 2,
        });
        c.push(Gate::Cnot {
            control: 1,
            target: 3,
        });
        c.push(Gate::Rz(3, 0.7));
        c.push(Gate::Cnot {
            control: 3,
            target: 0,
        });
        assert_routed_equivalent(&c, &Topology::xtree(8));
    }

    #[test]
    fn routing_preserves_semantics_on_grid17() {
        let mut c = Circuit::new(6);
        for k in 0..6 {
            c.push(Gate::Ry(k, 0.1 + k as f64 * 0.2));
        }
        for (a, b) in [(0, 5), (2, 4), (1, 3), (5, 2), (0, 4)] {
            c.push(Gate::Cnot {
                control: a,
                target: b,
            });
        }
        assert_routed_equivalent(&c, &Topology::grid17q());
    }

    #[test]
    fn sabre_layout_reduces_swaps_vs_trivial() {
        // A circuit whose hot pair is far apart under the trivial layout.
        let mut c = Circuit::new(6);
        for _ in 0..10 {
            c.push(Gate::Cnot {
                control: 0,
                target: 5,
            });
        }
        let t = Topology::line(6);
        let trivial =
            sabre_route(&c, &t, Layout::trivial(6, 6), SabreOptions::default()).swap_count;
        let improved = sabre_layout(&c, &t, 2, SabreOptions::default());
        let tuned = sabre_route(&c, &t, improved, SabreOptions::default()).swap_count;
        assert!(
            tuned <= trivial,
            "layout search must not hurt: {tuned} vs {trivial}"
        );
        assert!(
            tuned <= 1,
            "qubits 0 and 5 should end up adjacent, swaps = {tuned}"
        );
    }

    #[test]
    fn single_qubit_only_circuit_passes_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Rz(2, 0.4));
        let out = sabre_route(
            &c,
            &Topology::xtree(5),
            Layout::trivial(3, 5),
            SabreOptions::default(),
        );
        assert_eq!(out.swap_count, 0);
        assert_eq!(out.circuit.gate_count(), 2);
    }
}
