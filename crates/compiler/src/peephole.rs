//! Peephole circuit optimization — the paper's §VII "deeper compiler
//! optimization" direction ("other passes in the traditional compilation
//! flow, e.g., gate cancellation, may be customized to variational quantum
//! chemistry simulation programs").
//!
//! The pass repeatedly applies local rewrites until a fixed point:
//!
//! * cancel adjacent self-inverse pairs (`H·H`, `X·X`, `Y·Y`, `Z·Z`,
//!   `CNOT·CNOT`, `SWAP·SWAP`, `S·S†`);
//! * merge adjacent rotations on the same axis and qubit
//!   (`Rz(a)·Rz(b) → Rz(a+b)`), dropping angles that become ≈ 0;
//! * commute through *disjoint* gates only (adjacency is tracked per
//!   qubit, so rewrites never reorder gates that share a qubit).
//!
//! This is exactly the cancellation opportunity between consecutive Pauli
//! simulation circuits: the mirror basis-change layer of one block often
//! meets the opening layer of the next.

use circuit::{Circuit, Gate};

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeepholeStats {
    /// Self-inverse pairs removed.
    pub pairs_cancelled: usize,
    /// Rotation pairs merged.
    pub rotations_merged: usize,
    /// Near-zero rotations dropped.
    pub rotations_dropped: usize,
}

/// Runs the peephole optimizer to a fixed point; returns the optimized
/// circuit and the rewrite statistics.
pub fn peephole_optimize(circuit: &Circuit) -> (Circuit, PeepholeStats) {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut stats = PeepholeStats::default();

    loop {
        let mut changed = false;

        // Drop near-zero rotations first.
        let before = gates.len();
        gates.retain(|g| match g {
            Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) => t.abs() > 1e-12,
            _ => true,
        });
        if gates.len() != before {
            stats.rotations_dropped += before - gates.len();
            changed = true;
        }

        // Scan for adjacent-in-dependency-order rewrites.
        let mut i = 0;
        'scan: while i < gates.len() {
            let qs = gates[i].qubits();
            // Find the next gate sharing any qubit with gates[i].
            let mut j = i + 1;
            while j < gates.len() {
                let qj = gates[j].qubits();
                if qj.iter().any(|q| qs.contains(q)) {
                    // Candidate neighbor found; only rewrite when the pair
                    // touches identical qubit sets (otherwise the shared
                    // qubit blocks further scanning).
                    if let Some(rewrite) = rewrite_pair(&gates[i], &gates[j]) {
                        match rewrite {
                            Rewrite::CancelBoth => {
                                gates.remove(j);
                                gates.remove(i);
                                stats.pairs_cancelled += 1;
                            }
                            Rewrite::Replace(g) => {
                                gates[i] = g;
                                gates.remove(j);
                                stats.rotations_merged += 1;
                            }
                        }
                        changed = true;
                        continue 'scan; // re-examine position i
                    }
                    break;
                }
                j += 1;
            }
            i += 1;
        }

        if !changed {
            break;
        }
    }

    let mut out = Circuit::new(circuit.num_qubits());
    for g in gates {
        out.push(g);
    }
    (out, stats)
}

enum Rewrite {
    CancelBoth,
    Replace(Gate),
}

fn rewrite_pair(a: &Gate, b: &Gate) -> Option<Rewrite> {
    use Gate::*;
    match (*a, *b) {
        // Self-inverse pairs.
        (H(p), H(q)) | (X(p), X(q)) | (Y(p), Y(q)) | (Z(p), Z(q)) if p == q => {
            Some(Rewrite::CancelBoth)
        }
        (S(p), Sdg(q)) | (Sdg(p), S(q)) if p == q => Some(Rewrite::CancelBoth),
        (
            Cnot {
                control: c1,
                target: t1,
            },
            Cnot {
                control: c2,
                target: t2,
            },
        ) if c1 == c2 && t1 == t2 => Some(Rewrite::CancelBoth),
        (Swap(a1, b1), Swap(a2, b2)) if (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2) => {
            Some(Rewrite::CancelBoth)
        }
        // Rotation merging.
        (Rx(p, t1), Rx(q, t2)) if p == q => Some(merge_rotation(Rx(p, t1 + t2), t1 + t2)),
        (Ry(p, t1), Ry(q, t2)) if p == q => Some(merge_rotation(Ry(p, t1 + t2), t1 + t2)),
        (Rz(p, t1), Rz(q, t2)) if p == q => Some(merge_rotation(Rz(p, t1 + t2), t1 + t2)),
        // S·S = Z (keeps the pass closed over the gate set).
        (S(p), S(q)) if p == q => Some(Rewrite::Replace(Z(p))),
        (Sdg(p), Sdg(q)) if p == q => Some(Rewrite::Replace(Z(p))),
        _ => None,
    }
}

fn merge_rotation(g: Gate, total: f64) -> Rewrite {
    if total.abs() < 1e-12 {
        Rewrite::CancelBoth
    } else {
        Rewrite::Replace(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(original: &Circuit, optimized: &Circuit) {
        // Compare action on a few basis states via the numeric simulator
        // is done in sim-dependent tests; here compare structurally by
        // reapplying the optimizer (idempotence) and gate-count sanity.
        let (again, _) = peephole_optimize(optimized);
        assert_eq!(
            again.gates(),
            optimized.gates(),
            "optimizer must be idempotent"
        );
        assert!(optimized.gate_count() <= original.gate_count());
    }

    #[test]
    fn cancels_adjacent_hadamards() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        c.push(Gate::X(1));
        let (opt, stats) = peephole_optimize(&c);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(stats.pairs_cancelled, 1);
        assert_equivalent(&c, &opt);
    }

    #[test]
    fn merges_rotations_and_drops_zero() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.4));
        c.push(Gate::Rz(0, 0.6));
        let (opt, stats) = peephole_optimize(&c);
        assert_eq!(opt.gates(), &[Gate::Rz(0, 1.0)]);
        assert_eq!(stats.rotations_merged, 1);

        let mut d = Circuit::new(1);
        d.push(Gate::Rx(0, 0.4));
        d.push(Gate::Rx(0, -0.4));
        let (opt, stats) = peephole_optimize(&d);
        assert!(opt.is_empty());
        assert_eq!(stats.pairs_cancelled, 1);
    }

    #[test]
    fn disjoint_gates_do_not_block_cancellation() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Rz(2, 0.3)); // disjoint qubit
        c.push(Gate::H(0));
        let (opt, _) = peephole_optimize(&c);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(opt.gates()[0], Gate::Rz(2, 0.3));
    }

    #[test]
    fn shared_qubit_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        }); // touches qubit 0
        c.push(Gate::H(0));
        let (opt, _) = peephole_optimize(&c);
        assert_eq!(opt.gate_count(), 3, "CNOT must block the H·H rewrite");
    }

    #[test]
    fn cnot_pairs_cancel_through_disjoint_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rz(3, 0.5));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let (opt, _) = peephole_optimize(&c);
        assert_eq!(opt.cnot_count(), 0);
    }

    #[test]
    fn s_pairs_become_z_then_cancel_z() {
        let mut c = Circuit::new(1);
        c.push(Gate::S(0));
        c.push(Gate::S(0));
        c.push(Gate::Z(0));
        let (opt, _) = peephole_optimize(&c);
        // S·S → Z, then Z·Z → nothing.
        assert!(opt.is_empty(), "left: {:?}", opt.gates());
    }

    #[test]
    fn cascading_cancellations_reach_fixed_point() {
        // X (H H) X: inner pair cancels, then outer pair.
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        c.push(Gate::X(0));
        let (opt, stats) = peephole_optimize(&c);
        assert!(opt.is_empty());
        assert_eq!(stats.pairs_cancelled, 2);
    }

    #[test]
    fn swap_pairs_cancel_in_either_orientation() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        c.push(Gate::Swap(1, 0));
        let (opt, _) = peephole_optimize(&c);
        assert!(opt.is_empty());
    }
}
