//! Commutation-aware Pauli-string reordering.
//!
//! Evolutions of *commuting* Pauli strings can be freely interchanged
//! (`[P, Q] = 0 ⇒ exp(iαP)·exp(iβQ) = exp(iβQ)·exp(iαP)`), which is the
//! set-partitioning freedom Cowtan et al. exploit (paper reference \[70\]).
//! This pass bubbles adjacent commuting entries so that strings with
//! similar supports and bases sit next to each other, where the peephole
//! pass can cancel their shared basis-change layers and CNOT-ladder tails.
//!
//! Only *adjacent, commuting* entries are ever exchanged, so the compiled
//! unitary is exactly preserved — verified against statevector simulation
//! in the test suite.

use pauli::PauliString;

use ansatz::{IrEntry, PauliIr};

/// Affinity between two strings: how much adjacent synthesis is likely to
/// cancel. Identical operators on a qubit count double (the basis-change
/// layers cancel), shared support counts once (CNOT-ladder overlap).
fn affinity(a: &PauliString, b: &PauliString) -> u32 {
    let support = a.support_mask() & b.support_mask();
    let equal_ops = !((a.x_mask() ^ b.x_mask()) | (a.z_mask() ^ b.z_mask()));
    support.count_ones() + (equal_ops & support).count_ones()
}

/// Reorders the IR by repeated adjacent swaps of commuting entries,
/// greedily improving the summed neighbor affinity. Returns the reordered
/// IR and the number of swaps performed.
pub fn reorder_for_cancellation(ir: &PauliIr) -> (PauliIr, usize) {
    let mut entries: Vec<IrEntry> = ir.entries().to_vec();
    let mut total_swaps = 0usize;

    for _pass in 0..24 {
        let mut swapped = false;
        for i in 0..entries.len().saturating_sub(1) {
            let (a, b) = (entries[i], entries[i + 1]);
            if !a.string.commutes_with(&b.string) {
                continue;
            }
            let prev = if i > 0 {
                Some(entries[i - 1].string)
            } else {
                None
            };
            let next = if i + 2 < entries.len() {
                Some(entries[i + 2].string)
            } else {
                None
            };
            let score = |first: &PauliString, second: &PauliString| {
                prev.map_or(0, |p| affinity(&p, first)) + next.map_or(0, |n| affinity(second, &n))
            };
            if score(&b.string, &a.string) > score(&a.string, &b.string) {
                entries.swap(i, i + 1);
                swapped = true;
                total_swaps += 1;
            }
        }
        if !swapped {
            break;
        }
    }

    let mut out = PauliIr::new(ir.num_qubits(), ir.initial_state());
    for e in entries {
        out.push(e);
    }
    (out, total_swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peephole::peephole_optimize;
    use crate::synthesis::{synthesize_chain, synthesize_chain_nominal};
    use ansatz::uccsd::UccsdAnsatz;
    use numeric::Complex64;
    use sim::Statevector;

    fn assert_same_unitary(a: &PauliIr, b: &PauliIr, params: &[f64]) {
        let ca = synthesize_chain(a, params);
        let cb = synthesize_chain(b, params);
        let mut sa = Statevector::zero_state(a.num_qubits());
        // A non-trivial input probe.
        for q in 0..a.num_qubits() {
            sa.apply_gate(&circuit::Gate::Ry(q, 0.21 + 0.17 * q as f64));
        }
        let mut sb = sa.clone();
        sa.apply_circuit(&ca);
        sb.apply_circuit(&cb);
        let overlap: Complex64 = sa
            .amplitudes()
            .iter()
            .zip(sb.amplitudes())
            .map(|(x, y)| x.conj() * *y)
            .sum();
        assert!(
            overlap.approx_eq(Complex64::ONE, 1e-9),
            "reordering changed the unitary: overlap {overlap}"
        );
    }

    #[test]
    fn reordering_preserves_the_unitary_for_uccsd() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let (reordered, _) = reorder_for_cancellation(&ir);
        let params: Vec<f64> = (0..8).map(|k| 0.07 * (k as f64 + 1.0)).collect();
        assert_same_unitary(&ir, &reordered, &params);
    }

    #[test]
    fn reordering_never_moves_noncommuting_pairs() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let (reordered, _) = reorder_for_cancellation(&ir);
        // Reconstruct the relative order of every non-commuting pair and
        // check it is unchanged.
        let originals = ir.entries();
        let find = |e: &IrEntry| {
            originals
                .iter()
                .position(|o| o.string == e.string && o.param == e.param)
                .expect("entry exists")
        };
        for i in 0..reordered.entries().len() {
            for j in (i + 1)..reordered.entries().len() {
                let (a, b) = (reordered.entries()[i], reordered.entries()[j]);
                if !a.string.commutes_with(&b.string) {
                    assert!(
                        find(&a) < find(&b),
                        "non-commuting pair {} / {} reordered",
                        a.string,
                        b.string
                    );
                }
            }
        }
    }

    #[test]
    fn reorder_plus_peephole_does_not_increase_gate_count() {
        for (m, e) in [(2usize, 2usize), (3, 2), (4, 2)] {
            let ir = UccsdAnsatz::new(m, e).into_ir();
            let (baseline, _) = peephole_optimize(&synthesize_chain_nominal(&ir));
            let (reordered, _) = reorder_for_cancellation(&ir);
            let (optimized, _) = peephole_optimize(&synthesize_chain_nominal(&reordered));
            assert!(
                optimized.gate_count() <= baseline.gate_count(),
                "({m},{e}): {} vs baseline {}",
                optimized.gate_count(),
                baseline.gate_count()
            );
        }
    }

    #[test]
    fn affinity_prefers_identical_strings() {
        let a: PauliString = "XXYY".parse().unwrap();
        let b: PauliString = "XXYY".parse().unwrap();
        let c: PauliString = "ZZII".parse().unwrap();
        assert!(affinity(&a, &b) > affinity(&a, &c));
    }

    #[test]
    fn reorder_is_idempotent() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let (once, _) = reorder_for_cancellation(&ir);
        let (twice, swaps) = reorder_for_cancellation(&once);
        assert_eq!(once.entries(), twice.entries());
        assert_eq!(swaps, 0);
    }
}
