//! Merge-to-Root combined synthesis and routing — the paper's Algorithm 3
//! (§V-B), implemented as a verified-correct variant.
//!
//! For every Pauli string, the compiler adapts the CNOT tree to the
//! *current* mapping and the tree architecture instead of routing a fixed
//! chain. Per block:
//!
//! 1. **Swap phase** (persistent, before any CNOT): sweeping levels from the
//!    leaves toward the root, a parent outside the string's support that has
//!    two or more support children gets the best child swapped into it
//!    (consolidation, paper's swap rule); optionally lone children are
//!    swapped upward when a lookahead says the move pays off in upcoming
//!    strings. Swaps into still-|0⟩ positions cost 2 CNOTs, occupied ones 3.
//! 2. **Merge phase**: the support positions are joined by their minimal
//!    connecting subtree; parity flows along it into the merge root.
//!    Non-support *bridge* nodes on the subtree are traversed with a
//!    pre/post CNOT pair that cancels their content — 2 extra CNOTs per
//!    bridge per block, no layout change.
//! 3. The center rotation, then the exact mirror of the merge-phase CNOTs.
//!
//! Deviation from the paper, documented in DESIGN.md: Algorithm 3 as printed
//! interleaves swaps with CNOT emission and mirrors the CNOTs positionally,
//! which un-computes incorrectly whenever an accumulator is swapped upward
//! after merging (its mirror CNOT is no longer adjacent). Hoisting the swaps
//! before the CNOT phase and bridging across non-members preserves the
//! algorithm's cost profile (near-zero overhead under the hierarchical
//! layout) while making every block unitarily exact — which the test suite
//! checks against direct Pauli evolution.

use arch::Topology;
use circuit::{Circuit, Gate};

use ansatz::PauliIr;

use crate::error::CompileError;
use crate::layout::Layout;

/// Policy for a support qubit whose parent holds no other support qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoneChildPolicy {
    /// Never swap lone children; rely on bridging.
    Never,
    /// Swap the lone child upward when its logical qubit appears in more of
    /// the next `n` strings than the parent's occupant.
    Lookahead(usize),
    /// Always swap lone children toward the root (paper's literal rule).
    Always,
}

/// Options for [`merge_to_root`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtrOptions {
    /// Swap a support child into a non-support parent shared by ≥ 2 support
    /// children (consolidation).
    pub consolidate_swaps: bool,
    /// Lone-child handling.
    pub lone_child: LoneChildPolicy,
}

impl Default for MtrOptions {
    fn default() -> Self {
        MtrOptions {
            consolidate_swaps: true,
            lone_child: LoneChildPolicy::Lookahead(32),
        }
    }
}

/// Result of a Merge-to-Root compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct MtrOutput {
    /// The hardware-compatible circuit over physical qubits.
    pub circuit: Circuit,
    /// The final logical→physical layout after all persistent swaps.
    pub final_layout: Layout,
    /// Number of SWAP moves performed (each 2 or 3 CNOTs).
    pub swap_count: usize,
    /// Number of bridge traversals (each 2 extra CNOTs per block side pair).
    pub bridge_count: usize,
}

/// Compiles a Pauli IR onto a tree topology with Merge-to-Root.
///
/// `params` supplies the parameter values for the center rotations.
///
/// # Panics
///
/// Panics if the topology is not a tree with levels, the layout does not
/// match, or `params` is the wrong length. Use [`try_merge_to_root`] to get
/// a typed error instead.
pub fn merge_to_root(
    ir: &PauliIr,
    topology: &Topology,
    initial_layout: Layout,
    params: &[f64],
    options: MtrOptions,
) -> MtrOutput {
    match try_merge_to_root(ir, topology, initial_layout, params, options) {
        Ok(out) => out,
        Err(e) => panic!("merge_to_root: {e}"),
    }
}

/// Fallible [`merge_to_root`]: validates the topology, layout, and
/// parameter vector and returns a [`CompileError`] instead of panicking.
///
/// # Errors
///
/// [`CompileError::NotATree`] if the topology has no tree level structure
/// (cyclic or edge-built coupling graphs), [`CompileError::Disconnected`]
/// if support qubits cannot reach each other,
/// [`CompileError::ParameterCountMismatch`] / [`CompileError::LayoutMismatch`]
/// on inconsistent inputs.
pub fn try_merge_to_root(
    ir: &PauliIr,
    topology: &Topology,
    initial_layout: Layout,
    params: &[f64],
    options: MtrOptions,
) -> Result<MtrOutput, CompileError> {
    let Some(max_level) = topology.num_levels() else {
        return Err(CompileError::NotATree {
            qubits: topology.num_qubits(),
            edges: topology.edges().len(),
        });
    };
    if params.len() != ir.num_parameters() {
        return Err(CompileError::ParameterCountMismatch {
            expected: ir.num_parameters(),
            actual: params.len(),
        });
    }
    if initial_layout.num_logical() != ir.num_qubits()
        || initial_layout.num_physical() != topology.num_qubits()
    {
        return Err(CompileError::LayoutMismatch {
            layout_logical: initial_layout.num_logical(),
            layout_physical: initial_layout.num_physical(),
            ir_qubits: ir.num_qubits(),
            topology_qubits: topology.num_qubits(),
        });
    }

    let mut span = obs::span("compiler.mtr.merge");
    span.record("strings", ir.len());

    let mut layout = initial_layout;
    let mut circuit = Circuit::new(topology.num_qubits());
    let mut swap_count = 0usize;
    let mut bridge_count = 0usize;

    // Initial state: X gates on the physical homes of the |1⟩ logicals.
    for l in 0..ir.num_qubits() {
        if (ir.initial_state() >> l) & 1 == 1 {
            circuit.push(Gate::X(layout.physical(l)));
        }
    }

    // Positions that still hold |0⟩ (never touched by an occupied swap).
    let mut pristine: Vec<bool> = (0..topology.num_qubits())
        .map(|p| layout.logical(p).is_none())
        .collect();

    // Per-string future-occurrence counts for the lookahead heuristic.
    let occurrences: Vec<u64> = ir
        .entries()
        .iter()
        .map(|e| e.string.support_mask())
        .collect();

    for (idx, entry) in ir.entries().iter().enumerate() {
        let support = entry.string.support();
        if support.is_empty() {
            continue; // identity: global phase only
        }
        obs::histogram_record("compiler.mtr.string_weight", support.len() as f64);
        let angle = entry.rotation_angle(params[entry.param]);

        // --- Swap phase --------------------------------------------------
        if support.len() > 1 {
            swap_phase(
                topology,
                max_level,
                &mut layout,
                &mut circuit,
                &mut pristine,
                &support,
                &occurrences,
                idx,
                options,
                &mut swap_count,
            );
        }

        // --- Basis change (pre) ------------------------------------------
        crate::synthesis::basis_change(&mut circuit, &entry.string, false, |q| layout.physical(q));

        // --- Merge phase --------------------------------------------------
        let s_phys: Vec<usize> = support.iter().map(|&l| layout.physical(l)).collect();
        let (merge_cnots, merge_root, bridges) = plan_merge(topology, &s_phys)?;
        bridge_count += bridges;
        for &(c, t) in &merge_cnots {
            circuit.push(Gate::Cnot {
                control: c,
                target: t,
            });
        }
        circuit.push(Gate::Rz(merge_root, angle));
        for &(c, t) in merge_cnots.iter().rev() {
            circuit.push(Gate::Cnot {
                control: c,
                target: t,
            });
        }

        // --- Basis change (post) ------------------------------------------
        crate::synthesis::basis_change(&mut circuit, &entry.string, true, |q| layout.physical(q));
    }

    span.record("swaps", swap_count);
    span.record("bridges", bridge_count);
    Ok(MtrOutput {
        circuit,
        final_layout: layout,
        swap_count,
        bridge_count,
    })
}

/// Persistent locality swaps for one string (levels outer → inner).
#[allow(clippy::too_many_arguments)]
fn swap_phase(
    topology: &Topology,
    max_level: usize,
    layout: &mut Layout,
    circuit: &mut Circuit,
    pristine: &mut [bool],
    support: &[usize],
    occurrences: &[u64],
    current_idx: usize,
    options: MtrOptions,
    swap_count: &mut usize,
) {
    // Physical support set, updated as swaps happen.
    let mut in_support: Vec<bool> = vec![false; topology.num_qubits()];
    for &l in support {
        in_support[layout.physical(l)] = true;
    }

    fn future_occurrence(
        occurrences: &[u64],
        current_idx: usize,
        logical: Option<usize>,
        horizon: usize,
    ) -> usize {
        match logical {
            None => 0,
            Some(l) => occurrences[current_idx + 1..]
                .iter()
                .take(horizon)
                .filter(|mask| (*mask >> l) & 1 == 1)
                .count(),
        }
    }

    for level in (1..max_level).rev() {
        // Group support members at this level by parent.
        let mut by_parent: Vec<(usize, Vec<usize>)> = Vec::new();
        for p in 0..topology.num_qubits() {
            if !in_support[p] || topology.level(p) != Some(level) {
                continue;
            }
            // Level ≥ 1 in a tree topology implies a parent exists.
            let Some(parent) = topology.parent(p) else {
                unreachable!("non-root qubit {p} has a parent")
            };
            if in_support[parent] {
                continue; // already consolidated
            }
            match by_parent.iter_mut().find(|(q, _)| *q == parent) {
                Some((_, v)) => v.push(p),
                None => by_parent.push((parent, vec![p])),
            }
        }

        for (parent, children) in by_parent {
            let do_swap = if children.len() >= 2 {
                options.consolidate_swaps
            } else {
                match options.lone_child {
                    LoneChildPolicy::Never => false,
                    LoneChildPolicy::Always => true,
                    LoneChildPolicy::Lookahead(h) => {
                        let child_occ = future_occurrence(
                            occurrences,
                            current_idx,
                            layout.logical(children[0]),
                            h,
                        );
                        let parent_occ =
                            future_occurrence(occurrences, current_idx, layout.logical(parent), h);
                        child_occ > parent_occ
                    }
                }
            };
            if !do_swap {
                continue;
            }
            // Pick the child that appears in the most upcoming strings
            // (paper: "the qubit that will appear more times in the
            // follow-up Pauli strings").
            let horizon = match options.lone_child {
                LoneChildPolicy::Lookahead(h) => h,
                _ => 32,
            };
            // `by_parent` groups are created with at least one child.
            let Some(&best) = children.iter().max_by_key(|&&c| {
                future_occurrence(occurrences, current_idx, layout.logical(c), horizon)
            }) else {
                unreachable!("non-empty children")
            };
            emit_swap(circuit, pristine, best, parent, swap_count);
            layout.swap_physical(best, parent);
            in_support[best] = false;
            in_support[parent] = true;
        }
    }
}

/// Emits a swap as 2 CNOTs when the destination is a pristine |0⟩ position,
/// 3 otherwise, and updates the pristine tracking.
fn emit_swap(
    circuit: &mut Circuit,
    pristine: &mut [bool],
    from: usize,
    to: usize,
    swap_count: &mut usize,
) {
    *swap_count += 1;
    if pristine[to] {
        // (x, 0) → (0, x) with two CNOTs.
        circuit.push(Gate::Cnot {
            control: from,
            target: to,
        });
        circuit.push(Gate::Cnot {
            control: to,
            target: from,
        });
        pristine[to] = false;
        pristine[from] = true;
    } else {
        circuit.push(Gate::Swap(from, to));
        pristine.swap(to, from);
    }
}

/// A planned merge phase: the CNOT list (each `(control, target)` adjacent
/// in the topology), the merge root, and the bridge-node count.
type MergePlan = (Vec<(usize, usize)>, usize, usize);

/// Plans the merge-phase CNOT list over the minimal subtree connecting
/// `s_phys`. Returns `(cnots, merge_root, bridge_node_count)`; `cnots` is
/// emitted in order, each `(control, target)` adjacent in the topology.
fn plan_merge(topology: &Topology, s_phys: &[usize]) -> Result<MergePlan, CompileError> {
    if s_phys.len() == 1 {
        return Ok((Vec::new(), s_phys[0], 0));
    }
    let in_s: std::collections::HashSet<usize> = s_phys.iter().copied().collect();

    // Merge root: the support position closest to the tree root (minimal
    // level) — ties to the smallest id for determinism. Callers only reach
    // this with a non-empty support.
    let Some(&merge_root) = s_phys
        .iter()
        .min_by_key(|&&p| (topology.level(p).unwrap_or(usize::MAX), p))
    else {
        unreachable!("non-empty support")
    };

    // Minimal connecting subtree: union of tree paths from each support
    // position to the merge root. `parent_of[u]` points one hop toward the
    // merge root.
    let mut parent_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &s in s_phys {
        if s == merge_root {
            continue;
        }
        let Some(path) = topology.try_shortest_path(s, merge_root) else {
            return Err(CompileError::Disconnected {
                a: s,
                b: merge_root,
            });
        };
        for w in path.windows(2) {
            parent_of.insert(w[0], w[1]);
        }
    }

    // Children lists for a deterministic post-order traversal.
    let mut children: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    let mut nodes: Vec<usize> = parent_of.keys().copied().collect();
    nodes.sort_unstable();
    for &u in &nodes {
        children.entry(parent_of[&u]).or_default().push(u);
    }
    for v in children.values_mut() {
        v.sort_unstable();
    }

    let mut cnots = Vec::new();
    let mut bridges = 0usize;
    // Iterative post-order with bridge pre-CNOTs.
    fn emit(
        u: usize,
        merge_root: usize,
        in_s: &std::collections::HashSet<usize>,
        parent_of: &std::collections::HashMap<usize, usize>,
        children: &std::collections::HashMap<usize, Vec<usize>>,
        cnots: &mut Vec<(usize, usize)>,
        bridges: &mut usize,
    ) {
        let is_bridge = !in_s.contains(&u);
        if u != merge_root && is_bridge {
            *bridges += 1;
            cnots.push((u, parent_of[&u])); // pre-cancel the bridge content
        }
        if let Some(cs) = children.get(&u) {
            for &c in cs {
                emit(c, merge_root, in_s, parent_of, children, cnots, bridges);
            }
        }
        if u != merge_root {
            cnots.push((u, parent_of[&u]));
        }
    }
    emit(
        merge_root,
        merge_root,
        &in_s,
        &parent_of,
        &children,
        &mut cnots,
        &mut bridges,
    );

    Ok((cnots, merge_root, bridges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::hierarchical_initial_layout;
    use ansatz::uccsd::UccsdAnsatz;
    use ansatz::IrEntry;
    use numeric::Complex64;
    use sim::Statevector;

    /// Simulates the compiled physical circuit and compares with the direct
    /// Pauli-IR evolution mapped through the final layout.
    fn assert_equivalent(ir: &PauliIr, topology: &Topology, params: &[f64], options: MtrOptions) {
        let layout = hierarchical_initial_layout(ir, topology);
        let out = merge_to_root(ir, topology, layout, params, options);

        // Reference: direct evolution on a logical register.
        let n = ir.num_qubits();
        let mut logical = Statevector::basis_state(n, ir.initial_state());
        for e in ir.entries() {
            logical.apply_pauli_evolution(&e.string, e.rotation_angle(params[e.param]));
        }

        // Compiled: simulate on the physical register, then read out through
        // the final layout by permuting into logical order.
        let np = topology.num_qubits();
        let mut physical = Statevector::zero_state(np);
        physical.apply_circuit(&out.circuit);

        // Build the permuted logical state: amplitude of logical basis b is
        // the amplitude of the physical basis state with each logical bit at
        // its final physical home (unmapped physical qubits must be |0⟩).
        let mut extracted = vec![Complex64::ZERO; 1 << n];
        for (phys_idx, amp) in physical.amplitudes().iter().enumerate() {
            if amp.norm_sqr() < 1e-24 {
                continue;
            }
            let mut logical_idx = 0u64;
            let mut valid = true;
            for p in 0..np {
                let bit = (phys_idx >> p) & 1;
                match out.final_layout.logical(p) {
                    Some(l) => logical_idx |= (bit as u64) << l,
                    None => {
                        if bit == 1 {
                            valid = false; // ancilla not restored to |0⟩
                        }
                    }
                }
            }
            assert!(valid, "unmapped physical qubit left in |1⟩");
            extracted[logical_idx as usize] += *amp;
        }
        let overlap: Complex64 = logical
            .amplitudes()
            .iter()
            .zip(&extracted)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        assert!(
            (overlap.norm() - 1.0).abs() < 1e-9,
            "compiled circuit diverges: |overlap| = {}",
            overlap.norm()
        );
    }

    fn ir_from(strings: &[&str], initial: u64) -> PauliIr {
        let n = strings[0].len();
        let mut ir = PauliIr::new(n, initial);
        for (i, s) in strings.iter().enumerate() {
            ir.push(IrEntry {
                string: s.parse().unwrap(),
                param: i,
                coefficient: 0.5,
            });
        }
        ir
    }

    #[test]
    fn single_string_on_adjacent_qubits_has_zero_overhead() {
        // Two co-located qubits: no swaps, no bridges.
        let ir = ir_from(&["IIIZZ", "IIIXX"], 0b00001);
        let t = Topology::xtree(5);
        let layout = hierarchical_initial_layout(&ir, &t);
        let out = merge_to_root(&ir, &t, layout, &[0.3, 0.7], MtrOptions::default());
        assert_eq!(out.swap_count, 0);
        // Overhead = compiled CNOTs − ideal CNOTs (2 per weight-2 string).
        assert_eq!(out.circuit.cnot_count(), 4);
    }

    #[test]
    fn compiled_circuits_are_unitarily_exact_small() {
        let cases: Vec<(Vec<&str>, u64)> = vec![
            (vec!["ZZII", "IXXI", "YIIY"], 0b0011),
            (vec!["XYZI", "IZZZ", "ZIIZ", "XXXX"], 0b0101),
            (vec!["ZIIIZ", "IYYII", "XIXIX"], 0b00001),
        ];
        for (strings, init) in cases {
            let ir = ir_from(&strings, init);
            let params: Vec<f64> = (0..ir.num_parameters())
                .map(|k| 0.2 + 0.3 * k as f64)
                .collect();
            for opts in [
                MtrOptions::default(),
                MtrOptions {
                    consolidate_swaps: false,
                    lone_child: LoneChildPolicy::Never,
                },
                MtrOptions {
                    consolidate_swaps: true,
                    lone_child: LoneChildPolicy::Always,
                },
            ] {
                assert_equivalent(&ir, &Topology::xtree(8), &params, opts);
            }
        }
    }

    #[test]
    fn compiled_h2_uccsd_matches_direct_evolution() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let params = [0.11, -0.23, 0.37];
        assert_equivalent(&ir, &Topology::xtree(5), &params, MtrOptions::default());
        assert_equivalent(&ir, &Topology::xtree(8), &params, MtrOptions::default());
    }

    #[test]
    fn compiled_lih_uccsd_matches_direct_evolution() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let params: Vec<f64> = (0..8).map(|k| 0.05 * (k as f64 + 1.0)).collect();
        assert_equivalent(&ir, &Topology::xtree(8), &params, MtrOptions::default());
    }

    #[test]
    fn weight_one_string_is_a_bare_rotation() {
        let ir = ir_from(&["IIZ"], 0);
        let t = Topology::xtree(5);
        let layout = hierarchical_initial_layout(&ir, &t);
        let out = merge_to_root(&ir, &t, layout, &[0.9], MtrOptions::default());
        assert_eq!(out.circuit.cnot_count(), 0);
        assert_eq!(out.swap_count, 0);
    }

    #[test]
    fn bridge_merges_across_subtrees() {
        // Force two support qubits into different branches: identity layout
        // q0→phys0 (root), q1→phys1... use a string on qubits mapped to
        // separated leaves via a custom layout.
        let mut ir = PauliIr::new(2, 0);
        ir.push(IrEntry {
            string: "ZZ".parse().unwrap(),
            param: 0,
            coefficient: 0.5,
        });
        let t = Topology::xtree(8);
        // Map logical 0 → physical 6, logical 1 → physical 7 (two leaves
        // under physical 1): their subtree includes bridge node 1 unless
        // consolidation swaps one up.
        let layout = Layout::from_assignment(vec![6, 7], t.num_qubits());
        let out = merge_to_root(
            &ir,
            &t,
            layout,
            &[0.4],
            MtrOptions {
                consolidate_swaps: false,
                lone_child: LoneChildPolicy::Never,
            },
        );
        assert!(out.bridge_count >= 1);
        // Bridged weight-2 merge: pre + child + main, mirrored → 6 CNOTs.
        assert_eq!(out.circuit.cnot_count(), 6);
        assert_eq!(out.swap_count, 0);
    }

    #[test]
    fn consolidation_swap_reduces_repeated_cost() {
        // The same leaf-pair string repeated: consolidation pays once,
        // bridging pays every time.
        let mut ir = PauliIr::new(2, 0);
        for k in 0..6 {
            ir.push(IrEntry {
                string: "ZZ".parse().unwrap(),
                param: k,
                coefficient: 0.5,
            });
        }
        let t = Topology::xtree(8);
        let params = vec![0.1; 6];
        let bridge = merge_to_root(
            &ir,
            &t,
            Layout::from_assignment(vec![6, 7], t.num_qubits()),
            &params,
            MtrOptions {
                consolidate_swaps: false,
                lone_child: LoneChildPolicy::Never,
            },
        );
        let consolidate = merge_to_root(
            &ir,
            &t,
            Layout::from_assignment(vec![6, 7], t.num_qubits()),
            &params,
            MtrOptions::default(),
        );
        assert!(
            consolidate.circuit.cnot_count() < bridge.circuit.cnot_count(),
            "consolidation {} vs bridging {}",
            consolidate.circuit.cnot_count(),
            bridge.circuit.cnot_count()
        );
        assert!(consolidate.swap_count >= 1);
    }

    #[test]
    fn all_gates_respect_topology() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let t = Topology::xtree(8);
        let layout = hierarchical_initial_layout(&ir, &t);
        let params = vec![0.2; ir.num_parameters()];
        let out = merge_to_root(&ir, &t, layout, &params, MtrOptions::default());
        for g in &out.circuit {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(t.are_connected(qs[0], qs[1]), "gate {g} violates coupling");
            }
        }
    }
}
