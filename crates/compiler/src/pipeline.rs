//! End-to-end compilation drivers and the paper's overhead metric.

use arch::Topology;
use circuit::Circuit;

use ansatz::PauliIr;

use crate::error::CompileError;
use crate::layout::{try_hierarchical_initial_layout, Layout};
use crate::mtr::{try_merge_to_root, MtrOptions};
use crate::sabre::{sabre_layout, try_sabre_route, SabreOptions};
use crate::synthesis::synthesize_chain_nominal;

/// A compiled program plus the bookkeeping for Table II's metric: the
/// number of CNOTs *added* relative to the unmapped chain-synthesized
/// circuit ("Original # of CNOTs").
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    method: String,
    circuit: Circuit,
    original_cnots: usize,
    swap_count: usize,
}

impl CompiledProgram {
    /// The compilation method label (e.g. `"MtR"`, `"SABRE"`).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The compiled physical circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// CNOT count of the unmapped chain-synthesized circuit.
    pub fn original_cnots(&self) -> usize {
        self.original_cnots
    }

    /// Total CNOTs after compilation (SWAPs charged at 3).
    pub fn total_cnots(&self) -> usize {
        self.circuit.cnot_count()
    }

    /// The paper's mapping overhead: additional CNOTs over the original.
    pub fn added_cnots(&self) -> usize {
        self.total_cnots().saturating_sub(self.original_cnots)
    }

    /// SWAPs inserted during mapping.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }
}

/// The ideal (architecture-free) CNOT count of an IR under chain synthesis:
/// `Σ 2(w−1)` over strings of weight `w ≥ 1`.
pub fn original_cnot_count(ir: &PauliIr) -> usize {
    ir.entries()
        .iter()
        .map(|e| 2 * e.string.weight().saturating_sub(1))
        .sum()
}

/// The co-designed pipeline: Hierarchical Initial Layout + Merge-to-Root
/// with default options and nominal parameters (gate counts are
/// parameter-independent).
///
/// # Panics
///
/// Panics on invalid topology/IR combinations; use [`try_compile_mtr`] for
/// a typed error instead.
pub fn compile_mtr(ir: &PauliIr, topology: &Topology) -> CompiledProgram {
    compile_mtr_with(ir, topology, MtrOptions::default())
}

/// Fallible [`compile_mtr`].
///
/// # Errors
///
/// Returns [`CompileError`] if the topology is not a tree, too small, or
/// disconnected.
pub fn try_compile_mtr(ir: &PauliIr, topology: &Topology) -> Result<CompiledProgram, CompileError> {
    try_compile_mtr_with(ir, topology, MtrOptions::default())
}

/// [`compile_mtr`] with explicit Merge-to-Root options (used by ablations).
///
/// # Panics
///
/// Panics on invalid topology/IR combinations.
pub fn compile_mtr_with(ir: &PauliIr, topology: &Topology, options: MtrOptions) -> CompiledProgram {
    match try_compile_mtr_with(ir, topology, options) {
        Ok(program) => program,
        Err(e) => panic!("compile_mtr: {e}"),
    }
}

/// Fallible [`compile_mtr_with`].
///
/// # Errors
///
/// Returns [`CompileError`] if the topology is not a tree, too small, or
/// disconnected.
pub fn try_compile_mtr_with(
    ir: &PauliIr,
    topology: &Topology,
    options: MtrOptions,
) -> Result<CompiledProgram, CompileError> {
    let layout = try_hierarchical_initial_layout(ir, topology)?;
    try_compile_mtr_from_layout(ir, topology, layout, options)
}

/// Merge-to-Root from an explicit initial layout (ablation entry point).
///
/// # Panics
///
/// Panics on invalid topology/layout combinations.
pub fn compile_mtr_from_layout(
    ir: &PauliIr,
    topology: &Topology,
    layout: Layout,
    options: MtrOptions,
) -> CompiledProgram {
    match try_compile_mtr_from_layout(ir, topology, layout, options) {
        Ok(program) => program,
        Err(e) => panic!("compile_mtr_from_layout: {e}"),
    }
}

/// Fallible [`compile_mtr_from_layout`].
///
/// # Errors
///
/// Returns [`CompileError`] if the topology is not a tree, disconnected, or
/// inconsistent with the layout.
pub fn try_compile_mtr_from_layout(
    ir: &PauliIr,
    topology: &Topology,
    layout: Layout,
    options: MtrOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut span = obs::span("compiler.mtr");
    let params = vec![0.1; ir.num_parameters()];
    let out = try_merge_to_root(ir, topology, layout, &params, options)?;
    let program = CompiledProgram {
        method: "MtR".to_string(),
        circuit: out.circuit,
        original_cnots: original_cnot_count(ir),
        swap_count: out.swap_count,
    };
    span.record("strings", ir.len());
    span.record("original_cnots", program.original_cnots());
    span.record("total_cnots", program.total_cnots());
    span.record("added_cnots", program.added_cnots());
    span.record("swaps", program.swap_count());
    span.record("bridges", out.bridge_count);
    obs::counter_add("compiler.mtr.swaps", program.swap_count() as u64);
    obs::counter_add("compiler.mtr.added_cnots", program.added_cnots() as u64);
    Ok(program)
}

/// The traditional pipeline: chain synthesis, SABRE bidirectional layout
/// (`layout_rounds` round trips), SABRE routing.
///
/// # Panics
///
/// Panics on too-small or disconnected topologies; use
/// [`try_compile_sabre`] for a typed error instead.
pub fn compile_sabre(ir: &PauliIr, topology: &Topology, layout_rounds: usize) -> CompiledProgram {
    match try_compile_sabre(ir, topology, layout_rounds) {
        Ok(program) => program,
        Err(e) => panic!("compile_sabre: {e}"),
    }
}

/// Fallible [`compile_sabre`].
///
/// # Errors
///
/// Returns [`CompileError`] if the topology is too small for the circuit or
/// disconnected.
pub fn try_compile_sabre(
    ir: &PauliIr,
    topology: &Topology,
    layout_rounds: usize,
) -> Result<CompiledProgram, CompileError> {
    let mut span = obs::span("compiler.sabre");
    let logical = synthesize_chain_nominal(ir);
    if topology.num_qubits() < logical.num_qubits() {
        return Err(CompileError::TopologyTooSmall {
            needed: logical.num_qubits(),
            available: topology.num_qubits(),
        });
    }
    let options = SabreOptions::default();
    let layout = if layout_rounds > 0 {
        // `sabre_layout` routes internally, so connectivity must hold before
        // it runs; `try_sabre_route` re-checks for the 0-round path.
        if !topology.is_connected() {
            let (a, b) = crate::sabre::disconnected_pair(topology);
            return Err(CompileError::Disconnected { a, b });
        }
        sabre_layout(&logical, topology, layout_rounds, options)
    } else {
        Layout::trivial(logical.num_qubits(), topology.num_qubits())
    };
    let out = try_sabre_route(&logical, topology, layout, options)?;
    let program = CompiledProgram {
        method: "SABRE".to_string(),
        circuit: out.circuit,
        original_cnots: original_cnot_count(ir),
        swap_count: out.swap_count,
    };
    span.record("layout_rounds", layout_rounds);
    span.record("original_cnots", program.original_cnots());
    span.record("total_cnots", program.total_cnots());
    span.record("added_cnots", program.added_cnots());
    span.record("swaps", program.swap_count());
    obs::counter_add("compiler.sabre.swaps", program.swap_count() as u64);
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansatz::uccsd::UccsdAnsatz;

    #[test]
    fn original_count_matches_chain_synthesis() {
        for (m, e) in [(2usize, 2usize), (3, 2), (4, 2)] {
            let ir = UccsdAnsatz::new(m, e).into_ir();
            assert_eq!(
                original_cnot_count(&ir),
                synthesize_chain_nominal(&ir).cnot_count()
            );
        }
    }

    #[test]
    fn mtr_beats_sabre_on_xtree_for_h2() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let t = Topology::xtree(17);
        let mtr = compile_mtr(&ir, &t);
        let sab = compile_sabre(&ir, &t, 1);
        assert!(
            mtr.added_cnots() <= sab.added_cnots(),
            "MtR {} vs SABRE {}",
            mtr.added_cnots(),
            sab.added_cnots()
        );
    }

    #[test]
    fn mtr_overhead_is_small_for_lih_on_xtree() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let t = Topology::xtree(17);
        let mtr = compile_mtr(&ir, &t);
        // The paper reports ≤ 18 added CNOTs for LiH at any ratio; allow a
        // modest implementation margin.
        assert!(
            mtr.added_cnots() <= 60,
            "LiH MtR overhead too large: {}",
            mtr.added_cnots()
        );
    }

    #[test]
    fn compiled_program_accessors() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let t = Topology::xtree(5);
        let p = compile_mtr(&ir, &t);
        assert_eq!(p.method(), "MtR");
        assert_eq!(p.original_cnots(), 56);
        assert_eq!(p.added_cnots() + p.original_cnots(), p.total_cnots());
    }
}
