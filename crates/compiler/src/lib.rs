//! Pauli-IR compilation: synthesis and qubit mapping (paper §V).
//!
//! Three pipelines, matching the paper's Table II comparison:
//!
//! * [`mtr`] — the co-designed flow: [`layout`] (Hierarchical Initial
//!   Layout, Algorithm 2) followed by Merge-to-Root combined synthesis and
//!   routing (Algorithm 3), lowering the Pauli IR directly onto a tree
//!   architecture;
//! * [`synthesis`] + [`sabre`] — the traditional flow: synthesize every
//!   Pauli-string simulation circuit with a fixed chain CNOT plan
//!   (Fig 2b, what Qiskit does), then route the finished circuit with the
//!   SABRE swap-insertion heuristic;
//! * [`pipeline`] — drivers that run either flow and report the paper's
//!   metric: additional CNOTs over the unmapped circuit.
//!
//! # Examples
//!
//! ```no_run
//! use ansatz::uccsd::UccsdAnsatz;
//! use arch::Topology;
//! use chem::Benchmark;
//! use compiler::pipeline::{compile_mtr, compile_sabre};
//!
//! let system = Benchmark::H2.build(0.74)?;
//! let ir = UccsdAnsatz::for_system(&system).into_ir();
//! let xtree = Topology::xtree(17);
//! let mtr = compile_mtr(&ir, &xtree);
//! let sab = compile_sabre(&ir, &xtree, 4);
//! assert!(mtr.added_cnots() <= sab.added_cnots());
//! # Ok::<(), chem::ChemError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod approximate;
pub mod cluster;
pub mod error;
pub mod layout;
pub mod mtr;
pub mod peephole;
pub mod pipeline;
pub mod reorder;
pub mod sabre;
pub mod synthesis;

pub use approximate::{approximate_ir, ApproximationReport};
pub use cluster::{
    cluster_pass_stats, synthesize_clustered, synthesize_clustered_nominal, ClusterPassStats,
};
pub use error::CompileError;
pub use layout::{hierarchical_initial_layout, try_hierarchical_initial_layout, Layout};
pub use mtr::{merge_to_root, try_merge_to_root, MtrOptions};
pub use peephole::{peephole_optimize, PeepholeStats};
pub use pipeline::{
    compile_mtr, compile_sabre, try_compile_mtr, try_compile_sabre, CompiledProgram,
};
pub use reorder::reorder_for_cancellation;
pub use sabre::{sabre_route, try_sabre_route, SabreOptions};
