//! Hierarchical Initial Layout — the paper's Algorithm 2 (§V-A).
//!
//! Logical qubits that co-occur in many Pauli strings need short paths to
//! their partners; the X-Tree's low-level physical qubits provide them.
//! The algorithm counts pairwise co-occurrence, sorts logical qubits by
//! total connectivity demand, and fills the tree level by level, attaching
//! each qubit under the already-placed parent it shares the most strings
//! with.

use arch::Topology;

use ansatz::PauliIr;

use crate::error::CompileError;

/// A logical↔physical qubit mapping.
///
/// # Examples
///
/// ```
/// use compiler::Layout;
///
/// let l = Layout::trivial(3, 5);
/// assert_eq!(l.physical(2), 2);
/// assert_eq!(l.logical(4), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    log2phys: Vec<usize>,
    phys2log: Vec<Option<usize>>,
}

impl Layout {
    /// The identity mapping of `num_logical` qubits onto the first physical
    /// qubits.
    ///
    /// # Panics
    ///
    /// Panics if there are more logical than physical qubits.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(
            num_logical <= num_physical,
            "more logical than physical qubits"
        );
        let log2phys: Vec<usize> = (0..num_logical).collect();
        let mut phys2log = vec![None; num_physical];
        for (l, &p) in log2phys.iter().enumerate() {
            phys2log[p] = Some(l);
        }
        Layout { log2phys, phys2log }
    }

    /// Builds a layout from an explicit logical→physical assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate physical targets.
    pub fn from_assignment(log2phys: Vec<usize>, num_physical: usize) -> Self {
        let mut phys2log = vec![None; num_physical];
        for (l, &p) in log2phys.iter().enumerate() {
            assert!(p < num_physical, "physical qubit {p} out of range");
            assert!(phys2log[p].is_none(), "physical qubit {p} assigned twice");
            phys2log[p] = Some(l);
        }
        Layout { log2phys, phys2log }
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.log2phys.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.phys2log.len()
    }

    /// The physical qubit hosting logical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn physical(&self, l: usize) -> usize {
        self.log2phys[l]
    }

    /// The logical qubit on physical `p`, if any.
    #[inline]
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.phys2log[p]
    }

    /// Swaps the contents of two physical qubits (either may be empty).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.phys2log[a];
        let lb = self.phys2log[b];
        self.phys2log[a] = lb;
        self.phys2log[b] = la;
        if let Some(l) = la {
            self.log2phys[l] = b;
        }
        if let Some(l) = lb {
            self.log2phys[l] = a;
        }
    }

    /// The logical→physical assignment vector.
    pub fn as_assignment(&self) -> &[usize] {
        &self.log2phys
    }
}

/// Pairwise co-occurrence counts of logical qubits across the IR's Pauli
/// strings (Algorithm 2's `Mat`).
pub fn cooccurrence_matrix(ir: &PauliIr) -> Vec<Vec<usize>> {
    let n = ir.num_qubits();
    let mut mat = vec![vec![0usize; n]; n];
    for e in ir.entries() {
        let support = e.string.support();
        for (i, &a) in support.iter().enumerate() {
            for &b in &support[i + 1..] {
                mat[a][b] += 1;
                mat[b][a] += 1;
            }
        }
    }
    mat
}

/// Algorithm 2: places logical qubits on a tree topology level by level,
/// highest-demand first, each under the placed parent sharing the most
/// Pauli strings.
///
/// # Panics
///
/// Panics if `topology` is not a tree topology (no level structure) or has
/// fewer qubits than the IR. Use [`try_hierarchical_initial_layout`] for a
/// typed error instead.
pub fn hierarchical_initial_layout(ir: &PauliIr, topology: &Topology) -> Layout {
    match try_hierarchical_initial_layout(ir, topology) {
        Ok(layout) => layout,
        Err(e) => panic!("hierarchical_initial_layout: {e}"),
    }
}

/// Fallible [`hierarchical_initial_layout`].
///
/// # Errors
///
/// [`CompileError::TopologyTooSmall`] if the tree has fewer qubits than the
/// IR, [`CompileError::NotATree`] if the topology has no level structure.
pub fn try_hierarchical_initial_layout(
    ir: &PauliIr,
    topology: &Topology,
) -> Result<Layout, CompileError> {
    let n = ir.num_qubits();
    if topology.num_qubits() < n {
        return Err(CompileError::TopologyTooSmall {
            needed: n,
            available: topology.num_qubits(),
        });
    }
    let Some(max_level) = topology.num_levels() else {
        return Err(CompileError::NotATree {
            qubits: topology.num_qubits(),
            edges: topology.edges().len(),
        });
    };

    let mut span = obs::span("compiler.layout.hierarchical");
    span.record("logical_qubits", n);
    span.record("physical_qubits", topology.num_qubits());

    let mat = cooccurrence_matrix(ir);
    let occurrence: Vec<usize> = mat.iter().map(|row| row.iter().sum()).collect();

    // Logical qubits by decreasing connectivity demand (stable on ties).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| occurrence[b].cmp(&occurrence[a]).then(a.cmp(&b)));

    // Physical spots grouped by level, each level in qubit-id order. Tree
    // level structure covers every qubit.
    let mut spots_by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level];
    for p in 0..topology.num_qubits() {
        let Some(level) = topology.level(p) else {
            unreachable!("tree levels cover qubit {p}")
        };
        spots_by_level[level].push(p);
    }

    let mut log2phys = vec![usize::MAX; n];
    let mut occupied = vec![false; topology.num_qubits()];
    for &l in &order {
        // Lowest level with a free spot: n ≤ num_qubits guarantees one.
        let Some((level, _)) = spots_by_level
            .iter()
            .enumerate()
            .find(|(_, spots)| spots.iter().any(|&p| !occupied[p]))
        else {
            unreachable!("enough physical qubits")
        };
        // Among free spots at this level, prefer the one whose parent hosts
        // the logical qubit sharing the most strings with `l`.
        let mut best: Option<(usize, usize)> = None; // (shared, physical)
        for &p in &spots_by_level[level] {
            if occupied[p] {
                continue;
            }
            let shared = topology
                .parent(p)
                .and_then(|parent| {
                    log2phys
                        .iter()
                        .position(|&ph| ph == parent)
                        .map(|parent_logical| mat[l][parent_logical])
                })
                .unwrap_or(0);
            match best {
                Some((s, _)) if s >= shared => {}
                _ => best = Some((shared, p)),
            }
        }
        let Some((_, p)) = best else {
            unreachable!("free spot exists at this level")
        };
        log2phys[l] = p;
        occupied[p] = true;
    }

    if obs::is_enabled() {
        // Layout quality: co-occurrence-weighted mean physical distance
        // between interacting logical qubits (1.0 = every pair adjacent).
        let dist = topology.distance_matrix();
        let (mut weighted, mut weight) = (0.0f64, 0.0f64);
        for a in 0..n {
            for b in a + 1..n {
                if mat[a][b] > 0 {
                    weighted += mat[a][b] as f64 * dist[log2phys[a]][log2phys[b]] as f64;
                    weight += mat[a][b] as f64;
                }
            }
        }
        if weight > 0.0 {
            span.record("mean_pair_distance", weighted / weight);
        }
    }

    Ok(Layout::from_assignment(log2phys, topology.num_qubits()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansatz::IrEntry;

    fn ir_from(strings: &[&str]) -> PauliIr {
        let n = strings[0].len();
        let mut ir = PauliIr::new(n, 0);
        for (i, s) in strings.iter().enumerate() {
            ir.push(IrEntry {
                string: s.parse().unwrap(),
                param: i,
                coefficient: 1.0,
            });
        }
        ir
    }

    #[test]
    fn layout_swap_updates_both_directions() {
        let mut l = Layout::trivial(2, 4);
        l.swap_physical(0, 3);
        assert_eq!(l.physical(0), 3);
        assert_eq!(l.logical(3), Some(0));
        assert_eq!(l.logical(0), None);
        // Swapping an empty with an empty is a no-op.
        l.swap_physical(0, 2);
        assert_eq!(l.logical(0), None);
        assert_eq!(l.logical(2), None);
    }

    #[test]
    fn cooccurrence_counts_pairs() {
        // Strings over qubits: ZZI (q1,q2 from the right: ops q0=I? "ZZI"
        // → q2=Z,q1=Z,q0=I) and ZIZ (q2,q0).
        let ir = ir_from(&["ZZI", "ZIZ"]);
        let mat = cooccurrence_matrix(&ir);
        assert_eq!(mat[1][2], 1);
        assert_eq!(mat[0][2], 1);
        assert_eq!(mat[0][1], 0);
    }

    #[test]
    fn paper_figure7_example() {
        // Figure 7: q0 appears in all strings and lands on the root; q5
        // participates in one string shared with q3 and attaches under q3.
        // Strings on 6 qubits (textual form: q5…q0 left to right).
        let ir = ir_from(&[
            "IIIIZZ", // q0,q1
            "IIIIZZ", "IIIZIZ", // q0,q2
            "IIIZIZ", "IIZIIZ", // q0,q3
            "IIZIIZ", "IZIIIZ", // q0,q4
            "IZIIIZ", "ZIZIIZ", // q0,q3,q5
        ]);
        let t = Topology::xtree(17);
        let layout = hierarchical_initial_layout(&ir, &t);
        // q0 has the highest occurrence → root (physical 0).
        assert_eq!(layout.physical(0), 0);
        // q1..q4 occupy level 1.
        for l in 1..=4 {
            assert_eq!(t.level(layout.physical(l)), Some(1), "q{l}");
        }
        // q5 sits at level 2, attached under q3's physical qubit.
        let p5 = layout.physical(5);
        assert_eq!(t.level(p5), Some(2));
        assert_eq!(t.parent(p5), Some(layout.physical(3)));
    }

    #[test]
    fn all_logical_qubits_get_distinct_spots() {
        let ir = ir_from(&["XXXXXX", "ZZZZZZ"]);
        let t = Topology::xtree(8);
        let layout = hierarchical_initial_layout(&ir, &t);
        let mut seen = std::collections::HashSet::new();
        for l in 0..6 {
            assert!(seen.insert(layout.physical(l)));
        }
    }

    #[test]
    #[should_panic]
    fn non_tree_topology_rejected() {
        let ir = ir_from(&["ZZ"]);
        let t = Topology::grid(2, 2);
        let _ = hierarchical_initial_layout(&ir, &t);
    }

    #[test]
    #[should_panic]
    fn duplicate_assignment_rejected() {
        let _ = Layout::from_assignment(vec![1, 1], 3);
    }
}
