//! Cluster-diagonalization synthesis: exponentiate whole commuting runs
//! under one Clifford conjugation.
//!
//! The chain plan (see [`crate::synthesis`]) pays a basis change and a
//! CNOT parity ladder *per entry*. But consecutive IR entries that mutually
//! commute can share a single diagonalizing Clifford `U` (built by
//! [`pauli::DiagonalFrame`]): the run lowers to `U† · (Π_k exp(-i·φ_k/2·
//! ±Z_{z'_k})) · U`, where each diagonal exponential is just a Z-parity
//! ladder and one `Rz` — no per-entry basis change at all. Runs are kept
//! *consecutive* so program order (and hence the Trotter ordering the
//! ansatz relies on) is untouched; within a run the factors commute, so
//! regrouping them under one conjugation is exact, not approximate.
//!
//! CZ gates from the frame lower through the existing `{H, CNOT}`
//! vocabulary as `H(b)·CNOT(a→b)·H(b)`, so every downstream pass (layout,
//! routing, peephole) keeps working unchanged. Singleton runs fall back to
//! the chain plan — clustering only changes multi-member runs.

use circuit::{Circuit, Gate};
use pauli::cluster::{CliffordOp, DiagonalFrame};
use pauli::PauliString;

use ansatz::PauliIr;

use crate::synthesis::chain_pauli_evolution;

/// Appends one frame gate, lowering CZ to `H·CNOT·H`.
fn push_clifford(circuit: &mut Circuit, op: CliffordOp) {
    match op {
        CliffordOp::H(q) => circuit.push(Gate::H(q as usize)),
        CliffordOp::S(q) => circuit.push(Gate::S(q as usize)),
        CliffordOp::Sdg(q) => circuit.push(Gate::Sdg(q as usize)),
        CliffordOp::Cnot { control, target } => circuit.push(Gate::Cnot {
            control: control as usize,
            target: target as usize,
        }),
        CliffordOp::Cz(a, b) => {
            circuit.push(Gate::H(b as usize));
            circuit.push(Gate::Cnot {
                control: a as usize,
                target: b as usize,
            });
            circuit.push(Gate::H(b as usize));
        }
    }
}

/// Appends the diagonal exponential `exp(-i·angle/2·Z_{zmask})`: a CNOT
/// parity ladder into the highest support qubit, `Rz`, and the mirror.
fn push_diagonal_evolution(circuit: &mut Circuit, zmask: u64, angle: f64) {
    let support: Vec<usize> = (0..64).filter(|q| (zmask >> q) & 1 == 1).collect();
    let Some(&root) = support.last() else {
        // Identity in the diagonal frame: a global phase, no gates.
        return;
    };
    for w in support.windows(2) {
        circuit.push(Gate::Cnot {
            control: w[0],
            target: w[1],
        });
    }
    circuit.push(Gate::Rz(root, angle));
    for w in support.windows(2).rev() {
        circuit.push(Gate::Cnot {
            control: w[0],
            target: w[1],
        });
    }
}

/// Splits the IR's entry list into maximal consecutive runs of mutually
/// commuting strings. Consecutiveness preserves program order exactly.
fn commuting_runs(strings: &[PauliString]) -> Vec<std::ops::Range<usize>> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for i in 1..=strings.len() {
        let extend = i < strings.len()
            && strings[start..i]
                .iter()
                .all(|p| p.commutes_with(&strings[i]));
        if !extend {
            runs.push(start..i);
            start = i;
        }
    }
    runs
}

/// Synthesizes a whole Pauli IR with the cluster-diagonalization plan at
/// the given parameter values: initial-state X gates, then each maximal
/// consecutive commuting run conjugated once.
///
/// Exactly equivalent (not just Trotter-equivalent) to the chain plan:
/// factors inside a run commute, so the product is unchanged.
///
/// # Panics
///
/// Panics if `params.len()` differs from the IR's parameter count.
pub fn synthesize_clustered(ir: &PauliIr, params: &[f64]) -> Circuit {
    assert_eq!(
        params.len(),
        ir.num_parameters(),
        "parameter count mismatch"
    );
    let mut c = Circuit::new(ir.num_qubits());
    for q in 0..ir.num_qubits() {
        if (ir.initial_state() >> q) & 1 == 1 {
            c.push(Gate::X(q));
        }
    }

    let strings: Vec<PauliString> = ir.entries().iter().map(|e| e.string).collect();
    for run in commuting_runs(&strings) {
        let entries = &ir.entries()[run.clone()];
        if entries.len() == 1 {
            let e = &entries[0];
            chain_pauli_evolution(&mut c, &e.string, e.rotation_angle(params[e.param]));
            continue;
        }
        // Diagonal forms first: if any member fails to diagonalize (it
        // cannot, for a commuting run — defensive), keep the chain plan
        // for the whole run rather than emit a half-conjugated block.
        let frame = match DiagonalFrame::for_commuting(ir.num_qubits(), &strings[run.clone()]) {
            Ok(f) => f,
            Err(_) => {
                for e in entries {
                    chain_pauli_evolution(&mut c, &e.string, e.rotation_angle(params[e.param]));
                }
                continue;
            }
        };
        let diag: Option<Vec<(u64, f64)>> = entries
            .iter()
            .map(|e| frame.diagonalize(&e.string))
            .collect();
        let Some(diag) = diag else {
            for e in entries {
                chain_pauli_evolution(&mut c, &e.string, e.rotation_angle(params[e.param]));
            }
            continue;
        };

        for &op in frame.ops() {
            push_clifford(&mut c, op);
        }
        for (e, &(zmask, sign)) in entries.iter().zip(&diag) {
            push_diagonal_evolution(&mut c, zmask, sign * e.rotation_angle(params[e.param]));
        }
        for &op in frame.ops().iter().rev() {
            push_clifford(&mut c, op.inverse());
        }
    }
    c
}

/// Synthesizes with all parameters at a nominal non-zero value — gate
/// counts are parameter-independent.
pub fn synthesize_clustered_nominal(ir: &PauliIr) -> Circuit {
    synthesize_clustered(ir, &vec![0.1; ir.num_parameters()])
}

/// Structure of the cluster partition of an IR, for reports: how many
/// runs, how many entries share a conjugation, and the Clifford overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterPassStats {
    /// Maximal consecutive commuting runs.
    pub runs: usize,
    /// Runs with at least two members (those actually conjugated).
    pub clustered_runs: usize,
    /// Entries inside multi-member runs.
    pub clustered_entries: usize,
    /// Largest run length.
    pub largest_run: usize,
}

/// Computes the run structure of an IR without synthesizing.
pub fn cluster_pass_stats(ir: &PauliIr) -> ClusterPassStats {
    let strings: Vec<PauliString> = ir.entries().iter().map(|e| e.string).collect();
    let runs = commuting_runs(&strings);
    let mut s = ClusterPassStats {
        runs: runs.len(),
        clustered_runs: 0,
        clustered_entries: 0,
        largest_run: 0,
    };
    for r in &runs {
        s.largest_run = s.largest_run.max(r.len());
        if r.len() > 1 {
            s.clustered_runs += 1;
            s.clustered_entries += r.len();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansatz::uccsd::UccsdAnsatz;
    use ansatz::IrEntry;
    use numeric::Complex64;
    use sim::Statevector;

    use crate::synthesis::{synthesize_chain, synthesize_chain_nominal};

    fn toy_ir() -> PauliIr {
        // XY/YX commute (two anti-commuting positions), ZY starts a new
        // run; exercises both the conjugated and the chain path.
        let mut ir = PauliIr::new(3, 0b011);
        for (s, param, coeff) in [
            ("IXY", 0usize, 0.5),
            ("IYX", 0, -0.5),
            ("IZY", 1, 0.25),
            ("ZZI", 1, -0.75),
            ("IIZ", 2, 1.0),
        ] {
            ir.push(IrEntry {
                string: s.parse().unwrap(),
                param,
                coefficient: coeff,
            });
        }
        ir
    }

    /// The clustered circuit prepares exactly the same state as applying
    /// each entry's Pauli evolution directly.
    fn assert_equals_direct(ir: &PauliIr, params: &[f64]) {
        let c = synthesize_clustered(ir, params);
        let mut via_circuit = Statevector::zero_state(ir.num_qubits());
        via_circuit.apply_circuit(&c);

        let mut direct = Statevector::basis_state(ir.num_qubits(), ir.initial_state());
        for e in ir.entries() {
            direct.apply_pauli_evolution(&e.string, e.rotation_angle(params[e.param]));
        }
        let overlap = direct.inner(&via_circuit);
        assert!(
            overlap.approx_eq(Complex64::ONE, 1e-10),
            "overlap {overlap}"
        );
    }

    #[test]
    fn clustered_synthesis_is_unitarily_exact_on_toy_ir() {
        assert_equals_direct(&toy_ir(), &[0.37, -0.81, 0.44]);
    }

    #[test]
    fn clustered_synthesis_is_unitarily_exact_on_uccsd() {
        // UCCSD doubles are 8 mutually commuting strings sharing one
        // parameter — the natural cluster.
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        assert_equals_direct(&ir, &[0.21, -0.4, 0.63]);
    }

    #[test]
    fn uccsd_doubles_form_multi_entry_runs() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let stats = cluster_pass_stats(&ir);
        assert!(stats.clustered_runs >= 1, "{stats:?}");
        assert!(stats.largest_run >= 8, "{stats:?}");
        assert!(stats.runs < ir.entries().len(), "{stats:?}");
    }

    #[test]
    fn clustered_cnot_count_beats_chain_on_uccsd() {
        for (occ, virt) in [(2usize, 2usize), (3, 2)] {
            let ir = UccsdAnsatz::new(occ, virt).into_ir();
            let clustered = synthesize_clustered_nominal(&ir);
            let chain = synthesize_chain_nominal(&ir);
            assert!(
                clustered.cnot_count() < chain.cnot_count(),
                "({occ},{virt}): clustered {} vs chain {}",
                clustered.cnot_count(),
                chain.cnot_count()
            );
        }
    }

    #[test]
    fn singleton_runs_match_chain_exactly() {
        // All-anticommuting entries: every run is a singleton, so the two
        // plans emit identical circuits.
        let mut ir = PauliIr::new(2, 0b01);
        for (s, param) in [("XI", 0usize), ("ZI", 1), ("YI", 2)] {
            ir.push(IrEntry {
                string: s.parse().unwrap(),
                param,
                coefficient: 1.0,
            });
        }
        let params = [0.3, -0.2, 0.9];
        let a = synthesize_clustered(&ir, &params);
        let b = synthesize_chain(&ir, &params);
        assert_eq!(a.gates(), b.gates());
    }
}
