//! Typed compilation errors.
//!
//! Every fallible entry point in this crate has a `try_*` variant returning
//! [`CompileError`]; the original panicking names are kept as thin wrappers
//! for callers that have already validated their inputs. The resilience
//! layer matches on these variants to decide between retrying and degrading
//! (e.g. Merge-to-Root falling back to SABRE on [`CompileError::NotATree`]).

use std::error::Error;
use std::fmt;

/// Error from the compilation pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Merge-to-Root and the hierarchical layout require a tree topology
    /// with level structure; this coupling graph has none (it is cyclic,
    /// disconnected, or was built from raw edges).
    NotATree {
        /// Qubits in the offending topology.
        qubits: usize,
        /// Edges in the offending topology.
        edges: usize,
    },
    /// Two qubits that must interact have no connecting path.
    Disconnected {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The topology has fewer physical qubits than the program needs.
    TopologyTooSmall {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// The supplied parameter vector does not match the IR.
    ParameterCountMismatch {
        /// Parameters the IR declares.
        expected: usize,
        /// Parameters supplied.
        actual: usize,
    },
    /// The initial layout does not fit the IR/topology pair.
    LayoutMismatch {
        /// Logical qubits in the layout.
        layout_logical: usize,
        /// Physical qubits in the layout.
        layout_physical: usize,
        /// Logical qubits in the IR.
        ir_qubits: usize,
        /// Physical qubits in the topology.
        topology_qubits: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotATree { qubits, edges } => write!(
                f,
                "coupling graph with {qubits} qubits / {edges} edges is not a tree topology"
            ),
            CompileError::Disconnected { a, b } => {
                write!(f, "qubits {a} and {b} are disconnected in the topology")
            }
            CompileError::TopologyTooSmall { needed, available } => write!(
                f,
                "topology has {available} qubits but the program needs {needed}"
            ),
            CompileError::ParameterCountMismatch { expected, actual } => {
                write!(f, "expected {expected} parameters, got {actual}")
            }
            CompileError::LayoutMismatch {
                layout_logical,
                layout_physical,
                ir_qubits,
                topology_qubits,
            } => write!(
                f,
                "layout maps {layout_logical}→{layout_physical} qubits but the program \
                 has {ir_qubits} logical on {topology_qubits} physical"
            ),
        }
    }
}

impl Error for CompileError {}
