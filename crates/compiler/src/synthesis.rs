//! Pauli-string simulation circuit synthesis (paper §II-A, Fig 2).
//!
//! Each entry `exp(-i·φ/2·P)` lowers to: basis-change gates (H for X,
//! Rx(±π/2) for Y), a CNOT tree merging Z-parity into a root qubit, the
//! center `Rz(φ)`, and the mirror. The CNOT tree is *flexible* — any tree
//! over the support works — which is the freedom Merge-to-Root exploits;
//! this module provides the fixed chain plan (what Qiskit emits, Fig 2b)
//! used by the traditional baseline and for Table I gate counts.

use circuit::{Circuit, Gate};
use pauli::{Pauli, PauliString};

use ansatz::PauliIr;

/// Appends the basis-change layer for `string` (X → H, Y → Rx(π/2)).
///
/// `inverse = false` emits the pre-rotation layer, `true` the mirrored
/// post-rotation layer; qubits are mapped through `map`.
pub fn basis_change(
    circuit: &mut Circuit,
    string: &PauliString,
    inverse: bool,
    map: impl Fn(usize) -> usize,
) {
    for q in 0..string.num_qubits() {
        match string.op(q) {
            Pauli::X => circuit.push(Gate::H(map(q))),
            Pauli::Y => {
                // V = Rx(-π/2) satisfies V·Z·V† = Y; the pre-layer applies
                // V† = Rx(π/2) and the post-layer V.
                let angle = if inverse {
                    -std::f64::consts::FRAC_PI_2
                } else {
                    std::f64::consts::FRAC_PI_2
                };
                circuit.push(Gate::Rx(map(q), angle));
            }
            Pauli::I | Pauli::Z => {}
        }
    }
}

/// Synthesizes one Pauli evolution `exp(-i·angle/2·P)` with the chain CNOT
/// plan on *logical* qubits (no architecture constraints), appending to
/// `circuit`.
///
/// Identity strings contribute only a global phase and emit nothing.
pub fn chain_pauli_evolution(circuit: &mut Circuit, string: &PauliString, angle: f64) {
    let support = string.support();
    if support.is_empty() {
        return;
    }
    basis_change(circuit, string, false, |q| q);
    // Chain: CNOT(s0→s1), …, CNOT(s_{k-2}→s_{k-1}); rotation on the last.
    for w in support.windows(2) {
        circuit.push(Gate::Cnot {
            control: w[0],
            target: w[1],
        });
    }
    // Guarded above: empty-support strings return early.
    let Some(&root) = support.last() else {
        unreachable!("non-empty support")
    };
    circuit.push(Gate::Rz(root, angle));
    for w in support.windows(2).rev() {
        circuit.push(Gate::Cnot {
            control: w[0],
            target: w[1],
        });
    }
    basis_change(circuit, string, true, |q| q);
}

/// Synthesizes a whole Pauli IR with the chain plan at the given parameter
/// values: initial-state X gates, then every entry in program order.
///
/// # Panics
///
/// Panics if `params.len()` differs from the IR's parameter count.
pub fn synthesize_chain(ir: &PauliIr, params: &[f64]) -> Circuit {
    assert_eq!(
        params.len(),
        ir.num_parameters(),
        "parameter count mismatch"
    );
    let mut c = Circuit::new(ir.num_qubits());
    for q in 0..ir.num_qubits() {
        if (ir.initial_state() >> q) & 1 == 1 {
            c.push(Gate::X(q));
        }
    }
    for e in ir.entries() {
        chain_pauli_evolution(&mut c, &e.string, e.rotation_angle(params[e.param]));
    }
    c
}

/// Synthesizes with all parameters set to a nominal non-zero value —
/// used for gate counting (counts are parameter-independent).
pub fn synthesize_chain_nominal(ir: &PauliIr) -> Circuit {
    synthesize_chain(ir, &vec![0.1; ir.num_parameters()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansatz::uccsd::UccsdAnsatz;
    use numeric::Complex64;
    use sim::Statevector;

    #[test]
    fn single_z_is_just_a_rotation() {
        let mut c = Circuit::new(2);
        chain_pauli_evolution(&mut c, &"IZ".parse().unwrap(), 0.7);
        assert_eq!(c.gates(), &[Gate::Rz(0, 0.7)]);
    }

    #[test]
    fn identity_string_emits_nothing() {
        let mut c = Circuit::new(3);
        chain_pauli_evolution(&mut c, &PauliString::identity(3), 0.5);
        assert!(c.is_empty());
    }

    #[test]
    fn figure2a_structure() {
        // XIYZ: H on q3, Rx on q1, CNOTs 0→1→3, Rz(2θ) on q3 (Fig 2a).
        let mut c = Circuit::new(4);
        chain_pauli_evolution(&mut c, &"XIYZ".parse().unwrap(), 0.6);
        let gates = c.gates();
        assert_eq!(c.cnot_count(), 4);
        assert!(gates.contains(&Gate::H(3)));
        assert!(gates.contains(&Gate::Cnot {
            control: 0,
            target: 1
        }));
        assert!(gates.contains(&Gate::Cnot {
            control: 1,
            target: 3
        }));
        assert!(gates.contains(&Gate::Rz(3, 0.6)));
    }

    /// The chain circuit must equal the direct Pauli evolution on states.
    fn assert_matches_direct(string: &str, angle: f64) {
        let p: PauliString = string.parse().unwrap();
        let n = p.num_qubits();
        // A non-trivial product state.
        let mut reference = Statevector::zero_state(n);
        for q in 0..n {
            reference.apply_gate(&Gate::Ry(q, 0.4 + 0.3 * q as f64));
            reference.apply_gate(&Gate::Rz(q, 0.2 * q as f64));
        }
        let mut via_circuit = reference.clone();
        let mut c = Circuit::new(n);
        chain_pauli_evolution(&mut c, &p, angle);
        via_circuit.apply_circuit(&c);
        reference.apply_pauli_evolution(&p, angle);
        let overlap = reference.inner(&via_circuit);
        assert!(
            overlap.approx_eq(Complex64::ONE, 1e-10),
            "{string}: overlap {overlap}"
        );
    }

    #[test]
    fn chain_synthesis_is_unitarily_exact() {
        for s in ["ZZ", "XX", "YY", "XIYZ", "ZZZZ", "XYZXY", "IXIYI"] {
            for angle in [0.3, -1.2] {
                assert_matches_direct(s, angle);
            }
        }
    }

    #[test]
    fn h2_uccsd_gate_counts_match_table1() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let c = synthesize_chain_nominal(&ir);
        // Table I: H2 = 150 gates, 56 CNOTs.
        assert_eq!(c.cnot_count(), 56);
        assert_eq!(c.gate_count(), 150);
    }

    #[test]
    fn lih_uccsd_gate_counts_match_table1() {
        let ir = UccsdAnsatz::new(3, 2).into_ir();
        let c = synthesize_chain_nominal(&ir);
        // Table I: LiH = 610 gates, 280 CNOTs.
        assert_eq!(c.cnot_count(), 280);
        assert_eq!(c.gate_count(), 610);
    }

    #[test]
    fn nah_uccsd_gate_counts_match_table1() {
        let ir = UccsdAnsatz::new(4, 2).into_ir();
        let c = synthesize_chain_nominal(&ir);
        // Table I: NaH = 1476 gates, 768 CNOTs. CNOTs match exactly; the
        // total differs by 2 single-qubit gates (initial-state X
        // accounting), within ±4 across the whole benchmark set.
        assert_eq!(c.cnot_count(), 768);
        assert!(
            (c.gate_count() as i64 - 1476).abs() <= 4,
            "gates = {}",
            c.gate_count()
        );
    }

    #[test]
    fn parameters_only_change_rotation_angles() {
        let ir = UccsdAnsatz::new(2, 2).into_ir();
        let a = synthesize_chain(&ir, &[0.1, 0.2, 0.3]);
        let b = synthesize_chain(&ir, &[0.5, 0.5, 0.5]);
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.cnot_count(), b.cnot_count());
    }
}
