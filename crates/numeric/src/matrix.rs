//! Dense row-major real matrices.
//!
//! Sized for quantum-chemistry workloads: Fock/overlap/density matrices of a
//! handful of basis functions, and the four-index integral transforms built
//! on top of them. No attempt is made at cache blocking — matrices here are
//! at most a few dozen rows.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense real matrix stored in row-major order.
///
/// # Examples
///
/// ```
/// use numeric::RealMatrix;
///
/// let mut a = RealMatrix::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// let b = a.mul(&a);
/// assert_eq!(b[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RealMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RealMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RealMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        RealMatrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = RealMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = RealMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> RealMatrix {
        RealMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Scales every entry by `k`.
    pub fn scaled(&self, k: f64) -> RealMatrix {
        RealMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &RealMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when `|self - selfᵀ|` is entry-wise below `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for RealMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RealMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &RealMatrix {
    type Output = RealMatrix;
    fn add(self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        RealMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &RealMatrix {
    type Output = RealMatrix;
    fn sub(self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        RealMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &RealMatrix {
    type Output = RealMatrix;
    fn mul(self, rhs: &RealMatrix) -> RealMatrix {
        RealMatrix::mul(self, rhs)
    }
}

impl fmt::Display for RealMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = RealMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = RealMatrix::identity(3);
        assert_eq!(a.mul(&id), a);
        assert_eq!(id.mul(&a), a);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = RealMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = RealMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.mul(&b);
        assert_eq!(
            c,
            RealMatrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0])
        );
    }

    #[test]
    fn transpose_involutes() {
        let a = RealMatrix::from_fn(2, 4, |i, j| (i + 2 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = RealMatrix::from_fn(3, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let v = vec![1.0, -2.0, 0.5];
        let col = RealMatrix::from_vec(3, 1, v.clone());
        let via_mat = a.mul(&col);
        let via_vec = a.mul_vec(&v);
        for i in 0..3 {
            assert!((via_mat[(i, 0)] - via_vec[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn trace_and_norm() {
        let a = RealMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn symmetry_check() {
        let s = RealMatrix::from_vec(2, 2, vec![1.0, 0.3, 0.3, 2.0]);
        assert!(s.is_symmetric(0.0));
        let n = RealMatrix::from_vec(2, 2, vec![1.0, 0.3, 0.4, 2.0]);
        assert!(!n.is_symmetric(1e-3));
    }

    #[test]
    #[should_panic]
    fn mul_rejects_shape_mismatch() {
        let a = RealMatrix::zeros(2, 3);
        let b = RealMatrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
