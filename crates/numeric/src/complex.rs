//! A minimal double-precision complex scalar.
//!
//! The allowed offline dependency set does not include `num-complex`, so the
//! workspace carries its own [`Complex64`]. Only the operations actually used
//! by quantum simulation are provided; the type is `Copy` and all operations
//! are branch-free where possible so inner simulator loops vectorize well.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use numeric::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use numeric::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15);
    /// assert!(z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the imaginary unit: `i·z`.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `-i`: `-i·z`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns true when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-inverse
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z + z, Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    #[allow(clippy::neg_multiply)] // keep the literal (ac−bd, ad+bc) shape
    fn mul_matches_textbook_formula() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        let p = a * b;
        assert_eq!(
            p,
            Complex64::new(2.0 * (-1.0) - 3.0 * 4.0, 2.0 * 4.0 + 3.0 * (-1.0))
        );
    }

    #[test]
    fn division_round_trips() {
        let a = Complex64::new(0.7, -1.3);
        let b = Complex64::new(-2.2, 0.4);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..32 {
            let t = k as f64 * 0.2 - 3.0;
            assert!((Complex64::cis(t).norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn mul_i_shortcuts_match_full_products() {
        let z = Complex64::new(0.3, 0.9);
        assert_eq!(z.mul_i(), Complex64::I * z);
        assert_eq!(z.mul_neg_i(), -Complex64::I * z);
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex64::cis(0.77);
        assert!((z.conj().arg() + 0.77).abs() < 1e-14);
    }

    #[test]
    fn sum_folds_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_renders_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
