//! Dense linear system solution via LU factorization with partial pivoting.
//!
//! Used by DIIS extrapolation in the SCF loop and by small least-squares
//! subproblems elsewhere in the workspace.

use std::error::Error;
use std::fmt;

use crate::matrix::RealMatrix;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinSolveError {
    /// The coefficient matrix is not square.
    NotSquare,
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch,
    /// A zero (or numerically negligible) pivot was encountered.
    Singular,
}

impl fmt::Display for LinSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinSolveError::NotSquare => write!(f, "coefficient matrix is not square"),
            LinSolveError::DimensionMismatch => {
                write!(f, "right-hand side length does not match matrix dimension")
            }
            LinSolveError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl Error for LinSolveError {}

/// Solves `A·x = b` by LU factorization with partial pivoting.
///
/// # Errors
///
/// Returns [`LinSolveError`] when `a` is not square, `b` has the wrong
/// length, or a pivot smaller than `1e-13` (relative to the largest entry)
/// is encountered.
///
/// # Examples
///
/// ```
/// use numeric::{lu_solve, RealMatrix};
///
/// # fn main() -> Result<(), numeric::LinSolveError> {
/// let a = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
/// let x = lu_solve(&a, &[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lu_solve(a: &RealMatrix, b: &[f64]) -> Result<Vec<f64>, LinSolveError> {
    if a.rows() != a.cols() {
        return Err(LinSolveError::NotSquare);
    }
    let n = a.rows();
    if b.len() != n {
        return Err(LinSolveError::DimensionMismatch);
    }

    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let scale = a
        .as_slice()
        .iter()
        .map(|v| v.abs())
        .fold(0.0, f64::max)
        .max(1.0);

    for col in 0..n {
        // Partial pivot.
        let Some((pivot_row, pivot_val)) = (col..n)
            .map(|r| (r, lu[(r, col)].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            unreachable!("pivot range col..n is non-empty");
        };
        if pivot_val <= 1e-13 * scale {
            return Err(LinSolveError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below the pivot, folding the permuted RHS along.
        let inv_pivot = 1.0 / lu[(col, col)];
        for r in (col + 1)..n {
            let factor = lu[(r, col)] * inv_pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = lu[(col, j)];
                lu[(r, j)] -= factor * v;
            }
            x[r] -= factor * x[col];
        }
    }

    // Back substitution.
    for r in (0..n).rev() {
        let mut acc = x[r];
        for j in (r + 1)..n {
            acc -= lu[(r, j)] * x[j];
        }
        x[r] = acc / lu[(r, r)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = RealMatrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = lu_solve(&a, &b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn residual_is_tiny_for_random_like_system() {
        let n = 8;
        let a = RealMatrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17 + 7) % 13) as f64 - 6.0 + if i == j { 20.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let x = lu_solve(&a, &b).unwrap();
        let ax = a.mul_vec(&x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = RealMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LinSolveError::Singular));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = RealMatrix::zeros(2, 3);
        assert_eq!(lu_solve(&a, &[0.0, 0.0]), Err(LinSolveError::NotSquare));
        let b = RealMatrix::identity(3);
        assert_eq!(
            lu_solve(&b, &[0.0, 0.0]),
            Err(LinSolveError::DimensionMismatch)
        );
    }
}
