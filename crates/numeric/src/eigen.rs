//! Jacobi eigensolver for real symmetric matrices.
//!
//! The Hartree-Fock engine needs full eigendecompositions of overlap and
//! Fock matrices, both symmetric and small (the largest benchmark basis has
//! under two dozen functions). The classic cyclic Jacobi rotation method is
//! simple, unconditionally stable, and more than fast enough at this size.

use crate::matrix::RealMatrix;

/// A full eigendecomposition of a real symmetric matrix.
///
/// Eigenvalues are in ascending order; `vectors.column(k)` (i.e.
/// `vectors[(i, k)]` over `i`) is the unit eigenvector for `values[k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Ascending eigenvalues.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored as columns.
    pub vectors: RealMatrix,
}

/// Diagonalizes a real symmetric matrix with cyclic Jacobi rotations.
///
/// # Panics
///
/// Panics if `a` is not square or not symmetric to `1e-9`.
///
/// # Examples
///
/// ```
/// use numeric::{jacobi_eigen, RealMatrix};
///
/// let a = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
/// let e = jacobi_eigen(&a);
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// ```
pub fn jacobi_eigen(a: &RealMatrix) -> Eigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition requires a square matrix"
    );
    assert!(
        a.is_symmetric(1e-9),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = RealMatrix::identity(n);

    let off = |m: &RealMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s
    };

    let mut sweeps = 0;
    while off(&m) > 1e-24 && sweeps < 100 {
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let values: Vec<f64> = order.iter().map(|&k| m[(k, k)]).collect();
    let vectors = RealMatrix::from_fn(n, n, |i, k| v[(i, order[k])]);
    Eigen { values, vectors }
}

/// Diagonalizes a symmetric tridiagonal matrix given its diagonal and
/// off-diagonal, returning ascending eigenvalues only.
///
/// Used by the Lanczos ground-state solver, where only the extremal Ritz
/// value is needed. Internally expands to a dense matrix — Lanczos subspace
/// dimensions here are ≤ a few hundred.
///
/// # Panics
///
/// Panics if `offdiag.len() + 1 != diag.len()`.
pub fn tridiagonal_eigenvalues(diag: &[f64], offdiag: &[f64]) -> Vec<f64> {
    tridiagonal_eigen(diag, offdiag).values
}

/// Full eigendecomposition of a symmetric tridiagonal matrix (dense
/// expansion; Lanczos subspaces here are small).
///
/// # Panics
///
/// Panics if `offdiag.len() + 1 != diag.len()`.
pub fn tridiagonal_eigen(diag: &[f64], offdiag: &[f64]) -> Eigen {
    assert_eq!(
        offdiag.len() + 1,
        diag.len(),
        "offdiag must be one shorter than diag"
    );
    let n = diag.len();
    let a = RealMatrix::from_fn(n, n, |i, j| {
        if i == j {
            diag[i]
        } else if i + 1 == j || j + 1 == i {
            offdiag[i.min(j)]
        } else {
            0.0
        }
    });
    jacobi_eigen(&a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> RealMatrix {
        let n = e.values.len();
        RealMatrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| e.vectors[(i, k)] * e.values[k] * e.vectors[(j, k)])
                .sum()
        })
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = RealMatrix::from_vec(3, 3, vec![5.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        // A well-conditioned symmetric matrix.
        let a = RealMatrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, -2.0, 2.0, //
                1.0, 2.0, 0.0, 1.0, //
                -2.0, 0.0, 3.0, -2.0, //
                2.0, 1.0, -2.0, -1.0,
            ],
        );
        let e = jacobi_eigen(&a);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = RealMatrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let e = jacobi_eigen(&a);
        let vtv = e.vectors.transpose().mul(&e.vectors);
        assert!(vtv.max_abs_diff(&RealMatrix::identity(5)) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = RealMatrix::from_fn(6, 6, |i, j| ((i * j) as f64).sin());
        let sym = &a + &a.transpose();
        let e = jacobi_eigen(&sym);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn tridiagonal_matches_dense() {
        let diag = [1.0, 2.0, 3.0, 4.0];
        let off = [0.5, 0.25, 0.125];
        let vals = tridiagonal_eigenvalues(&diag, &off);
        let a = RealMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                diag[i]
            } else if i.abs_diff(j) == 1 {
                off[i.min(j)]
            } else {
                0.0
            }
        });
        let dense = jacobi_eigen(&a).values;
        for (x, y) in vals.iter().zip(&dense) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_asymmetric_input() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let _ = jacobi_eigen(&a);
    }
}
