//! Dense numerical substrate for the `pauli-codesign` workspace.
//!
//! The workspace is restricted to a small set of offline dependencies, so the
//! linear algebra every other crate needs is implemented here from scratch:
//!
//! * [`Complex64`] — a minimal complex scalar with the arithmetic, norms and
//!   exponentials used by statevector and density-matrix simulation;
//! * [`RealMatrix`] — a dense row-major real matrix with the products,
//!   solvers and decompositions used by the Hartree-Fock engine;
//! * [`eigen`] — a Jacobi eigensolver for real symmetric matrices (Fock and
//!   overlap matrices are tiny: ≤ ~20×20 for our benchmark set);
//! * [`lanczos`] — a Lanczos ground-state solver for large implicit Hermitian
//!   operators (exact molecular ground states on up to 16 qubits);
//! * [`linsolve`] — LU factorization with partial pivoting (DIIS
//!   extrapolation, quasi-Newton subproblems).
//!
//! # Examples
//!
//! ```
//! use numeric::{Complex64, RealMatrix};
//!
//! let i = Complex64::I;
//! assert_eq!(i * i, Complex64::new(-1.0, 0.0));
//!
//! let a = RealMatrix::identity(3);
//! assert_eq!(a.mul(&a), a);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod complex;
pub mod eigen;
pub mod lanczos;
pub mod linsolve;
pub mod matrix;

pub use complex::Complex64;
pub use eigen::{jacobi_eigen, tridiagonal_eigen, tridiagonal_eigenvalues, Eigen};
pub use lanczos::{
    lanczos_ground_state, lanczos_ground_state_with_vector, LanczosOptions, LanczosResult,
};
pub use linsolve::{lu_solve, LinSolveError};
pub use matrix::RealMatrix;
