//! Lanczos ground-state solver for implicit Hermitian operators.
//!
//! The paper's reference energies ("Ground State" in Fig 9) are the lowest
//! eigenvalues of molecular qubit Hamiltonians — Hermitian operators on up
//! to 2¹⁶-dimensional spaces. Those are far too large for dense
//! diagonalization, but the operator is available as a fast matrix-vector
//! product (a sum of Pauli-string actions), which is exactly the Lanczos
//! access pattern.
//!
//! Full reorthogonalization is used: subspace dimensions stay small (≤ a few
//! hundred), so the O(k²·n) cost is negligible next to the matvec and it
//! removes the classic ghost-eigenvalue failure mode.

use crate::complex::Complex64;
use crate::eigen::{tridiagonal_eigen, tridiagonal_eigenvalues};

/// Options controlling [`lanczos_ground_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanczosOptions {
    /// Maximum Krylov subspace dimension.
    pub max_iter: usize,
    /// Convergence threshold on the change of the smallest Ritz value
    /// between iterations.
    pub tol: f64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iter: 300,
            tol: 1e-10,
        }
    }
}

/// Result of a Lanczos ground-state computation.
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosResult {
    /// The converged smallest eigenvalue estimate.
    pub eigenvalue: f64,
    /// Number of Lanczos iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iter`.
    pub converged: bool,
}

fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(a: &[Complex64]) -> f64 {
    a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

/// Computes the smallest eigenvalue of a Hermitian operator given only its
/// action `apply(input, output)` on complex vectors of dimension `dim`.
///
/// `seed` deterministically selects the (pseudo-random) start vector so runs
/// are reproducible.
///
/// # Panics
///
/// Panics if `dim == 0`.
///
/// # Examples
///
/// ```
/// use numeric::{lanczos_ground_state, Complex64, LanczosOptions};
///
/// // Diagonal operator with spectrum {-2, 1, 3, 7}.
/// let diag = [-2.0, 1.0, 3.0, 7.0];
/// let r = lanczos_ground_state(
///     4,
///     |x, y| {
///         for i in 0..4 {
///             y[i] = x[i] * diag[i];
///         }
///     },
///     LanczosOptions::default(),
///     1,
/// );
/// assert!((r.eigenvalue + 2.0).abs() < 1e-9);
/// ```
pub fn lanczos_ground_state(
    dim: usize,
    apply: impl FnMut(&[Complex64], &mut [Complex64]),
    options: LanczosOptions,
    seed: u64,
) -> LanczosResult {
    lanczos_ground_state_with_vector(dim, apply, options, seed).0
}

/// [`lanczos_ground_state`] variant that also reconstructs the converged
/// Ritz vector (normalized ground-state approximation).
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn lanczos_ground_state_with_vector(
    dim: usize,
    mut apply: impl FnMut(&[Complex64], &mut [Complex64]),
    options: LanczosOptions,
    seed: u64,
) -> (LanczosResult, Vec<Complex64>) {
    assert!(dim > 0, "operator dimension must be positive");

    // Deterministic, cheap start vector (xorshift on the seed).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    let mut v: Vec<Complex64> = (0..dim).map(|_| Complex64::new(next(), next())).collect();
    let n0 = norm(&v);
    for x in &mut v {
        *x = *x / n0;
    }

    let max_iter = options.max_iter.min(dim);
    let mut basis: Vec<Vec<Complex64>> = Vec::with_capacity(max_iter);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_iter);
    let mut betas: Vec<f64> = Vec::with_capacity(max_iter);
    let mut w = vec![Complex64::ZERO; dim];
    let mut prev_ritz = f64::INFINITY;

    for it in 0..max_iter {
        basis.push(v.clone());
        apply(&v, &mut w);

        let alpha = dot(&v, &w).re;
        alphas.push(alpha);

        // w -= alpha * v (+ beta * v_prev implicitly handled by reorthogonalization)
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= *vi * alpha;
        }
        // Full reorthogonalization against all previous basis vectors, twice
        // for numerical safety.
        for _ in 0..2 {
            for b in &basis {
                let c = dot(b, &w);
                if c.norm() > 0.0 {
                    for (wi, bi) in w.iter_mut().zip(b) {
                        *wi -= *bi * c;
                    }
                }
            }
        }

        let beta = norm(&w);
        let Some(&ritz) = tridiagonal_eigenvalues(&alphas, &betas).first() else {
            unreachable!("Ritz spectrum has at least one eigenvalue");
        };

        if (prev_ritz - ritz).abs() < options.tol || beta < 1e-13 {
            let vector = ritz_vector(&basis, &alphas, &betas, dim);
            return (
                LanczosResult {
                    eigenvalue: ritz,
                    iterations: it + 1,
                    converged: true,
                },
                vector,
            );
        }
        prev_ritz = ritz;
        betas.push(beta);
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = *wi / beta;
        }
    }

    // betas has one more entry than the final subspace uses; trim it.
    let k = basis.len();
    let vector = ritz_vector(&basis, &alphas[..k], &betas[..k.saturating_sub(1)], dim);
    (
        LanczosResult {
            eigenvalue: prev_ritz,
            iterations: max_iter,
            converged: false,
        },
        vector,
    )
}

/// Reconstructs the lowest Ritz vector `Σ_k y_k·b_k` from the Krylov basis
/// and the tridiagonal eigenproblem.
fn ritz_vector(
    basis: &[Vec<Complex64>],
    alphas: &[f64],
    betas: &[f64],
    dim: usize,
) -> Vec<Complex64> {
    let eig = tridiagonal_eigen(alphas, betas);
    let mut out = vec![Complex64::ZERO; dim];
    for (k, b) in basis.iter().enumerate() {
        let y = eig.vectors[(k, 0)];
        for (o, x) in out.iter_mut().zip(b) {
            *o += *x * y;
        }
    }
    let n = norm(&out).max(1e-300);
    for o in &mut out {
        *o = *o / n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi_eigen;
    use crate::matrix::RealMatrix;

    #[test]
    fn diagonal_operator_ground_state() {
        let diag: Vec<f64> = (0..64).map(|i| (i as f64) * 0.5 - 10.0).collect();
        let r = lanczos_ground_state(
            64,
            |x, y| {
                for i in 0..64 {
                    y[i] = x[i] * diag[i];
                }
            },
            LanczosOptions::default(),
            7,
        );
        assert!(r.converged);
        assert!((r.eigenvalue + 10.0).abs() < 1e-8, "got {}", r.eigenvalue);
    }

    #[test]
    fn matches_dense_jacobi_on_symmetric_matrix() {
        let n = 24;
        let a = {
            let raw = RealMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64).sin());
            &raw + &raw.transpose()
        };
        let dense_min = jacobi_eigen(&a).values[0];
        let r = lanczos_ground_state(
            n,
            |x, y| {
                for i in 0..n {
                    let mut acc = Complex64::ZERO;
                    for j in 0..n {
                        acc += x[j] * a[(i, j)];
                    }
                    y[i] = acc;
                }
            },
            LanczosOptions::default(),
            3,
        );
        assert!((r.eigenvalue - dense_min).abs() < 1e-8);
    }

    #[test]
    fn exact_subspace_termination() {
        // Rank-deficient operator: Lanczos must stop early without panicking.
        let r = lanczos_ground_state(
            16,
            |x, y| {
                for (i, out) in y.iter_mut().enumerate().take(16) {
                    *out = if i == 0 { x[0] * 5.0 } else { Complex64::ZERO };
                }
            },
            LanczosOptions::default(),
            11,
        );
        assert!(r.converged);
        // Spectrum is {5, 0, ..., 0}; ground state is 0.
        assert!(r.eigenvalue.abs() < 1e-9);
    }

    #[test]
    fn ritz_vector_is_an_eigenvector() {
        let diag: Vec<f64> = (0..32).map(|i| (i as f64) - 7.5).collect();
        let (r, v) = lanczos_ground_state_with_vector(
            32,
            |x, y| {
                for i in 0..32 {
                    y[i] = x[i] * diag[i];
                }
            },
            LanczosOptions {
                tol: 1e-14,
                ..Default::default()
            },
            5,
        );
        assert!(r.converged);
        // Residual ‖Hv − λv‖ must be small (the vector converges as the
        // square root of the eigenvalue error).
        let mut hv = vec![Complex64::ZERO; 32];
        for i in 0..32 {
            hv[i] = v[i] * diag[i];
        }
        let res: f64 = hv
            .iter()
            .zip(&v)
            .map(|(a, b)| (*a - *b * r.eigenvalue).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-5, "residual {res}");
        let n: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-10);
    }

    #[test]
    fn deterministic_across_same_seed() {
        let f = |seed| {
            lanczos_ground_state(
                32,
                |x, y| {
                    for i in 0..32 {
                        y[i] = x[i] * ((i % 5) as f64);
                    }
                },
                LanczosOptions::default(),
                seed,
            )
            .eigenvalue
        };
        assert_eq!(f(42), f(42));
    }
}
