//! Quantum circuit intermediate representation.
//!
//! A deliberately small gate set covering everything the paper's circuits
//! use: the Clifford basis-change gates around Pauli evolution blocks
//! (`H`, `S`, `S†`, `X`), parameterized rotations (`Rx`, `Ry`, `Rz`), and the
//! two-qubit `CNOT`/`SWAP` gates whose counts are the paper's compilation
//! metric (§VI-A).
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H(0));
//! c.push(Gate::Cnot { control: 0, target: 1 });
//! assert_eq!(c.cnot_count(), 1);
//! assert_eq!(c.len(), 2);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gate;
pub mod ir;

pub use gate::Gate;
pub use ir::Circuit;
