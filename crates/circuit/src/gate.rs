//! The gate alphabet.

use std::fmt;

use numeric::Complex64;

/// A quantum gate applied to specific qubits.
///
/// Angles follow the standard convention `Rp(θ) = exp(-i·θ/2·P)` for
/// `P ∈ {X, Y, Z}`, matching Qiskit. `Gate::Rz(q, 2.0 * theta)` therefore
/// implements the paper's `exp(-i·θ·Z)` center rotation (§II-A: "a rotation
/// gate is applied to rotate angle 2θ along the Z axis").
///
/// # Examples
///
/// ```
/// use circuit::Gate;
///
/// let g = Gate::Cnot { control: 3, target: 1 };
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![3, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard gate.
    H(usize),
    /// Pauli-X gate.
    X(usize),
    /// Pauli-Y gate.
    Y(usize),
    /// Pauli-Z gate.
    Z(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg(usize),
    /// X-rotation `exp(-i·θ/2·X)`.
    Rx(usize, f64),
    /// Y-rotation `exp(-i·θ/2·Y)`.
    Ry(usize, f64),
    /// Z-rotation `exp(-i·θ/2·Z)`.
    Rz(usize, f64),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// SWAP of two qubits (counted as 3 CNOTs by cost metrics).
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate acts on, control first for `Cnot`.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => vec![q],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Whether the gate acts on two qubits.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. } | Gate::Swap(_, _))
    }

    /// Whether the gate carries a continuous parameter.
    #[inline]
    pub fn is_parameterized(&self) -> bool {
        matches!(self, Gate::Rx(_, _) | Gate::Ry(_, _) | Gate::Rz(_, _))
    }

    /// The gate's inverse.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            // H, X, Y, Z, CNOT, SWAP are self-inverse.
            g => g,
        }
    }

    /// Remaps qubit indices through `map` (logical→physical relabeling).
    pub fn remapped(&self, map: impl Fn(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(map(q)),
            Gate::X(q) => Gate::X(map(q)),
            Gate::Y(q) => Gate::Y(map(q)),
            Gate::Z(q) => Gate::Z(map(q)),
            Gate::S(q) => Gate::S(map(q)),
            Gate::Sdg(q) => Gate::Sdg(map(q)),
            Gate::Rx(q, t) => Gate::Rx(map(q), t),
            Gate::Ry(q, t) => Gate::Ry(map(q), t),
            Gate::Rz(q, t) => Gate::Rz(map(q), t),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: map(control),
                target: map(target),
            },
            Gate::Swap(a, b) => Gate::Swap(map(a), map(b)),
        }
    }

    /// The 2×2 unitary of a single-qubit gate, row-major
    /// `[u00, u01, u10, u11]`.
    ///
    /// # Panics
    ///
    /// Panics for two-qubit gates.
    pub fn single_qubit_matrix(&self) -> [Complex64; 4] {
        use Complex64 as C;
        let zero = C::ZERO;
        let one = C::ONE;
        let i = C::I;
        match *self {
            Gate::H(_) => {
                let s = C::from_real(std::f64::consts::FRAC_1_SQRT_2);
                [s, s, s, -s]
            }
            Gate::X(_) => [zero, one, one, zero],
            Gate::Y(_) => [zero, -i, i, zero],
            Gate::Z(_) => [one, zero, zero, -one],
            Gate::S(_) => [one, zero, zero, i],
            Gate::Sdg(_) => [one, zero, zero, -i],
            Gate::Rx(_, t) => {
                let c = C::from_real((t / 2.0).cos());
                let s = (t / 2.0).sin();
                [c, -i * s, -i * s, c]
            }
            Gate::Ry(_, t) => {
                let c = C::from_real((t / 2.0).cos());
                let s = C::from_real((t / 2.0).sin());
                [c, -s, s, c]
            }
            Gate::Rz(_, t) => [C::cis(-t / 2.0), zero, zero, C::cis(t / 2.0)],
            Gate::Cnot { .. } | Gate::Swap(_, _) => {
                panic!("single_qubit_matrix called on a two-qubit gate")
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Y(q) => write!(f, "y q{q}"),
            Gate::Z(q) => write!(f, "z q{q}"),
            Gate::S(q) => write!(f, "s q{q}"),
            Gate::Sdg(q) => write!(f, "sdg q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t:.6}) q{q}"),
            Gate::Ry(q, t) => write!(f, "ry({t:.6}) q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t:.6}) q{q}"),
            Gate::Cnot { control, target } => write!(f, "cx q{control}, q{target}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_mul(a: [Complex64; 4], b: [Complex64; 4]) -> [Complex64; 4] {
        [
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ]
    }

    fn approx_id(m: [Complex64; 4]) -> bool {
        m[0].approx_eq(Complex64::ONE, 1e-12)
            && m[3].approx_eq(Complex64::ONE, 1e-12)
            && m[1].approx_eq(Complex64::ZERO, 1e-12)
            && m[2].approx_eq(Complex64::ZERO, 1e-12)
    }

    #[test]
    fn inverses_compose_to_identity() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.1),
        ];
        for g in gates {
            let m = mat_mul(g.inverse().single_qubit_matrix(), g.single_qubit_matrix());
            assert!(approx_id(m), "{g} inverse failed");
        }
    }

    #[test]
    fn matrices_are_unitary() {
        for g in [
            Gate::H(0),
            Gate::S(0),
            Gate::Rx(0, 0.4),
            Gate::Ry(0, 0.4),
            Gate::Rz(0, 0.4),
        ] {
            let m = g.single_qubit_matrix();
            let dag = [m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()];
            assert!(approx_id(mat_mul(dag, m)), "{g} not unitary");
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s2 = mat_mul(
            Gate::S(0).single_qubit_matrix(),
            Gate::S(0).single_qubit_matrix(),
        );
        let z = Gate::Z(0).single_qubit_matrix();
        for k in 0..4 {
            assert!(s2[k].approx_eq(z[k], 1e-12));
        }
    }

    #[test]
    fn hzh_equals_x() {
        let h = Gate::H(0).single_qubit_matrix();
        let z = Gate::Z(0).single_qubit_matrix();
        let hzh = mat_mul(mat_mul(h, z), h);
        let x = Gate::X(0).single_qubit_matrix();
        for k in 0..4 {
            assert!(hzh[k].approx_eq(x[k], 1e-12));
        }
    }

    #[test]
    fn y_basis_change_conjugates_z_to_y() {
        // V = S·H maps Z to Y: V Z V† = Y.
        let s = Gate::S(0).single_qubit_matrix();
        let h = Gate::H(0).single_qubit_matrix();
        let v = mat_mul(s, h);
        let vdag = [v[0].conj(), v[2].conj(), v[1].conj(), v[3].conj()];
        let z = Gate::Z(0).single_qubit_matrix();
        let vzv = mat_mul(mat_mul(v, z), vdag);
        let y = Gate::Y(0).single_qubit_matrix();
        for k in 0..4 {
            assert!(
                vzv[k].approx_eq(y[k], 1e-12),
                "SH basis change wrong at {k}"
            );
        }
    }

    #[test]
    fn remap_and_metadata() {
        let g = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let r = g.remapped(|q| q + 10);
        assert_eq!(
            r,
            Gate::Cnot {
                control: 10,
                target: 11
            }
        );
        assert!(g.is_two_qubit());
        assert!(!g.is_parameterized());
        assert!(Gate::Rz(0, 0.1).is_parameterized());
    }

    #[test]
    #[should_panic]
    fn two_qubit_gate_has_no_single_qubit_matrix() {
        let _ = Gate::Swap(0, 1).single_qubit_matrix();
    }
}
