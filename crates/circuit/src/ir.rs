//! The circuit container and its structural utilities.

use std::fmt;

use crate::gate::Gate;

/// An ordered list of gates on a fixed-width qubit register.
///
/// This is the common currency between the ansatz generator, the compiler
/// backends and the simulators. Cost accessors ([`cnot_count`],
/// [`two_qubit_count`]) implement the paper's evaluation metric, where SWAPs
/// are charged as three CNOTs.
///
/// [`cnot_count`]: Circuit::cnot_count
/// [`two_qubit_count`]: Circuit::two_qubit_count
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::H(2));
/// c.push(Gate::Cnot { control: 2, target: 0 });
/// c.push(Gate::Swap(0, 1));
/// assert_eq!(c.cnot_count(), 4); // 1 CNOT + SWAP charged as 3
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register, or if a
    /// two-qubit gate addresses the same qubit twice.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(
                q < self.num_qubits,
                "gate {gate} outside register of {}",
                self.num_qubits
            );
        }
        if qs.len() == 2 {
            assert_ne!(
                qs[0], qs[1],
                "two-qubit gate with identical operands: {gate}"
            );
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is wider than this circuit.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit too wide"
        );
        for &g in &other.gates {
            self.push(g);
        }
    }

    /// Borrows the gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Total gate count (SWAP counts as one gate here; see
    /// [`cnot_count`](Circuit::cnot_count) for the cost metric).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// CNOT cost: CNOTs plus 3 per SWAP (a SWAP decomposes into 3 CNOTs on
    /// cross-resonance hardware). This is the paper's §VI metric.
    pub fn cnot_count(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match g {
                Gate::Cnot { .. } => 1,
                Gate::Swap(_, _) => 3,
                _ => 0,
            })
            .sum()
    }

    /// Number of two-qubit gate *instructions* (SWAP counted once).
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Total gate count with SWAPs expanded to 3 CNOTs, i.e. the length of
    /// [`decompose_swaps`](Circuit::decompose_swaps).
    pub fn gate_count_swaps_decomposed(&self) -> usize {
        self.gates
            .iter()
            .map(|g| if matches!(g, Gate::Swap(_, _)) { 3 } else { 1 })
            .sum()
    }

    /// Circuit depth: the longest chain of gates sharing qubits.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        for g in &self.gates {
            let qs = g.qubits();
            let level = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for q in qs {
                frontier[q] = level;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// The inverse (dagger) circuit: gates reversed and individually
    /// inverted.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Rewrites every SWAP as its 3-CNOT decomposition.
    pub fn decompose_swaps(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for &g in &self.gates {
            if let Gate::Swap(a, b) = g {
                out.push(Gate::Cnot {
                    control: a,
                    target: b,
                });
                out.push(Gate::Cnot {
                    control: b,
                    target: a,
                });
                out.push(Gate::Cnot {
                    control: a,
                    target: b,
                });
            } else {
                out.push(g);
            }
        }
        out
    }

    /// Relabels every gate's qubits through `map`.
    ///
    /// # Panics
    ///
    /// Panics if `map` sends a qubit outside the register.
    pub fn remapped(&self, map: impl Fn(usize) -> usize) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for g in &self.gates {
            out.push(g.remapped(&map));
        }
        out
    }

    /// Removes adjacent canceling CNOT pairs (identical control/target with
    /// no intervening gate on either qubit). This mirrors the cancellation
    /// a gate-level compiler applies between consecutive Pauli evolution
    /// blocks and is used when reporting Table I gate counts.
    ///
    /// Runs to a fixed point.
    pub fn cancel_adjacent_cnots(&self) -> Circuit {
        let mut gates = self.gates.clone();
        loop {
            let mut removed = false;
            let mut i = 0;
            'outer: while i < gates.len() {
                if let Gate::Cnot { control, target } = gates[i] {
                    // Scan forward for the next gate touching control or target.
                    let mut j = i + 1;
                    while j < gates.len() {
                        let qs = gates[j].qubits();
                        if qs.contains(&control) || qs.contains(&target) {
                            if gates[j] == gates[i] {
                                gates.remove(j);
                                gates.remove(i);
                                removed = true;
                                continue 'outer;
                            }
                            break;
                        }
                        j += 1;
                    }
                }
                i += 1;
            }
            if !removed {
                break;
            }
        }
        Circuit {
            num_qubits: self.num_qubits,
            gates,
        }
    }

    /// Serializes to OpenQASM 2.0, the interchange format understood by
    /// Qiskit and most other toolchains.
    ///
    /// # Examples
    ///
    /// ```
    /// use circuit::{Circuit, Gate};
    ///
    /// let mut c = Circuit::new(2);
    /// c.push(Gate::H(0));
    /// c.push(Gate::Cnot { control: 0, target: 1 });
    /// let qasm = c.to_qasm();
    /// assert!(qasm.starts_with("OPENQASM 2.0;"));
    /// assert!(qasm.contains("cx q[0],q[1];"));
    /// ```
    pub fn to_qasm(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        let _ = writeln!(out, "qreg q[{}];", self.num_qubits);
        for g in &self.gates {
            let line = match *g {
                Gate::H(q) => format!("h q[{q}];"),
                Gate::X(q) => format!("x q[{q}];"),
                Gate::Y(q) => format!("y q[{q}];"),
                Gate::Z(q) => format!("z q[{q}];"),
                Gate::S(q) => format!("s q[{q}];"),
                Gate::Sdg(q) => format!("sdg q[{q}];"),
                Gate::Rx(q, t) => format!("rx({t:.16e}) q[{q}];"),
                Gate::Ry(q, t) => format!("ry({t:.16e}) q[{q}];"),
                Gate::Rz(q, t) => format!("rz({t:.16e}) q[{q}];"),
                Gate::Cnot { control, target } => format!("cx q[{control}],q[{target}];"),
                Gate::Swap(a, b) => format!("swap q[{a}],q[{b}];"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Set of qubits touched by at least one gate.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(q, _)| q)
            .collect()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "qreg q[{}];", self.num_qubits)?;
        for g in &self.gates {
            writeln!(f, "{g};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_depth() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rz(1, 0.5));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.cnot_count(), 2);
        assert_eq!(c.single_qubit_count(), 3);
        // q0: H, CX, CX → but CX syncs with q1's chain: H(0)|H(1) level 1,
        // CX level 2, Rz level 3, CX level 4.
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn swap_costs_three_cnots() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        assert_eq!(c.cnot_count(), 3);
        let d = c.decompose_swaps();
        assert_eq!(d.gate_count(), 3);
        assert_eq!(d.cnot_count(), 3);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.push(Gate::S(0));
        c.push(Gate::Rz(1, 0.3));
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Rz(1, -0.3));
        assert_eq!(inv.gates()[1], Gate::Sdg(0));
    }

    #[test]
    fn cancel_adjacent_cnots_removes_pairs() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 1,
            target: 2,
        });
        let r = c.cancel_adjacent_cnots();
        assert_eq!(r.cnot_count(), 1);
        assert_eq!(
            r.gates()[0],
            Gate::Cnot {
                control: 1,
                target: 2
            }
        );
    }

    #[test]
    fn cancel_respects_intervening_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rz(1, 0.1)); // blocks cancellation
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.cancel_adjacent_cnots().cnot_count(), 2);

        let mut d = Circuit::new(3);
        d.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        d.push(Gate::Rz(2, 0.1)); // disjoint qubit: does not block
        d.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(d.cancel_adjacent_cnots().cnot_count(), 0);
    }

    #[test]
    fn cancel_runs_to_fixed_point() {
        // Nested pairs: outer pair only cancels after inner pair is gone.
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Cnot {
            control: 1,
            target: 0,
        });
        c.push(Gate::Cnot {
            control: 1,
            target: 0,
        });
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.cancel_adjacent_cnots().cnot_count(), 0);
    }

    #[test]
    fn remap_relabels() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let r = c.remapped(|q| 3 - q);
        assert_eq!(
            r.gates()[0],
            Gate::Cnot {
                control: 3,
                target: 2
            }
        );
    }

    #[test]
    fn active_qubits_reports_touched() {
        let mut c = Circuit::new(5);
        c.push(Gate::H(1));
        c.push(Gate::Cnot {
            control: 3,
            target: 1,
        });
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    fn qasm_export_covers_all_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::X(1));
        c.push(Gate::Y(1));
        c.push(Gate::Z(2));
        c.push(Gate::S(0));
        c.push(Gate::Sdg(0));
        c.push(Gate::Rx(1, 0.25));
        c.push(Gate::Ry(2, -0.5));
        c.push(Gate::Rz(0, 1.0));
        c.push(Gate::Cnot {
            control: 0,
            target: 2,
        });
        c.push(Gate::Swap(1, 2));
        let qasm = c.to_qasm();
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[3];"));
        // One line per gate plus the 3-line header.
        assert_eq!(qasm.lines().count(), 3 + c.gate_count());
        for needle in ["h q[0];", "sdg q[0];", "cx q[0],q[2];", "swap q[1],q[2];"] {
            assert!(qasm.contains(needle), "missing `{needle}`");
        }
        // Angles are emitted in full precision.
        assert!(qasm.contains("rx(2.5"));
    }

    #[test]
    #[should_panic]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    #[should_panic]
    fn push_rejects_degenerate_two_qubit() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot {
            control: 1,
            target: 1,
        });
    }
}
