//! Horizontal batch sharding: deterministic job→shard assignment, CRC-
//! sealed per-shard manifests, and orphan takeover.
//!
//! A shard is one process running the subset of a batch's jobs whose
//! index satisfies `index % shards == shard_id`. Because every job's
//! outcome is a pure function of `(batch_seed, index, spec)` — never of
//! which process ran it — any process can execute any job and produce the
//! bit-identical record. That is the safety argument for takeover: when a
//! shard dies mid-run (detected through its [lease](crate::lease)), a
//! surviving sibling or a re-run claims the next lease epoch and runs the
//! dead shard's unfinished jobs; even a *duplicated* execution merges
//! cleanly because both copies of a record are equal.
//!
//! Each shard seals `shard-<id>.manifest` — the same record codec as the
//! batch manifest, but carrying a sparse, ascending set of *global* job
//! indices plus shard lineage (owner, lease epoch, takeover provenance)
//! in the header. [`crate::merge`] unions these back into a standard
//! `batch.manifest` that is bit-identical to a 1-shard run's.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use obs::json::JsonValue;
use resilience::{Checkpoint, CheckpointError, FaultPlan};

use crate::engine::{run_scoped, SupervisorConfig, SupervisorError};
use crate::job::{JobRecord, JobSpec};
use crate::lease::{classify, try_claim, Lease, LeaseHealth, LeaseKeeper, STALE_AFTER};
use crate::manifest::{
    decode_record_sparse, encode_record, get_str, get_u64_str, get_usize, num, obj, string,
    BatchMeta,
};
use crate::splitmix64;

/// Checkpoint kind tag for per-shard manifests.
pub const KIND_SHARD_MANIFEST: &str = "shard-manifest";

/// How often a running shard heartbeats its lease.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// Which slice of a batch one process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Total number of shards the batch is split into (≥ 1).
    pub shards: usize,
    /// This process's shard id in `0..shards`.
    pub shard_id: usize,
}

impl ShardSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// A usage message when `shards` is zero or `shard_id` out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("--shards must be at least 1".to_string());
        }
        if self.shard_id >= self.shards {
            return Err(format!(
                "--shard-id {} out of range for --shards {}",
                self.shard_id, self.shards
            ));
        }
        Ok(())
    }
}

/// Deterministic job→shard assignment: round-robin over arrival order, so
/// every shard (and the merge) computes the same partition with no
/// coordination.
pub fn job_shard(index: usize, shards: usize) -> usize {
    index % shards.max(1)
}

/// The global job indices owned by `spec`, ascending.
pub fn shard_indices(n_jobs: usize, spec: &ShardSpec) -> Vec<usize> {
    (0..n_jobs)
        .filter(|&i| job_shard(i, spec.shards) == spec.shard_id)
        .collect()
}

/// The path of shard `shard_id`'s manifest under `dir`.
pub fn shard_manifest_path(dir: &Path, shard_id: usize) -> PathBuf {
    dir.join(format!("shard-{shard_id}.manifest"))
}

/// Shard-manifest header: the batch identity every shard must agree on,
/// plus this shard's lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// Batch identity (seed, total jobs, fault rate) — identical across
    /// shards, and identical to the merged manifest's meta.
    pub batch: BatchMeta,
    /// Total shard count of the run.
    pub shards: usize,
    /// Which shard this manifest covers.
    pub shard_id: usize,
    /// Owner descriptor (`pid:<pid>/<nonce>`) of the sealing process.
    pub owner: String,
    /// Lease epoch the manifest was sealed under.
    pub epoch: u64,
    /// Owner the sealing process took this shard over from, when the
    /// previous owner died mid-run.
    pub taken_over_from: Option<String>,
}

/// Encodes a shard's records as a `"shard-manifest"` checkpoint. Records
/// must carry global indices, ascending, all belonging to the shard.
pub fn encode_shard_manifest(meta: &ShardMeta, records: &[JobRecord]) -> Checkpoint {
    let mut header = vec![
        ("batch_seed", string(&meta.batch.batch_seed.to_string())),
        ("jobs", num(meta.batch.jobs)),
        (
            "fault_rate",
            string(&resilience::checkpoint::f64_to_hex(
                meta.batch.pipeline_fault_rate,
            )),
        ),
        ("shards", num(meta.shards)),
        ("shard_id", num(meta.shard_id)),
        ("records", num(records.len())),
        ("owner", string(&meta.owner)),
        ("epoch", string(&meta.epoch.to_string())),
    ];
    if let Some(from) = &meta.taken_over_from {
        header.push(("taken_over_from", string(from)));
    }
    let mut payload = vec![obj(header)];
    payload.extend(records.iter().map(encode_record));
    Checkpoint::new(KIND_SHARD_MANIFEST, payload)
}

/// Decodes a `"shard-manifest"` checkpoint back to meta + records,
/// validating the record count, strictly ascending global indices, index
/// range, and that every record belongs to the manifest's shard.
///
/// # Errors
///
/// [`CheckpointError`] on a wrong kind or any structural violation.
pub fn decode_shard_manifest(
    ck: &Checkpoint,
) -> Result<(ShardMeta, Vec<JobRecord>), CheckpointError> {
    if ck.kind != KIND_SHARD_MANIFEST {
        return Err(CheckpointError::Malformed(format!(
            "expected a {KIND_SHARD_MANIFEST} checkpoint, found `{}`",
            ck.kind
        )));
    }
    let header = ck
        .payload
        .first()
        .ok_or_else(|| CheckpointError::Malformed("shard manifest: empty payload".to_string()))?;
    let meta = ShardMeta {
        batch: BatchMeta {
            batch_seed: get_u64_str(header, "batch_seed")?,
            jobs: get_usize(header, "jobs")?,
            pipeline_fault_rate: resilience::checkpoint::f64_from_hex(get_str(
                header,
                "fault_rate",
            )?)?,
        },
        shards: get_usize(header, "shards")?,
        shard_id: get_usize(header, "shard_id")?,
        owner: get_str(header, "owner")?.to_string(),
        epoch: get_u64_str(header, "epoch")?,
        taken_over_from: header
            .get("taken_over_from")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
    };
    if meta.shards == 0 || meta.shard_id >= meta.shards {
        return Err(CheckpointError::Malformed(format!(
            "shard manifest: shard {}/{} is not a valid assignment",
            meta.shard_id, meta.shards
        )));
    }
    let declared = get_usize(header, "records")?;
    let lines = &ck.payload[1..];
    if lines.len() != declared {
        return Err(CheckpointError::Malformed(format!(
            "shard manifest declares {declared} records but carries {}",
            lines.len()
        )));
    }
    let mut records = Vec::with_capacity(lines.len());
    let mut last: Option<usize> = None;
    for line in lines {
        let record = decode_record_sparse(line)?;
        if record.index >= meta.batch.jobs {
            return Err(CheckpointError::Malformed(format!(
                "shard manifest: record index {} out of range ({} jobs)",
                record.index, meta.batch.jobs
            )));
        }
        if job_shard(record.index, meta.shards) != meta.shard_id {
            return Err(CheckpointError::Malformed(format!(
                "shard manifest: record index {} does not belong to shard {}",
                record.index, meta.shard_id
            )));
        }
        if last.is_some_and(|prev| prev >= record.index) {
            return Err(CheckpointError::Malformed(format!(
                "shard manifest: record index {} not strictly ascending",
                record.index
            )));
        }
        last = Some(record.index);
        records.push(record);
    }
    Ok((meta, records))
}

/// One takeover performed during a shard run.
#[derive(Debug, Clone, PartialEq)]
pub struct TakeoverOutcome {
    /// The shard taken over.
    pub shard_id: usize,
    /// Owner descriptor of the dead process.
    pub from: String,
    /// Lease epoch the takeover ran under.
    pub epoch: u64,
    /// Records produced (or re-sealed) for the taken-over shard.
    pub records: Vec<JobRecord>,
}

/// What one `run_shard` call accomplished: the shard's own records plus
/// any takeovers of dead siblings it performed after finishing.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunReport {
    /// This process's shard id.
    pub shard_id: usize,
    /// Total shard count of the run.
    pub shards: usize,
    /// Lease epoch this run acquired.
    pub epoch: u64,
    /// Dead owner this run took its *own* shard over from (a re-run after
    /// a crash), when there was one.
    pub taken_over_from: Option<String>,
    /// Records of the shard's own partition, ascending global indices.
    pub records: Vec<JobRecord>,
    /// Sibling takeovers performed after the own partition finished.
    pub takeovers: Vec<TakeoverOutcome>,
}

impl ShardRunReport {
    /// Every record this run produced (own partition + takeovers).
    pub fn all_records(&self) -> impl Iterator<Item = &JobRecord> {
        self.records
            .iter()
            .chain(self.takeovers.iter().flat_map(|t| t.records.iter()))
    }

    fn count(&self, label: &str) -> usize {
        self.all_records()
            .filter(|r| r.state.label() == label)
            .count()
    }

    /// Jobs left pending (drained) across own + taken-over records.
    pub fn pending(&self) -> usize {
        self.count("pending")
    }

    /// Jobs quarantined across own + taken-over records.
    pub fn quarantined(&self) -> usize {
        self.count("quarantined")
    }

    /// Jobs shed across own + taken-over records.
    pub fn shed(&self) -> usize {
        self.count("shed")
    }

    /// Jobs done across own + taken-over records.
    pub fn done(&self) -> usize {
        self.count("done")
    }
}

/// The batch identity this config implies for `jobs`.
fn batch_meta(jobs: &[JobSpec], config: &SupervisorConfig) -> BatchMeta {
    BatchMeta {
        batch_seed: config.batch_seed,
        jobs: jobs.len(),
        pipeline_fault_rate: config.pipeline_fault_rate,
    }
}

/// Reads a shard's prior manifest for resume, if one exists and belongs
/// to this batch. A missing or corrupt manifest is a fresh start (the
/// takeover rewrites it); a manifest from a *different* batch is an
/// error — silently clobbering someone else's records would lose data.
fn read_shard_prior(
    dir: &Path,
    shard_id: usize,
    shards: usize,
    expect: &BatchMeta,
) -> Result<Option<Vec<JobRecord>>, SupervisorError> {
    let path = shard_manifest_path(dir, shard_id);
    if !path.exists() {
        return Ok(None);
    }
    let Ok(ck) = Checkpoint::read(&path) else {
        return Ok(None); // torn mid-write by the dead shard
    };
    let Ok((meta, records)) = decode_shard_manifest(&ck) else {
        return Ok(None);
    };
    if meta.batch != *expect || meta.shards != shards || meta.shard_id != shard_id {
        return Err(SupervisorError::ManifestMismatch(format!(
            "shard manifest {} belongs to a different batch (seed {} jobs {} shards {})",
            path.display(),
            meta.batch.batch_seed,
            meta.batch.jobs,
            meta.shards
        )));
    }
    Ok(Some(records))
}

/// Seals one shard manifest via the checkpoint writer (atomic rename).
fn write_shard_manifest(
    dir: &Path,
    meta: &ShardMeta,
    records: &[JobRecord],
) -> Result<(), SupervisorError> {
    encode_shard_manifest(meta, records)
        .write(shard_manifest_path(dir, meta.shard_id))
        .map_err(SupervisorError::from)
}

fn note_takeover(config: &SupervisorConfig, shard_id: usize, from: &str, epoch: u64) {
    obs::counter_add("supervisor.takeovers", 1);
    obs::event!(
        "supervisor.takeover",
        shard = shard_id,
        from = from,
        epoch = epoch
    );
    if let Some(flight_dir) = &config.flight_dir {
        let _ = std::fs::create_dir_all(flight_dir);
        let _ = obs::flight::dump(flight_dir, &format!("shard{shard_id}"), "takeover");
    }
}

/// Runs one shard of a batch: acquires the shard's lease (taking over
/// from a dead prior owner if necessary), heartbeats it for the duration,
/// executes the shard's partition (resuming from a prior shard manifest
/// when one exists), seals `shard-<id>.manifest`, and then sweeps sibling
/// leases — any dead sibling is claimed, its unfinished jobs run, and its
/// manifest re-sealed, so a batch survives the death of entire shards.
///
/// Requires `config.ckpt_dir` (manifests and leases live there).
///
/// # Errors
///
/// [`SupervisorError::LeaseHeld`] when a live process owns the shard,
/// otherwise as [`crate::engine::run_batch`].
pub fn run_shard(
    jobs: &[JobSpec],
    config: &SupervisorConfig,
    spec: ShardSpec,
) -> Result<ShardRunReport, SupervisorError> {
    spec.validate().map_err(SupervisorError::Spec)?;
    let Some(dir) = config.ckpt_dir.clone() else {
        return Err(SupervisorError::Spec(
            "sharded batches need --checkpoint (manifests and leases live there)".to_string(),
        ));
    };
    std::fs::create_dir_all(&dir).map_err(|e| SupervisorError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let expect = batch_meta(jobs, config);

    // Acquire our own lease: epoch 0 fresh, prior epoch + 1 otherwise.
    // The epoch-named claim token arbitrates against concurrent siblings
    // and re-runs; losing it means someone else is (or was first to be)
    // responsible for this shard at this epoch.
    let (mut epoch, mut taken_over_from) = match classify(&dir, spec.shard_id, STALE_AFTER) {
        LeaseHealth::Missing => (0, None),
        LeaseHealth::Done(prev) => (prev.epoch + 1, None),
        LeaseHealth::Dead(prev) => (prev.epoch + 1, Some(prev.owner())),
        LeaseHealth::Alive(prev) => {
            return Err(SupervisorError::LeaseHeld(format!(
                "shard {} is running as {} (epoch {})",
                spec.shard_id,
                prev.owner(),
                prev.epoch
            )));
        }
    };
    // A failed claim usually means a live racer — but it can also be the
    // wreckage of a claimant that died *between* claiming the token and
    // writing its first lease (claim file present, lease still missing).
    // Re-classify: a live owner ends the attempt, anything else advances
    // the epoch past the orphaned token. Bounded so a pathological racer
    // cannot spin us forever.
    let mut claim_attempts = 0usize;
    loop {
        if try_claim(&dir, spec.shard_id, epoch).map_err(|e| SupervisorError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })? {
            break;
        }
        claim_attempts += 1;
        if claim_attempts > 64 {
            return Err(SupervisorError::LeaseHeld(format!(
                "shard {} claim contention did not settle after {claim_attempts} epochs",
                spec.shard_id
            )));
        }
        match classify(&dir, spec.shard_id, STALE_AFTER) {
            LeaseHealth::Alive(prev) => {
                return Err(SupervisorError::LeaseHeld(format!(
                    "shard {} is running as {} (epoch {})",
                    spec.shard_id,
                    prev.owner(),
                    prev.epoch
                )));
            }
            LeaseHealth::Done(prev) => {
                epoch = (epoch + 1).max(prev.epoch + 1);
                taken_over_from = None;
            }
            LeaseHealth::Dead(prev) => {
                epoch = (epoch + 1).max(prev.epoch + 1);
                taken_over_from = Some(prev.owner());
            }
            LeaseHealth::Missing => epoch += 1,
        }
    }

    let prior = read_shard_prior(&dir, spec.shard_id, spec.shards, &expect)?;
    let (pid, nonce) = crate::lease::new_owner(spec.shard_id);
    // The lease fault plan is deliberately separate from the pipeline
    // plan: heartbeat cadence is wall-clock, so its draw count varies
    // run-to-run, and it must never perturb job-record determinism.
    let lease_plan = FaultPlan::new(
        splitmix64(config.batch_seed ^ (spec.shard_id as u64).wrapping_add(0x1EA5E)),
        config.injection.rate,
    );
    let keeper = LeaseKeeper::new(
        &dir,
        Lease {
            shard_id: spec.shard_id,
            owner_pid: pid,
            host: crate::lease::local_host(),
            owner_nonce: nonce,
            epoch,
            beats: 0,
            done: false,
            taken_over_from: taken_over_from.clone(),
        },
        lease_plan,
    );
    if let Some(from) = &taken_over_from {
        // A re-run resurrecting its own dead shard is a takeover too.
        note_takeover(config, spec.shard_id, from, epoch);
    }
    obs::counter_add("supervisor.shards", 1);

    let owned = shard_indices(jobs.len(), &spec);
    let stop = AtomicBool::new(false);
    let result: Result<ShardRunReport, SupervisorError> = std::thread::scope(|scope| {
        let keeper_ref = &keeper;
        let stop_ref = &stop;
        scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                std::thread::sleep(HEARTBEAT_INTERVAL);
                if stop_ref.load(Ordering::Relaxed) {
                    break;
                }
                keeper_ref.beat();
            }
        });
        let run = || -> Result<ShardRunReport, SupervisorError> {
            let records = run_scoped(jobs, config, prior.as_deref(), Some(&owned))?;
            write_shard_manifest(
                &dir,
                &ShardMeta {
                    batch: expect,
                    shards: spec.shards,
                    shard_id: spec.shard_id,
                    owner: keeper.lease().owner(),
                    epoch,
                    taken_over_from: taken_over_from.clone(),
                },
                &records,
            )?;

            // Takeover sweep: after our own partition is sealed, adopt any
            // sibling whose owner died mid-run. Loop until a full pass
            // finds nothing dead, so cascading deaths are all absorbed.
            let mut takeovers = Vec::new();
            loop {
                let mut progressed = false;
                for sibling in (0..spec.shards).filter(|&s| s != spec.shard_id) {
                    let LeaseHealth::Dead(dead) = classify(&dir, sibling, STALE_AFTER) else {
                        continue;
                    };
                    let sib_epoch = dead.epoch + 1;
                    match try_claim(&dir, sibling, sib_epoch) {
                        Ok(true) => {}
                        Ok(false) => continue, // another survivor won
                        Err(e) => {
                            return Err(SupervisorError::Io {
                                path: dir.display().to_string(),
                                message: e.to_string(),
                            })
                        }
                    }
                    progressed = true;
                    let from = dead.owner();
                    note_takeover(config, sibling, &from, sib_epoch);
                    // Mark the adopted shard as ours (our pid carries the
                    // liveness signal) before running its jobs.
                    let (sib_pid, sib_nonce) = crate::lease::new_owner(sibling);
                    let sib_keeper = LeaseKeeper::new(
                        &dir,
                        Lease {
                            shard_id: sibling,
                            owner_pid: sib_pid,
                            host: crate::lease::local_host(),
                            owner_nonce: sib_nonce,
                            epoch: sib_epoch,
                            beats: 0,
                            done: false,
                            taken_over_from: Some(from.clone()),
                        },
                        FaultPlan::none(),
                    );
                    let sib_spec = ShardSpec {
                        shards: spec.shards,
                        shard_id: sibling,
                    };
                    let sib_prior = read_shard_prior(&dir, sibling, spec.shards, &expect)?;
                    let sib_owned = shard_indices(jobs.len(), &sib_spec);
                    let sib_records =
                        run_scoped(jobs, config, sib_prior.as_deref(), Some(&sib_owned))?;
                    write_shard_manifest(
                        &dir,
                        &ShardMeta {
                            batch: expect,
                            shards: spec.shards,
                            shard_id: sibling,
                            owner: sib_keeper.lease().owner(),
                            epoch: sib_epoch,
                            taken_over_from: Some(from.clone()),
                        },
                        &sib_records,
                    )?;
                    sib_keeper.mark_done();
                    takeovers.push(TakeoverOutcome {
                        shard_id: sibling,
                        from,
                        epoch: sib_epoch,
                        records: sib_records,
                    });
                }
                if !progressed {
                    break;
                }
            }
            Ok(ShardRunReport {
                shard_id: spec.shard_id,
                shards: spec.shards,
                epoch,
                taken_over_from: taken_over_from.clone(),
                records,
                takeovers,
            })
        };
        let out = run();
        stop.store(true, Ordering::Relaxed);
        out
    });
    if result.is_ok() {
        keeper.mark_done();
    }
    // On error the lease stays `running`; once this process exits the
    // lease reads as dead and the shard is up for takeover — exactly
    // right for a failed run.
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;

    fn record(index: usize, id: &str) -> JobRecord {
        JobRecord {
            index,
            id: id.to_string(),
            state: JobState::Done {
                energy_bits: (-1.1f64).to_bits(),
                iterations: 3,
                evaluations: 9,
                scf_retries: 0,
                sabre_fallback: false,
            },
            retries: 0,
            backoff_ms: 0,
        }
    }

    fn meta() -> ShardMeta {
        ShardMeta {
            batch: BatchMeta {
                batch_seed: u64::MAX - 77,
                jobs: 7,
                pipeline_fault_rate: 0.25,
            },
            shards: 3,
            shard_id: 1,
            owner: "pid:123/00abcdef".to_string(),
            epoch: 2,
            taken_over_from: Some("pid:99/00000001".to_string()),
        }
    }

    #[test]
    fn partition_covers_every_job_exactly_once() {
        for shards in 1..=5 {
            let mut seen = vec![0usize; 23];
            for shard_id in 0..shards {
                for index in shard_indices(23, &ShardSpec { shards, shard_id }) {
                    seen[index] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "shards={shards}: {seen:?}");
        }
    }

    #[test]
    fn spec_validation() {
        assert!(ShardSpec {
            shards: 0,
            shard_id: 0
        }
        .validate()
        .is_err());
        assert!(ShardSpec {
            shards: 2,
            shard_id: 2
        }
        .validate()
        .is_err());
        assert!(ShardSpec {
            shards: 2,
            shard_id: 1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn shard_manifest_round_trips_bit_exactly() {
        let meta = meta();
        // Shard 1 of 3 over 7 jobs owns global indices 1 and 4.
        let records = vec![record(1, "b"), record(4, "e")];
        let ck = encode_shard_manifest(&meta, &records);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        let (m, r) = decode_shard_manifest(&back).unwrap();
        assert_eq!(m, meta);
        assert_eq!(r, records);
    }

    #[test]
    fn shard_manifest_rejects_structural_violations() {
        let meta = meta();
        // Wrong kind.
        let mut ck = encode_shard_manifest(&meta, &[record(1, "b")]);
        ck.kind = "batch-manifest".to_string();
        assert!(decode_shard_manifest(&ck).is_err());
        // Foreign index (2 belongs to shard 2, not shard 1).
        let ck = encode_shard_manifest(&meta, &[record(2, "c")]);
        assert!(decode_shard_manifest(&ck).is_err());
        // Out-of-range index.
        let ck = encode_shard_manifest(&meta, &[record(7, "h")]);
        assert!(decode_shard_manifest(&ck).is_err());
        // Non-ascending indices.
        let ck = encode_shard_manifest(&meta, &[record(4, "e"), record(1, "b")]);
        assert!(decode_shard_manifest(&ck).is_err());
        // Record-count mismatch.
        let mut ck = encode_shard_manifest(&meta, &[record(1, "b"), record(4, "e")]);
        ck.payload.pop();
        assert!(decode_shard_manifest(&ck).is_err());
    }
}
