//! Supervised chaos: drive whole batches through the supervisor under
//! injected panics, hangs, and transients, and assert the supervision
//! invariants hold.
//!
//! Per trial, the harness checks that:
//!
//! 1. **No job is lost or double-counted** — every job lands in exactly
//!    one terminal state, and `done + quarantined + shed` equals the
//!    batch size. The process never aborts: panics stay inside their
//!    worker.
//! 2. **Worker count is invisible** — the same batch at 1 worker yields
//!    bit-identical per-job records.
//! 3. **Drain/resume is exact** — a batch drained after a few budget
//!    slices and resumed from its manifest reproduces the uninterrupted
//!    batch bit-for-bit.

use std::path::{Path, PathBuf};
use std::time::Duration;

use chem::Benchmark;

use crate::engine::{run_batch, run_batch_resumed, InjectionPlan, SupervisorConfig};
use crate::job::JobSpec;
use crate::manifest::{decode_manifest, encode_manifest, BatchMeta};
use crate::queue::ShedPolicy;
use resilience::Checkpoint;

/// Supervised-chaos campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedChaosOptions {
    /// Campaign seed; trial `t` derives its batch seed from it.
    pub seed: u64,
    /// Number of trials.
    pub trials: usize,
    /// Jobs per trial batch.
    pub jobs: usize,
    /// Worker threads for the primary run of each trial.
    pub workers: usize,
    /// Injection rate for panics/hangs/transients (the pipeline fault
    /// plan runs at half this rate).
    pub fault_rate: f64,
    /// Also drain each trial's batch mid-flight and verify the resumed
    /// records match the uninterrupted ones bit-for-bit.
    pub check_drain: bool,
    /// Scratch directory for drain manifests (defaults to the system
    /// temp directory).
    pub scratch_dir: Option<PathBuf>,
    /// When set, every trial arms the flight recorder so quarantines and
    /// injected faults dump `flight-<job>.jsonl` rings here.
    pub flight_dir: Option<PathBuf>,
}

impl Default for SupervisedChaosOptions {
    fn default() -> Self {
        SupervisedChaosOptions {
            seed: 42,
            trials: 10,
            jobs: 6,
            workers: 2,
            fault_rate: 0.25,
            check_drain: true,
            scratch_dir: None,
            flight_dir: None,
        }
    }
}

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedTrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// Jobs that completed.
    pub done: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Supervisor-level retries spent across the batch.
    pub retries: usize,
    /// Invariant violations (empty = the trial survived).
    pub violations: Vec<String>,
}

/// The whole campaign's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedChaosReport {
    /// Per-trial outcomes.
    pub outcomes: Vec<SupervisedTrialOutcome>,
}

impl SupervisedChaosReport {
    /// Trials that violated an invariant.
    pub fn failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .count()
    }

    /// Whether every trial upheld every invariant.
    pub fn survived(&self) -> bool {
        self.failures() == 0
    }
}

pub(crate) fn trial_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("h2-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.64 + 0.05 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

fn trial_config(trial: usize, opts: &SupervisedChaosOptions) -> SupervisorConfig {
    // Same trial-seed derivation as the unsupervised chaos harness.
    let batch_seed = opts
        .seed
        .wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Every third trial undersizes the queue so the shed path gets
    // exercised too, alternating the policy.
    let (queue_cap, shed) = if trial % 3 == 2 && opts.jobs > 1 {
        let policy = if trial.is_multiple_of(2) {
            ShedPolicy::RejectNew
        } else {
            ShedPolicy::DropOldest
        };
        (opts.jobs - 1, policy)
    } else {
        (0, ShedPolicy::RejectNew)
    };
    SupervisorConfig {
        workers: opts.workers,
        batch_seed,
        max_retries: 3,
        queue_cap,
        shed,
        slice_ticks: 2,
        max_slices: 64,
        breaker_threshold: 3,
        pipeline_fault_rate: opts.fault_rate * 0.5,
        injection: InjectionPlan::chaos(opts.fault_rate),
        flight_dir: opts.flight_dir.clone(),
        ..SupervisorConfig::default()
    }
}

/// Runs the supervised-chaos campaign.
pub fn run_supervised_chaos(opts: &SupervisedChaosOptions) -> SupervisedChaosReport {
    let mut span = obs::span("supervisor.chaos");
    span.record("trials", opts.trials);
    span.record("fault_rate", opts.fault_rate);

    let jobs = trial_jobs(opts.jobs.max(1));
    let mut outcomes = Vec::with_capacity(opts.trials);
    for trial in 0..opts.trials {
        let config = trial_config(trial, opts);
        let mut violations = Vec::new();

        let baseline = match run_batch(&jobs, &config) {
            Ok(report) => report,
            Err(e) => {
                outcomes.push(SupervisedTrialOutcome {
                    trial,
                    done: 0,
                    quarantined: 0,
                    shed: 0,
                    retries: 0,
                    violations: vec![format!("supervisor error: {e}")],
                });
                obs::counter_add("supervisor.chaos_failures", 1);
                continue;
            }
        };

        // Invariant 1: exactly one terminal state per job, none lost.
        if baseline.records.len() != jobs.len() {
            violations.push(format!(
                "{} records for {} jobs",
                baseline.records.len(),
                jobs.len()
            ));
        }
        if !baseline.all_terminal() {
            violations.push("undrained batch left non-terminal jobs".to_string());
        }
        let counted = baseline.done() + baseline.quarantined() + baseline.shed();
        if counted != jobs.len() {
            violations.push(format!(
                "terminal states count {counted}, expected {} (lost or double-counted)",
                jobs.len()
            ));
        }

        // Invariant 2: worker count is invisible in the records.
        let alt_workers = if config.workers == 1 { 4 } else { 1 };
        match run_batch(
            &jobs,
            &SupervisorConfig {
                workers: alt_workers,
                ..config.clone()
            },
        ) {
            Ok(alt) if alt.records != baseline.records => violations.push(format!(
                "records differ between {} and {alt_workers} workers",
                config.workers
            )),
            Ok(_) => {}
            Err(e) => violations.push(format!("rerun at {alt_workers} workers failed: {e}")),
        }

        // Invariant 3: drain + resume reproduces the uninterrupted batch.
        if opts.check_drain {
            if let Err(v) = check_drain_resume(trial, &jobs, &config, &baseline.records, opts) {
                violations.push(v);
            }
        }

        obs::event!(
            "supervisor.chaos_trial",
            trial = trial,
            done = baseline.done(),
            quarantined = baseline.quarantined(),
            shed = baseline.shed(),
            violations = violations.len()
        );
        if !violations.is_empty() {
            obs::counter_add("supervisor.chaos_failures", 1);
        }
        outcomes.push(SupervisedTrialOutcome {
            trial,
            done: baseline.done(),
            quarantined: baseline.quarantined(),
            shed: baseline.shed(),
            retries: baseline.records.iter().map(|r| r.retries).sum(),
            violations,
        });
    }

    let report = SupervisedChaosReport { outcomes };
    span.record("failures", report.failures());
    report
}

fn check_drain_resume(
    trial: usize,
    jobs: &[JobSpec],
    config: &SupervisorConfig,
    expected: &[crate::job::JobRecord],
    opts: &SupervisedChaosOptions,
) -> Result<(), String> {
    let scratch = opts
        .scratch_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("pcd-supervised-{}-{trial}", std::process::id()));
    let result = drain_resume_inner(jobs, config, expected, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn drain_resume_inner(
    jobs: &[JobSpec],
    config: &SupervisorConfig,
    expected: &[crate::job::JobRecord],
    scratch: &std::path::Path,
) -> Result<(), String> {
    let drained_config = SupervisorConfig {
        drain_after_ticks: Some(3),
        ckpt_dir: Some(scratch.to_path_buf()),
        ..config.clone()
    };
    let drained = run_batch(jobs, &drained_config).map_err(|e| format!("drained run: {e}"))?;
    let resumed = if drained.pending() > 0 {
        let ck = Checkpoint::read(scratch.join("batch.manifest"))
            .map_err(|e| format!("manifest read: {e}"))?;
        let (meta, prior) = decode_manifest(&ck).map_err(|e| format!("manifest decode: {e}"))?;
        if meta.batch_seed != config.batch_seed {
            return Err("manifest carries a different batch seed".to_string());
        }
        let resume_config = SupervisorConfig {
            ckpt_dir: Some(scratch.to_path_buf()),
            ..config.clone()
        };
        run_batch_resumed(jobs, &resume_config, Some(&prior))
            .map_err(|e| format!("resume: {e}"))?
            .records
    } else {
        drained.records
    };
    if resumed != expected {
        return Err("drained-then-resumed records differ from the uninterrupted batch".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Kill-shard chaos: SIGKILL a real shard subprocess mid-batch and verify
// takeover + merge reconstruct the 1-shard manifest bit-for-bit.
// ---------------------------------------------------------------------------

/// Kill-shard campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KillShardOptions {
    /// Campaign seed; trial `t` derives its batch seed from it, and the
    /// victim shard is drawn from it too.
    pub seed: u64,
    /// Number of trials.
    pub trials: usize,
    /// Jobs per trial batch.
    pub jobs: usize,
    /// Shard processes per trial.
    pub shards: usize,
    /// Worker threads per shard process.
    pub workers: usize,
    /// Pipeline fault-injection rate passed to every shard (and the
    /// reference run), exercising takeover under concurrent faults.
    pub fault_rate: f64,
    /// The `pcd` binary to spawn shards with.
    pub pcd_exe: PathBuf,
    /// Scratch parent directory (defaults to the system temp directory).
    pub scratch_dir: Option<PathBuf>,
    /// When set, shards arm the flight recorder here and takeovers dump
    /// rings.
    pub flight_dir: Option<PathBuf>,
}

impl Default for KillShardOptions {
    fn default() -> Self {
        KillShardOptions {
            seed: 42,
            trials: 2,
            jobs: 6,
            shards: 3,
            workers: 2,
            fault_rate: 0.25,
            pcd_exe: PathBuf::from("pcd"),
            scratch_dir: None,
            flight_dir: None,
        }
    }
}

/// One kill-shard trial's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct KillShardTrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// The shard whose process was SIGKILLed.
    pub victim: usize,
    /// Whether the kill actually landed mid-run (a fast victim may seal
    /// its manifest and exit before the signal).
    pub killed_mid_run: bool,
    /// Takeovers visible in the merged lineage.
    pub takeovers: usize,
    /// Whether an in-process rescue run was needed after the survivors'
    /// sweep (no sibling adopted the victim in time).
    pub rescued: bool,
    /// Invariant violations (empty = the trial survived).
    pub violations: Vec<String>,
}

/// The whole kill-shard campaign's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct KillShardReport {
    /// Per-trial outcomes.
    pub outcomes: Vec<KillShardTrialOutcome>,
}

impl KillShardReport {
    /// Trials that violated an invariant.
    pub fn failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .count()
    }

    /// Whether every trial upheld every invariant.
    pub fn survived(&self) -> bool {
        self.failures() == 0
    }

    /// Takeovers observed across the campaign.
    pub fn takeovers(&self) -> usize {
        self.outcomes.iter().map(|o| o.takeovers).sum()
    }
}

/// Runs the kill-shard campaign: per trial, launches `shards` real `pcd
/// batch --shard-id` subprocesses over a shared checkpoint directory,
/// SIGKILLs a seeded victim as soon as its lease appears, lets the
/// survivors' takeover sweep (or an in-process rescue re-run) absorb the
/// orphaned jobs, merges, and asserts the sealed manifest is bit-identical
/// to an uninterrupted in-process 1-shard reference — no job lost,
/// duplicated, or silently degraded.
pub fn run_kill_shard_chaos(opts: &KillShardOptions) -> KillShardReport {
    let mut span = obs::span("supervisor.kill_shard_chaos");
    span.record("trials", opts.trials);
    span.record("shards", opts.shards);

    let jobs = trial_jobs(opts.jobs.max(1));
    let mut outcomes = Vec::with_capacity(opts.trials);
    for trial in 0..opts.trials {
        let batch_seed = opts
            .seed
            .wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scratch = opts
            .scratch_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join(format!("pcd-killshard-{}-{trial}", std::process::id()));
        let outcome = run_kill_shard_trial(trial, batch_seed, &jobs, &scratch, opts);
        if !outcome.violations.is_empty() {
            obs::counter_add("supervisor.chaos_failures", 1);
        }
        obs::event!(
            "supervisor.kill_shard_trial",
            trial = trial,
            victim = outcome.victim,
            killed_mid_run = outcome.killed_mid_run,
            takeovers = outcome.takeovers,
            rescued = outcome.rescued,
            violations = outcome.violations.len()
        );
        let _ = std::fs::remove_dir_all(&scratch);
        outcomes.push(outcome);
    }

    let report = KillShardReport { outcomes };
    span.record("failures", report.failures());
    span.record("takeovers", report.takeovers());
    report
}

/// The shard subprocesses are spawned with exactly these flags; this
/// config mirrors what `pcd batch` builds from them, so the in-process
/// reference and rescue runs share the determinism keys with the fleet.
fn kill_shard_config(batch_seed: u64, opts: &KillShardOptions) -> SupervisorConfig {
    SupervisorConfig {
        workers: opts.workers.max(1),
        batch_seed,
        pipeline_fault_rate: opts.fault_rate,
        injection: if opts.fault_rate > 0.0 {
            InjectionPlan::chaos(opts.fault_rate)
        } else {
            InjectionPlan::none()
        },
        ..SupervisorConfig::default()
    }
}

fn run_kill_shard_trial(
    trial: usize,
    batch_seed: u64,
    jobs: &[JobSpec],
    scratch: &Path,
    opts: &KillShardOptions,
) -> KillShardTrialOutcome {
    let victim = (crate::splitmix64(batch_seed ^ 0xDEAD) % opts.shards.max(1) as u64) as usize;
    let mut outcome = KillShardTrialOutcome {
        trial,
        victim,
        killed_mid_run: false,
        takeovers: 0,
        rescued: false,
        violations: Vec::new(),
    };
    if let Err(v) = kill_shard_trial_inner(batch_seed, jobs, scratch, opts, &mut outcome) {
        outcome.violations.push(v);
    }
    outcome
}

fn kill_shard_trial_inner(
    batch_seed: u64,
    jobs: &[JobSpec],
    scratch: &Path,
    opts: &KillShardOptions,
    outcome: &mut KillShardTrialOutcome,
) -> Result<(), String> {
    use crate::lease::Lease;
    use crate::merge::merge_shards;
    use crate::shard::{job_shard, run_shard, ShardSpec};
    use std::process::{Command, Stdio};

    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).map_err(|e| format!("scratch dir: {e}"))?;
    let jobs_path = scratch.join("jobs.jsonl");
    let text: String = jobs.iter().map(|j| j.to_json_line() + "\n").collect();
    std::fs::write(&jobs_path, text).map_err(|e| format!("jobs file: {e}"))?;

    // Uninterrupted in-process reference: the sealed manifest every
    // sharded + killed + merged run must reproduce bit-for-bit.
    let config = kill_shard_config(batch_seed, opts);
    let reference = run_batch(jobs, &config).map_err(|e| format!("reference run: {e}"))?;
    let meta = BatchMeta {
        batch_seed,
        jobs: jobs.len(),
        pipeline_fault_rate: config.pipeline_fault_rate,
    };
    let reference_bytes = encode_manifest(&meta, &reference.records).to_bytes();

    // Launch the fleet.
    let dir = scratch.join("ckpt");
    let mut children = Vec::new();
    for shard_id in 0..opts.shards {
        let mut cmd = Command::new(&opts.pcd_exe);
        cmd.arg("batch")
            .arg(&jobs_path)
            .args(["--workers", &opts.workers.to_string()])
            .args(["--seed", &batch_seed.to_string()])
            .args(["--shards", &opts.shards.to_string()])
            .args(["--shard-id", &shard_id.to_string()])
            .arg("--checkpoint")
            .arg(&dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if opts.fault_rate > 0.0 {
            cmd.args(["--fault-rate", &opts.fault_rate.to_string()]);
        }
        if let Some(flight) = &opts.flight_dir {
            cmd.arg("--flight-dir").arg(flight);
        }
        children.push((
            shard_id,
            cmd.spawn()
                .map_err(|e| format!("spawning shard {shard_id}: {e}"))?,
        ));
    }

    // SIGKILL the victim the moment its lease appears (i.e. mid-run,
    // after admission but before its manifest can possibly be sealed...
    // unless the shard is faster than the poll, which the exit status
    // below detects).
    let lease_path = Lease::path(&dir, outcome.victim);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !lease_path.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut statuses = Vec::new();
    for (shard_id, mut child) in children {
        if shard_id == outcome.victim {
            let _ = child.kill();
        }
        let status = child
            .wait()
            .map_err(|e| format!("waiting for shard {shard_id}: {e}"))?;
        statuses.push((shard_id, status));
    }
    let victim_status = statuses
        .iter()
        .find(|(s, _)| *s == outcome.victim)
        .map(|(_, st)| *st)
        .ok_or_else(|| "victim status missing".to_string())?;
    // `killed_mid_run` = the signal (or a failure) actually cut the run
    // short; a victim that beat the poll to completion exits 0.
    outcome.killed_mid_run = !victim_status.success();

    // First merge: survivors may already have absorbed the victim via
    // their takeover sweep.
    let first = match merge_shards(&dir, jobs) {
        Ok(first) => first,
        Err(e) => return Err(format!("first merge: {e}")),
    };

    // Rescue path: whatever is still missing or pending belongs to shards
    // nobody finished — re-run them in-process (`run_shard` takes the dead
    // lease over) and merge again. This is the "re-run takeover" flow a
    // human operator would use: `pcd batch --shards N --shard-id K` again.
    let rescue_config = SupervisorConfig {
        ckpt_dir: Some(dir.clone()),
        flight_dir: opts.flight_dir.clone(),
        ..config.clone()
    };
    let mut unfinished: Vec<usize> = first.missing.clone();
    unfinished.extend(
        first
            .records
            .iter()
            .filter(|r| !r.state.is_terminal())
            .map(|r| r.index),
    );
    let mut rescue_shards: Vec<usize> = unfinished
        .iter()
        .map(|&i| job_shard(i, opts.shards))
        .collect();
    rescue_shards.sort_unstable();
    rescue_shards.dedup();
    let merged = if rescue_shards.is_empty() {
        first
    } else {
        outcome.rescued = true;
        for shard_id in rescue_shards {
            run_shard(
                jobs,
                &rescue_config,
                ShardSpec {
                    shards: opts.shards,
                    shard_id,
                },
            )
            .map_err(|e| format!("rescue of shard {shard_id}: {e}"))?;
        }
        merge_shards(&dir, jobs).map_err(|e| format!("post-rescue merge: {e}"))?
    };

    outcome.takeovers = merged.takeovers().count();

    // The invariants: every job terminal exactly once, bit-identical to
    // the uninterrupted reference, and a mid-run kill must be visible as
    // a takeover in the lineage.
    if merged.records.len() != jobs.len() {
        outcome.violations.push(format!(
            "merged {} records for {} jobs",
            merged.records.len(),
            jobs.len()
        ));
    }
    if !merged.complete() {
        outcome
            .violations
            .push("merged batch left jobs missing or pending".to_string());
    }
    if merged.sealed != reference_bytes {
        outcome
            .violations
            .push("merged batch.manifest differs from the 1-shard reference manifest".to_string());
    }
    if outcome.killed_mid_run && !merged.quarantined.is_empty() {
        // A torn victim manifest is quarantined, then the rescue re-seals
        // it — reaching here with a quarantine AND a clean merge is fine,
        // so this is informational, not a violation.
        obs::counter_add("supervisor.kill_shard_torn_manifests", 1);
    }
    if outcome.killed_mid_run && outcome.takeovers == 0 && !victim_manifest_sealed(&dir, outcome) {
        outcome.violations.push(format!(
            "victim shard {} was killed mid-run but no takeover is recorded",
            outcome.victim
        ));
    }
    Ok(())
}

/// Whether the victim sealed its own manifest despite the kill (it raced
/// past the lease poll): then no takeover is required.
fn victim_manifest_sealed(dir: &Path, outcome: &KillShardTrialOutcome) -> bool {
    let path = crate::shard::shard_manifest_path(dir, outcome.victim);
    Checkpoint::read(&path)
        .ok()
        .and_then(|ck| crate::shard::decode_shard_manifest(&ck).ok())
        .is_some_and(|(meta, _)| meta.taken_over_from.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_survives() {
        let opts = SupervisedChaosOptions {
            trials: 3,
            jobs: 4,
            fault_rate: 0.3,
            ..SupervisedChaosOptions::default()
        };
        let report = run_supervised_chaos(&opts);
        assert_eq!(report.outcomes.len(), 3);
        for outcome in &report.outcomes {
            assert!(
                outcome.violations.is_empty(),
                "trial {} violations: {:?}",
                outcome.trial,
                outcome.violations
            );
        }
        assert!(report.survived());
    }

    #[test]
    fn shed_trials_actually_shed() {
        let opts = SupervisedChaosOptions {
            trials: 3,
            jobs: 4,
            fault_rate: 0.0,
            check_drain: false,
            ..SupervisedChaosOptions::default()
        };
        let report = run_supervised_chaos(&opts);
        // Trial 2 undersizes the queue by one.
        assert_eq!(report.outcomes[2].shed, 1);
        assert!(report.survived());
    }
}
