//! Supervised chaos: drive whole batches through the supervisor under
//! injected panics, hangs, and transients, and assert the supervision
//! invariants hold.
//!
//! Per trial, the harness checks that:
//!
//! 1. **No job is lost or double-counted** — every job lands in exactly
//!    one terminal state, and `done + quarantined + shed` equals the
//!    batch size. The process never aborts: panics stay inside their
//!    worker.
//! 2. **Worker count is invisible** — the same batch at 1 worker yields
//!    bit-identical per-job records.
//! 3. **Drain/resume is exact** — a batch drained after a few budget
//!    slices and resumed from its manifest reproduces the uninterrupted
//!    batch bit-for-bit.

use std::path::PathBuf;

use chem::Benchmark;

use crate::engine::{run_batch, run_batch_resumed, InjectionPlan, SupervisorConfig};
use crate::job::JobSpec;
use crate::manifest::decode_manifest;
use crate::queue::ShedPolicy;
use resilience::Checkpoint;

/// Supervised-chaos campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedChaosOptions {
    /// Campaign seed; trial `t` derives its batch seed from it.
    pub seed: u64,
    /// Number of trials.
    pub trials: usize,
    /// Jobs per trial batch.
    pub jobs: usize,
    /// Worker threads for the primary run of each trial.
    pub workers: usize,
    /// Injection rate for panics/hangs/transients (the pipeline fault
    /// plan runs at half this rate).
    pub fault_rate: f64,
    /// Also drain each trial's batch mid-flight and verify the resumed
    /// records match the uninterrupted ones bit-for-bit.
    pub check_drain: bool,
    /// Scratch directory for drain manifests (defaults to the system
    /// temp directory).
    pub scratch_dir: Option<PathBuf>,
    /// When set, every trial arms the flight recorder so quarantines and
    /// injected faults dump `flight-<job>.jsonl` rings here.
    pub flight_dir: Option<PathBuf>,
}

impl Default for SupervisedChaosOptions {
    fn default() -> Self {
        SupervisedChaosOptions {
            seed: 42,
            trials: 10,
            jobs: 6,
            workers: 2,
            fault_rate: 0.25,
            check_drain: true,
            scratch_dir: None,
            flight_dir: None,
        }
    }
}

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedTrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// Jobs that completed.
    pub done: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Supervisor-level retries spent across the batch.
    pub retries: usize,
    /// Invariant violations (empty = the trial survived).
    pub violations: Vec<String>,
}

/// The whole campaign's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedChaosReport {
    /// Per-trial outcomes.
    pub outcomes: Vec<SupervisedTrialOutcome>,
}

impl SupervisedChaosReport {
    /// Trials that violated an invariant.
    pub fn failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .count()
    }

    /// Whether every trial upheld every invariant.
    pub fn survived(&self) -> bool {
        self.failures() == 0
    }
}

fn trial_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: format!("h2-{i}"),
            benchmark: Benchmark::H2,
            bond: Some(0.64 + 0.05 * i as f64),
            ratio: 1.0,
        })
        .collect()
}

fn trial_config(trial: usize, opts: &SupervisedChaosOptions) -> SupervisorConfig {
    // Same trial-seed derivation as the unsupervised chaos harness.
    let batch_seed = opts
        .seed
        .wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Every third trial undersizes the queue so the shed path gets
    // exercised too, alternating the policy.
    let (queue_cap, shed) = if trial % 3 == 2 && opts.jobs > 1 {
        let policy = if trial.is_multiple_of(2) {
            ShedPolicy::RejectNew
        } else {
            ShedPolicy::DropOldest
        };
        (opts.jobs - 1, policy)
    } else {
        (0, ShedPolicy::RejectNew)
    };
    SupervisorConfig {
        workers: opts.workers,
        batch_seed,
        max_retries: 3,
        queue_cap,
        shed,
        slice_ticks: 2,
        max_slices: 64,
        breaker_threshold: 3,
        pipeline_fault_rate: opts.fault_rate * 0.5,
        injection: InjectionPlan::chaos(opts.fault_rate),
        flight_dir: opts.flight_dir.clone(),
        ..SupervisorConfig::default()
    }
}

/// Runs the supervised-chaos campaign.
pub fn run_supervised_chaos(opts: &SupervisedChaosOptions) -> SupervisedChaosReport {
    let mut span = obs::span("supervisor.chaos");
    span.record("trials", opts.trials);
    span.record("fault_rate", opts.fault_rate);

    let jobs = trial_jobs(opts.jobs.max(1));
    let mut outcomes = Vec::with_capacity(opts.trials);
    for trial in 0..opts.trials {
        let config = trial_config(trial, opts);
        let mut violations = Vec::new();

        let baseline = match run_batch(&jobs, &config) {
            Ok(report) => report,
            Err(e) => {
                outcomes.push(SupervisedTrialOutcome {
                    trial,
                    done: 0,
                    quarantined: 0,
                    shed: 0,
                    retries: 0,
                    violations: vec![format!("supervisor error: {e}")],
                });
                obs::counter_add("supervisor.chaos_failures", 1);
                continue;
            }
        };

        // Invariant 1: exactly one terminal state per job, none lost.
        if baseline.records.len() != jobs.len() {
            violations.push(format!(
                "{} records for {} jobs",
                baseline.records.len(),
                jobs.len()
            ));
        }
        if !baseline.all_terminal() {
            violations.push("undrained batch left non-terminal jobs".to_string());
        }
        let counted = baseline.done() + baseline.quarantined() + baseline.shed();
        if counted != jobs.len() {
            violations.push(format!(
                "terminal states count {counted}, expected {} (lost or double-counted)",
                jobs.len()
            ));
        }

        // Invariant 2: worker count is invisible in the records.
        let alt_workers = if config.workers == 1 { 4 } else { 1 };
        match run_batch(
            &jobs,
            &SupervisorConfig {
                workers: alt_workers,
                ..config.clone()
            },
        ) {
            Ok(alt) if alt.records != baseline.records => violations.push(format!(
                "records differ between {} and {alt_workers} workers",
                config.workers
            )),
            Ok(_) => {}
            Err(e) => violations.push(format!("rerun at {alt_workers} workers failed: {e}")),
        }

        // Invariant 3: drain + resume reproduces the uninterrupted batch.
        if opts.check_drain {
            if let Err(v) = check_drain_resume(trial, &jobs, &config, &baseline.records, opts) {
                violations.push(v);
            }
        }

        obs::event!(
            "supervisor.chaos_trial",
            trial = trial,
            done = baseline.done(),
            quarantined = baseline.quarantined(),
            shed = baseline.shed(),
            violations = violations.len()
        );
        if !violations.is_empty() {
            obs::counter_add("supervisor.chaos_failures", 1);
        }
        outcomes.push(SupervisedTrialOutcome {
            trial,
            done: baseline.done(),
            quarantined: baseline.quarantined(),
            shed: baseline.shed(),
            retries: baseline.records.iter().map(|r| r.retries).sum(),
            violations,
        });
    }

    let report = SupervisedChaosReport { outcomes };
    span.record("failures", report.failures());
    report
}

fn check_drain_resume(
    trial: usize,
    jobs: &[JobSpec],
    config: &SupervisorConfig,
    expected: &[crate::job::JobRecord],
    opts: &SupervisedChaosOptions,
) -> Result<(), String> {
    let scratch = opts
        .scratch_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("pcd-supervised-{}-{trial}", std::process::id()));
    let result = drain_resume_inner(jobs, config, expected, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn drain_resume_inner(
    jobs: &[JobSpec],
    config: &SupervisorConfig,
    expected: &[crate::job::JobRecord],
    scratch: &std::path::Path,
) -> Result<(), String> {
    let drained_config = SupervisorConfig {
        drain_after_ticks: Some(3),
        ckpt_dir: Some(scratch.to_path_buf()),
        ..config.clone()
    };
    let drained = run_batch(jobs, &drained_config).map_err(|e| format!("drained run: {e}"))?;
    let resumed = if drained.pending() > 0 {
        let ck = Checkpoint::read(scratch.join("batch.manifest"))
            .map_err(|e| format!("manifest read: {e}"))?;
        let (meta, prior) = decode_manifest(&ck).map_err(|e| format!("manifest decode: {e}"))?;
        if meta.batch_seed != config.batch_seed {
            return Err("manifest carries a different batch seed".to_string());
        }
        let resume_config = SupervisorConfig {
            ckpt_dir: Some(scratch.to_path_buf()),
            ..config.clone()
        };
        run_batch_resumed(jobs, &resume_config, Some(&prior))
            .map_err(|e| format!("resume: {e}"))?
            .records
    } else {
        drained.records
    };
    if resumed != expected {
        return Err("drained-then-resumed records differ from the uninterrupted batch".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_survives() {
        let opts = SupervisedChaosOptions {
            trials: 3,
            jobs: 4,
            fault_rate: 0.3,
            ..SupervisedChaosOptions::default()
        };
        let report = run_supervised_chaos(&opts);
        assert_eq!(report.outcomes.len(), 3);
        for outcome in &report.outcomes {
            assert!(
                outcome.violations.is_empty(),
                "trial {} violations: {:?}",
                outcome.trial,
                outcome.violations
            );
        }
        assert!(report.survived());
    }

    #[test]
    fn shed_trials_actually_shed() {
        let opts = SupervisedChaosOptions {
            trials: 3,
            jobs: 4,
            fault_rate: 0.0,
            check_drain: false,
            ..SupervisedChaosOptions::default()
        };
        let report = run_supervised_chaos(&opts);
        // Trial 2 undersizes the queue by one.
        assert_eq!(report.outcomes[2].shed, 1);
        assert!(report.survived());
    }
}
