//! Job specifications, seeds, and terminal records.
//!
//! A batch is a JSONL file of [`JobSpec`] lines. Each admitted job runs to
//! exactly one terminal [`JobState`] — `Done`, `Quarantined`, or `Shed` —
//! or to the non-terminal `Pending` when a drain interrupted it. Records
//! carry energies as raw IEEE-754 bits so `PartialEq` on a [`JobRecord`]
//! *is* the bit-identity check the drain/resume guarantee is stated in.

use std::collections::BTreeMap;

use chem::Benchmark;
use obs::json::{self, JsonValue};

use crate::splitmix64;

/// One batch job: a molecule × bond × compression configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen job id, unique within the batch (`"h2-0.74"`).
    pub id: String,
    /// Benchmark molecule.
    pub benchmark: Benchmark,
    /// Bond length in Angstrom (`None` = equilibrium).
    pub bond: Option<f64>,
    /// Ansatz compression ratio in `(0, 1]`.
    pub ratio: f64,
}

impl JobSpec {
    /// The bond length this job actually runs at.
    pub fn bond_length(&self) -> f64 {
        self.bond
            .unwrap_or_else(|| self.benchmark.equilibrium_bond_length())
    }

    /// Which priority lane this job rides in: small molecules are quick
    /// and go fast-lane so a burst of long VQE runs cannot head-of-line
    /// block them.
    pub fn lane(&self) -> crate::queue::Lane {
        crate::queue::Lane::for_qubits(self.benchmark.expected_qubits())
    }

    /// Serializes to one JSONL line (without trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        fields.insert("id".to_string(), JsonValue::String(self.id.clone()));
        fields.insert(
            "molecule".to_string(),
            JsonValue::String(self.benchmark.name().to_string()),
        );
        if let Some(bond) = self.bond {
            fields.insert("bond".to_string(), JsonValue::Number(bond));
        }
        fields.insert("ratio".to_string(), JsonValue::Number(self.ratio));
        JsonValue::Object(fields).to_string()
    }
}

/// Parses a JOBS.jsonl document: one [`JobSpec`] object per non-empty
/// line, fields `id` (optional, defaults to `job<index>`), `molecule`
/// (required), `bond` (optional), `ratio` (optional, default 0.5).
///
/// # Errors
///
/// A message naming the offending line on unparseable JSON, an unknown
/// molecule, an out-of-range ratio, or a duplicate id.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    let mut seen_ids = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let record = json::parse(line).map_err(|e| format!("jobs line {}: {e}", lineno + 1))?;
        let molecule = record
            .get("molecule")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("jobs line {}: missing `molecule`", lineno + 1))?;
        let benchmark = Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(molecule))
            .ok_or_else(|| format!("jobs line {}: unknown molecule `{molecule}`", lineno + 1))?;
        let bond = record.get("bond").and_then(JsonValue::as_f64);
        let ratio = record
            .get("ratio")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.5);
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(format!(
                "jobs line {}: ratio {ratio} outside (0, 1]",
                lineno + 1
            ));
        }
        let id = record
            .get("id")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("job{}", jobs.len()));
        if seen_ids.contains(&id) {
            return Err(format!("jobs line {}: duplicate id `{id}`", lineno + 1));
        }
        seen_ids.push(id.clone());
        jobs.push(JobSpec {
            id,
            benchmark,
            bond,
            ratio,
        });
    }
    if jobs.is_empty() {
        return Err("jobs file has no job lines".to_string());
    }
    Ok(jobs)
}

/// The seed for job `index` of a batch: a pure function of the batch seed
/// and the job's *arrival index* — never of worker assignment or timing —
/// so every injection and retry decision replays identically at any
/// worker count.
pub fn job_seed(batch_seed: u64, index: usize) -> u64 {
    splitmix64(batch_seed ^ splitmix64(index as u64))
}

/// The seed for retry `attempt` of a job (attempt 0 is the first try).
/// Each attempt draws fresh faults, which is what lets transients clear.
pub fn attempt_seed(job_seed: u64, attempt: usize) -> u64 {
    splitmix64(job_seed ^ splitmix64((attempt as u64).wrapping_add(0x5EED)))
}

/// Where a job ended up. `Done`, `Quarantined`, and `Shed` are terminal;
/// `Pending` only appears in a drained batch's manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// The pipeline completed (possibly after retries and recovery).
    Done {
        /// VQE energy as raw IEEE-754 bits (bit-exact comparison and
        /// manifest round-trips are the point of this record).
        energy_bits: u64,
        /// Optimizer outer iterations.
        iterations: usize,
        /// Objective evaluations.
        evaluations: usize,
        /// SCF ladder retries the chemistry stage spent.
        scf_retries: usize,
        /// Whether the compiler fell back to SABRE.
        sabre_fallback: bool,
    },
    /// The job exhausted its retry budget (or tripped a circuit breaker)
    /// and was isolated so it cannot wedge the queue.
    Quarantined {
        /// Attempts spent, including the first.
        attempts: usize,
        /// Stage of the final failure (`"scf"`, `"vqe"`, `"panic"`, ...).
        stage: String,
        /// The final failure, stringified.
        error: String,
    },
    /// Admission control dropped the job under the shed policy; it never
    /// ran.
    Shed,
    /// A drain interrupted the job; the manifest knows how to resume it.
    Pending {
        /// Retry attempt that was in flight (0-based).
        attempt: usize,
        /// Budget slices the in-flight attempt had already consumed —
        /// restored on resume so a resumed attempt sees the same timeout
        /// horizon as an uninterrupted one.
        slices_used: usize,
        /// Relative filename of the persisted VQE checkpoint, when the
        /// attempt got far enough to have one.
        checkpoint: Option<String>,
        /// Circuit-breaker consecutive-failure counts per stage
        /// (SCF / compile / VQE) at the drain point — restored on resume
        /// so the resumed retry ladder quarantines exactly where the
        /// uninterrupted one would have.
        breaker: [usize; 3],
    },
}

impl JobState {
    /// Whether this is a terminal state (everything but `Pending`).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Pending { .. })
    }

    /// Short label used in events, manifests, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Done { .. } => "done",
            JobState::Quarantined { .. } => "quarantined",
            JobState::Shed => "shed",
            JobState::Pending { .. } => "pending",
        }
    }
}

/// The full record of one job's journey through the supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Arrival index in the jobs file (the determinism key).
    pub index: usize,
    /// Job id from the spec.
    pub id: String,
    /// Terminal (or drained) state.
    pub state: JobState,
    /// Retries spent at the supervisor level (panics, transients,
    /// timeouts — not the SCF ladder's internal retries).
    pub retries: usize,
    /// Total deterministic backoff delay the retry ladder computed, in
    /// milliseconds (slept only when the policy's base is non-zero).
    pub backoff_ms: u64,
}

impl JobRecord {
    /// The VQE energy for a `Done` job.
    pub fn energy(&self) -> Option<f64> {
        match self.state {
            JobState::Done { energy_bits, .. } => Some(f64::from_bits(energy_bits)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips() {
        let text = "\
{\"id\":\"a\",\"molecule\":\"H2\",\"bond\":0.74,\"ratio\":1.0}\n\
# comment line\n\
\n\
{\"molecule\":\"LiH\"}\n";
        let jobs = parse_jobs(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "a");
        assert_eq!(jobs[0].benchmark, Benchmark::H2);
        assert_eq!(jobs[0].bond, Some(0.74));
        assert_eq!(jobs[1].id, "job1");
        assert_eq!(jobs[1].ratio, 0.5);
        assert_eq!(jobs[1].bond_length(), 1.60);
        // Serialized lines parse back to the same specs.
        let text2: String = jobs
            .iter()
            .map(|j| format!("{}\n", j.to_json_line()))
            .collect();
        assert_eq!(parse_jobs(&text2).unwrap(), jobs);
    }

    #[test]
    fn bad_specs_are_rejected_with_line_numbers() {
        assert!(parse_jobs("").is_err());
        assert!(parse_jobs("{\"molecule\":\"Xe\"}")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_jobs("not json").unwrap_err().contains("line 1"));
        assert!(parse_jobs("{\"molecule\":\"H2\",\"ratio\":0.0}")
            .unwrap_err()
            .contains("ratio"));
        let dup = "{\"id\":\"x\",\"molecule\":\"H2\"}\n{\"id\":\"x\",\"molecule\":\"H2\"}";
        assert!(parse_jobs(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn job_seeds_are_index_pure_and_decorrelated() {
        assert_eq!(job_seed(42, 3), job_seed(42, 3));
        assert_ne!(job_seed(42, 3), job_seed(42, 4));
        assert_ne!(job_seed(42, 3), job_seed(43, 3));
        assert_ne!(
            attempt_seed(job_seed(42, 3), 0),
            attempt_seed(job_seed(42, 3), 1)
        );
    }

    #[test]
    fn record_equality_is_bitwise_on_energy() {
        let mk = |bits: u64| JobRecord {
            index: 0,
            id: "a".to_string(),
            state: JobState::Done {
                energy_bits: bits,
                iterations: 5,
                evaluations: 20,
                scf_retries: 0,
                sabre_fallback: false,
            },
            retries: 0,
            backoff_ms: 0,
        };
        let e = -1.137f64;
        assert_eq!(mk(e.to_bits()), mk(e.to_bits()));
        assert_ne!(mk(e.to_bits()), mk((e + 1e-15).to_bits()));
        assert_eq!(mk(e.to_bits()).energy(), Some(e));
    }

    #[test]
    fn terminal_states_are_classified() {
        assert!(JobState::Shed.is_terminal());
        assert_eq!(JobState::Shed.label(), "shed");
        let pending = JobState::Pending {
            attempt: 1,
            slices_used: 2,
            checkpoint: None,
            breaker: [0, 0, 1],
        };
        assert!(!pending.is_terminal());
        assert_eq!(pending.label(), "pending");
    }
}
