//! Live batch progress tracking and emission.
//!
//! Workers update a shared [`ProgressTracker`] directly (no dependency on
//! obs tracing being enabled), and the engine's monitor thread
//! periodically calls [`ProgressTracker::emit`], which renders a
//! single-line stderr status (under `pcd batch --progress`) and emits
//! structured `supervisor.progress` events that land in the JSONL trace
//! under `--trace`.
//!
//! Per-stage latency statistics use [`obs::RollingHistogram`]s: each emit
//! rolls the live window, so the reported p50/p99 reflect recent attempts
//! (last [`WINDOWS`] ticks) while the all-time totals stay available to
//! `pcd report` via the trace events. Tracking never influences job
//! outcomes — the determinism contract only covers job records, and the
//! tracker only observes.

use std::collections::BTreeMap;
use std::sync::Mutex;

use obs::RollingHistogram;

/// Retired rolling windows kept per stage (one window per emit tick).
pub const WINDOWS: usize = 8;

#[derive(Debug)]
struct ProgressInner {
    queued: usize,
    running: usize,
    done: usize,
    quarantined: usize,
    shed: usize,
    pending: usize,
    retries: u64,
    breaker_trips: u64,
    stage_us: BTreeMap<&'static str, RollingHistogram>,
}

/// Shared, thread-safe batch progress state. See the [module docs](self).
#[derive(Debug)]
pub struct ProgressTracker {
    total: usize,
    inner: Mutex<ProgressInner>,
}

/// A point-in-time copy of the tracker, for rendering or assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Jobs in the batch.
    pub total: usize,
    /// Jobs not yet picked up by a worker.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs completed.
    pub done: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Jobs parked as pending by a drain.
    pub pending: usize,
    /// Attempt retries so far.
    pub retries: u64,
    /// Circuit-breaker trips so far.
    pub breaker_trips: u64,
    /// Per-stage `(name, count, p50_us, p99_us)` over the rolling window.
    pub stages: Vec<(String, u64, f64, f64)>,
}

impl ProgressSnapshot {
    /// Renders the one-line stderr status (no trailing newline; the
    /// engine prefixes `\r` so successive emissions overwrite in place).
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "[batch] {done}/{total} done  {running} running  {queued} queued  \
             {quarantined} quarantined  {shed} shed  {pending} pending  \
             retries {retries}  breaker {breaker}",
            done = self.done,
            total = self.total,
            running = self.running,
            queued = self.queued,
            quarantined = self.quarantined,
            shed = self.shed,
            pending = self.pending,
            retries = self.retries,
            breaker = self.breaker_trips,
        );
        if let Some((_, _, p50, p99)) = self.stages.iter().find(|(name, ..)| name == "attempt") {
            line.push_str(&format!(
                "  attempt p50 {:.0}ms p99 {:.0}ms",
                p50 / 1e3,
                p99 / 1e3
            ));
        }
        line
    }
}

impl ProgressTracker {
    /// A tracker for a batch of `total` jobs, all initially queued.
    pub fn new(total: usize) -> Self {
        ProgressTracker {
            total,
            inner: Mutex::new(ProgressInner {
                queued: total,
                running: 0,
                done: 0,
                quarantined: 0,
                shed: 0,
                pending: 0,
                retries: 0,
                breaker_trips: 0,
                stage_us: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProgressInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn bump(inner: &mut ProgressInner, label: &str) {
        match label {
            "done" => inner.done += 1,
            "quarantined" => inner.quarantined += 1,
            "shed" => inner.shed += 1,
            _ => inner.pending += 1,
        }
    }

    /// Records a job that reached `label` without ever running (shed at
    /// admission, terminal in a resume manifest, or drained pre-start).
    pub fn job_skipped(&self, label: &str) {
        let mut inner = self.lock();
        inner.queued = inner.queued.saturating_sub(1);
        Self::bump(&mut inner, label);
    }

    /// Marks one queued job as running.
    pub fn job_started(&self) {
        let mut inner = self.lock();
        inner.queued = inner.queued.saturating_sub(1);
        inner.running += 1;
    }

    /// Marks one running job as finished in state `label`, recording its
    /// wall time into the `job` stage histogram.
    pub fn job_finished(&self, label: &str, job_us: f64) {
        let mut inner = self.lock();
        inner.running = inner.running.saturating_sub(1);
        Self::bump(&mut inner, label);
        inner
            .stage_us
            .entry("job")
            .or_insert_with(|| RollingHistogram::new(WINDOWS))
            .record(job_us);
    }

    /// Counts one attempt retry.
    pub fn retry(&self) {
        self.lock().retries += 1;
    }

    /// Counts one circuit-breaker trip.
    pub fn breaker_trip(&self) {
        self.lock().breaker_trips += 1;
    }

    /// Records a stage duration (µs) into that stage's rolling histogram.
    /// Stage names are static (`"chem"`, `"vqe"`, `"compile"`,
    /// `"attempt"`, `"job"`).
    pub fn stage_us(&self, stage: &'static str, us: f64) {
        self.lock()
            .stage_us
            .entry(stage)
            .or_insert_with(|| RollingHistogram::new(WINDOWS))
            .record(us);
    }

    /// A consistent copy of the current state.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let inner = self.lock();
        let stages = inner
            .stage_us
            .iter()
            .filter_map(|(name, roll)| {
                let h = roll.windowed();
                let st = h.stats()?;
                Some((name.to_string(), st.count, st.p50, st.p99))
            })
            .collect();
        ProgressSnapshot {
            total: self.total,
            queued: inner.queued,
            running: inner.running,
            done: inner.done,
            quarantined: inner.quarantined,
            shed: inner.shed,
            pending: inner.pending,
            retries: inner.retries,
            breaker_trips: inner.breaker_trips,
            stages,
        }
    }

    /// Emits one progress tick: a `supervisor.progress` event (plus one
    /// `supervisor.progress.stage` event per active stage) into the obs
    /// registry when tracing is enabled, an in-place stderr status line
    /// when `stderr` is set, and a window roll on every stage histogram.
    pub fn emit(&self, stderr: bool) -> ProgressSnapshot {
        let snap = self.snapshot();
        obs::event!(
            "supervisor.progress",
            total = snap.total,
            queued = snap.queued,
            running = snap.running,
            done = snap.done,
            quarantined = snap.quarantined,
            shed = snap.shed,
            pending = snap.pending,
            retries = snap.retries,
            breaker_trips = snap.breaker_trips
        );
        for (name, count, p50, p99) in &snap.stages {
            obs::event!(
                "supervisor.progress.stage",
                stage = name.as_str(),
                count = *count,
                p50_us = *p50,
                p99_us = *p99
            );
        }
        if stderr {
            eprint!("\r{}", snap.render_line());
        }
        let mut inner = self.lock();
        for roll in inner.stage_us.values_mut() {
            roll.roll();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts_stay_consistent() {
        let t = ProgressTracker::new(4);
        t.job_skipped("shed");
        t.job_started();
        t.job_started();
        t.job_finished("done", 1500.0);
        t.retry();
        t.job_finished("quarantined", 9000.0);
        t.breaker_trip();
        let s = t.snapshot();
        assert_eq!(
            (s.total, s.queued, s.running, s.done, s.quarantined, s.shed),
            (4, 1, 0, 1, 1, 1)
        );
        assert_eq!(s.retries, 1);
        assert_eq!(s.breaker_trips, 1);
        let job = s.stages.iter().find(|(n, ..)| n == "job").unwrap();
        assert_eq!(job.1, 2);
    }

    #[test]
    fn emit_rolls_windows_and_renders() {
        let t = ProgressTracker::new(1);
        t.job_started();
        t.stage_us("attempt", 2000.0);
        let snap = t.emit(false);
        assert!(snap.render_line().contains("attempt p50"));
        // WINDOWS emits later, the old window has been evicted.
        for _ in 0..WINDOWS + 1 {
            t.emit(false);
        }
        let snap = t.snapshot();
        assert!(
            snap.stages.iter().all(|(n, ..)| n != "attempt"),
            "windowed attempt stats survived eviction: {:?}",
            snap.stages
        );
    }
}
