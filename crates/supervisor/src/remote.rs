//! True multi-machine sharding: a coordinator/worker protocol over TCP.
//!
//! The shard layer ([`crate::shard`]) assumes every process shares one
//! checkpoint directory — liveness is a lease file, takeover is a claim
//! token. This module removes that assumption: only the **coordinator**
//! touches the checkpoint directory; workers hold nothing but a socket.
//!
//! - The coordinator owns the jobs file, the batch identity, and every
//!   lease. Workers [`net::message::Message::Claim`] shards and are
//!   granted them under **monotonic epochs**; a worker that stops
//!   heartbeating for the lease interval is presumed dead and its shard
//!   is re-granted at `epoch + 1` to the next claimant (the wire twin of
//!   [`crate::lease::try_claim`]'s epoch tokens). Pid and mtime
//!   liveness fallbacks are never consulted — they are meaningless
//!   across machines.
//! - Delivery is **at-least-once with content-keyed dedup**: workers
//!   resend every record of the active shard after a reconnect, and the
//!   coordinator collapses bit-identical duplicates (counting them) while
//!   rejecting divergent ones — the determinism contract (a record is a
//!   pure function of `(batch_seed, index, spec)`) is what makes blind
//!   resend safe.
//! - Worker reconnects reuse the supervisor's seeded
//!   [`BackoffPolicy`](crate::backoff::BackoffPolicy): the retry
//!   schedule is a pure function of `(worker id, attempt)` and replays
//!   bit-for-bit.
//! - Degradation is graceful on both ends: a worker that exhausts its
//!   transport budget mid-shard seals what it has as a local
//!   `shard-<id>.manifest.partial` (same CRC-sealed codec, a name the
//!   merge scan ignores) and exits resumable; a coordinator that loses
//!   every worker rescues unfinished shards in-process, exactly like the
//!   re-run takeover flow a human operator would perform.
//!
//! After the last job lands the coordinator seals one ordinary
//! `shard-<id>.manifest` per shard and reuses [`crate::merge`] verbatim,
//! so a multi-machine batch's `batch.manifest` is bit-identical to a
//! single-machine run's.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use net::{read_frame, write_frame, Message, PROTOCOL_VERSION};

use crate::backoff::BackoffPolicy;
use crate::engine::{run_scoped, InjectionPlan, SupervisorConfig, SupervisorError};
use crate::job::{parse_jobs, JobRecord, JobSpec};
use crate::manifest::{decode_record_sparse, encode_record, BatchMeta};
use crate::merge::merge_shards;
use crate::shard::{encode_shard_manifest, shard_indices, ShardMeta, ShardSpec};
use crate::splitmix64;

/// A remote-batch failure, split by exit taxonomy: transport exhaustion
/// is resumable (exit 36), a protocol mismatch is operator error
/// (exit 37), everything else is the usual supervisor failure.
#[derive(Debug)]
pub enum RemoteError {
    /// The transport died and the retry budget ran out. Partial progress
    /// (when any) was sealed locally; re-running the worker resumes.
    TransportLost(String),
    /// The peer speaks a different protocol (version skew, wrong batch,
    /// or a reply that makes no sense at this point in the exchange).
    Protocol(String),
    /// A local supervisor failure while running granted jobs.
    Supervisor(SupervisorError),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::TransportLost(msg) => write!(f, "transport lost: {msg}"),
            RemoteError::Protocol(msg) => write!(f, "protocol mismatch: {msg}"),
            RemoteError::Supervisor(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<SupervisorError> for RemoteError {
    fn from(e: SupervisorError) -> Self {
        RemoteError::Supervisor(e)
    }
}

/// FNV-1a of a worker id — the stable seed root of its reconnect ladder.
fn worker_seed(worker_id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in worker_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

/// The deterministic reconnect schedule for a worker: delay before
/// reconnect attempt `1..=attempts`. Pure function of the inputs — the
/// replay guarantee `pcd chaos --net` asserts.
pub fn reconnect_schedule(worker_id: &str, policy: &BackoffPolicy, attempts: usize) -> Vec<u64> {
    let seed = worker_seed(worker_id);
    (1..=attempts).map(|a| policy.delay_ms(seed, a)).collect()
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Coordinator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorOptions {
    /// Address to listen on (port 0 = ephemeral, for tests).
    pub listen: SocketAddr,
    /// Number of net shards the batch is split into.
    pub shards: usize,
    /// A shard whose worker is silent this long is presumed dead and
    /// re-granted at the next epoch.
    pub lease_ms: u64,
    /// Heartbeat cadence workers are told to keep.
    pub heartbeat_ms: u64,
    /// Overall wall-clock bound on the run.
    pub deadline: Duration,
    /// When the whole fleet goes silent (or the deadline hits), finish
    /// unfinished shards in-process instead of failing.
    pub rescue: bool,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            shards: 2,
            lease_ms: 500,
            heartbeat_ms: 100,
            deadline: Duration::from_secs(120),
            rescue: true,
        }
    }
}

/// One wire-level takeover: a shard re-granted past a dead worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteTakeover {
    /// The shard re-granted.
    pub shard_id: usize,
    /// Owner that went silent.
    pub from: String,
    /// Epoch the new grant runs under.
    pub epoch: u64,
}

/// What a coordinator run accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorReport {
    /// The full merged record set, ascending indices.
    pub records: Vec<JobRecord>,
    /// The sealed `batch.manifest` bytes — bit-identical to a
    /// single-machine run of the same batch.
    pub sealed: Vec<u8>,
    /// Epoch takeovers performed over the wire.
    pub takeovers: Vec<RemoteTakeover>,
    /// Shards the coordinator finished in-process after losing the fleet.
    pub rescued: Vec<usize>,
    /// Bit-identical duplicate records collapsed (reconnect resends).
    pub deduped: usize,
}

/// Per-shard book-keeping on the coordinator.
struct ShardSlot {
    granted: bool,
    epoch: u64,
    owner: Option<String>,
    taken_over_from: Option<String>,
    last_seen: Instant,
    done: bool,
    /// Global index → (wire record JSON, decoded record).
    records: BTreeMap<usize, (String, JobRecord)>,
}

struct CoordState {
    slots: Vec<ShardSlot>,
    takeovers: Vec<RemoteTakeover>,
    deduped: usize,
    last_activity: Instant,
    draining: bool,
}

impl CoordState {
    fn all_done(&self) -> bool {
        self.slots.iter().all(|s| s.done)
    }
}

/// Shared context every connection handler needs.
struct CoordCtx {
    state: Mutex<CoordState>,
    jobs_jsonl: String,
    n_jobs: usize,
    batch_seed: u64,
    fault_rate: f64,
    shards: usize,
    lease_ms: u64,
    heartbeat_ms: u64,
    active_conns: AtomicUsize,
    stop: AtomicBool,
}

/// A read-only view on a running coordinator's state, for harnesses that
/// need to time a kill against a grant.
#[derive(Clone)]
pub struct CoordinatorWatch {
    ctx: Arc<CoordCtx>,
}

impl CoordinatorWatch {
    /// The current owner of `shard_id`, if granted.
    pub fn owner_of(&self, shard_id: usize) -> Option<String> {
        let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
        state.slots.get(shard_id).and_then(|s| s.owner.clone())
    }

    /// Whether any shard is currently granted to `worker`.
    pub fn granted_to(&self, worker: &str) -> bool {
        let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
        state
            .slots
            .iter()
            .any(|s| s.granted && !s.done && s.owner.as_deref() == Some(worker))
    }
}

/// A bound-but-not-yet-running coordinator. Binding is split from
/// running so callers learn the (possibly ephemeral) address before the
/// blocking serve loop starts.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    jobs: Vec<JobSpec>,
    config: SupervisorConfig,
    dir: PathBuf,
    opts: CoordinatorOptions,
    ctx: Arc<CoordCtx>,
}

impl Coordinator {
    /// Binds the listen address and prepares the shard table.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Supervisor`] on a bad spec (no jobs, no checkpoint
    /// directory, zero shards) or a bind failure.
    pub fn bind(
        jobs: &[JobSpec],
        config: &SupervisorConfig,
        opts: CoordinatorOptions,
    ) -> Result<Coordinator, RemoteError> {
        if jobs.is_empty() {
            return Err(SupervisorError::Spec("batch has no jobs".to_string()).into());
        }
        if opts.shards == 0 {
            return Err(SupervisorError::Spec("--shards must be at least 1".to_string()).into());
        }
        let Some(dir) = config.ckpt_dir.clone() else {
            return Err(SupervisorError::Spec(
                "a coordinator needs --checkpoint (shard manifests seal there)".to_string(),
            )
            .into());
        };
        std::fs::create_dir_all(&dir).map_err(|e| {
            RemoteError::Supervisor(SupervisorError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })
        })?;
        let listener = TcpListener::bind(opts.listen)
            .map_err(|e| RemoteError::TransportLost(format!("bind {}: {e}", opts.listen)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RemoteError::TransportLost(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RemoteError::TransportLost(e.to_string()))?;
        let now = Instant::now();
        let slots = (0..opts.shards)
            .map(|_| ShardSlot {
                granted: false,
                epoch: 0,
                owner: None,
                taken_over_from: None,
                last_seen: now,
                done: false,
                records: BTreeMap::new(),
            })
            .collect();
        let jobs_jsonl: String = jobs.iter().map(|j| j.to_json_line() + "\n").collect();
        let ctx = Arc::new(CoordCtx {
            state: Mutex::new(CoordState {
                slots,
                takeovers: Vec::new(),
                deduped: 0,
                last_activity: now,
                draining: false,
            }),
            jobs_jsonl,
            n_jobs: jobs.len(),
            batch_seed: config.batch_seed,
            fault_rate: config.pipeline_fault_rate,
            shards: opts.shards,
            lease_ms: opts.lease_ms,
            heartbeat_ms: opts.heartbeat_ms,
            active_conns: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        Ok(Coordinator {
            listener,
            addr,
            jobs: jobs.to_vec(),
            config: config.clone(),
            dir,
            opts,
            ctx,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live view on grant state, usable while [`run`](Self::run)
    /// blocks on another thread.
    pub fn watch(&self) -> CoordinatorWatch {
        CoordinatorWatch {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves the batch to completion: accepts workers, grants shards,
    /// expires silent leases into epoch takeovers, collects records,
    /// seals per-shard manifests, and merges them into `batch.manifest`.
    ///
    /// # Errors
    ///
    /// [`RemoteError::TransportLost`] when the deadline passes with
    /// rescue disabled, otherwise supervisor/merge failures.
    pub fn run(self) -> Result<CoordinatorReport, RemoteError> {
        let mut span = obs::span("net.coordinator");
        span.record("shards", self.opts.shards);
        span.record("jobs", self.jobs.len());
        let accept = std::thread::spawn({
            let ctx = Arc::clone(&self.ctx);
            let listener = self
                .listener
                .try_clone()
                .map_err(|e| RemoteError::TransportLost(e.to_string()))?;
            move || accept_loop(&listener, &ctx)
        });

        let deadline = Instant::now() + self.opts.deadline;
        let lease = Duration::from_millis(self.opts.lease_ms.max(1));
        let mut rescued = Vec::new();
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let (done, idle) = {
                let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
                (state.all_done(), state.last_activity.elapsed())
            };
            if done {
                break;
            }
            let fleet_lost = idle > lease.saturating_mul(4).max(Duration::from_millis(500));
            let out_of_time = Instant::now() >= deadline;
            if out_of_time && !self.opts.rescue {
                self.ctx.stop.store(true, Ordering::SeqCst);
                let _ = accept.join();
                return Err(RemoteError::TransportLost(format!(
                    "deadline passed with unfinished shards and rescue disabled \
                     (idle {idle:?})"
                )));
            }
            if self.opts.rescue && (fleet_lost || out_of_time) {
                rescued = self.rescue()?;
                break;
            }
        }

        let report = self.seal(rescued);
        // Linger until connected workers have drained (they exit on the
        // Drain reply to their next claim), bounded so a wedged peer
        // cannot hold the coordinator open.
        {
            let mut state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            state.draining = true;
        }
        let grace = Instant::now() + Duration::from_secs(3);
        while self.ctx.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.ctx.stop.store(true, Ordering::SeqCst);
        let _ = accept.join();
        let report = report?;
        span.record("takeovers", report.takeovers.len());
        span.record("deduped", report.deduped);
        Ok(report)
    }

    /// Finishes every unfinished shard in-process — the fleet is gone.
    fn rescue(&self) -> Result<Vec<usize>, RemoteError> {
        let unfinished: Vec<usize> = {
            let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            (0..self.opts.shards)
                .filter(|&s| !state.slots[s].done)
                .collect()
        };
        let mut rescued = Vec::new();
        for shard_id in unfinished {
            let (prior, from) = {
                let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
                let slot = &state.slots[shard_id];
                (
                    slot.records
                        .values()
                        .map(|(_, r)| r.clone())
                        .collect::<Vec<_>>(),
                    slot.owner.clone(),
                )
            };
            let owned = shard_indices(
                self.jobs.len(),
                &ShardSpec {
                    shards: self.opts.shards,
                    shard_id,
                },
            );
            let records = run_scoped(
                &self.jobs,
                &self.config,
                if prior.is_empty() { None } else { Some(&prior) },
                Some(&owned),
            )?;
            obs::counter_add("net.coord.rescues", 1);
            obs::event!(
                "net.rescue",
                shard = shard_id,
                from = from.clone().unwrap_or_default()
            );
            let mut state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            let slot = &mut state.slots[shard_id];
            slot.epoch += if slot.granted { 1 } else { 0 };
            if let Some(dead) = slot.owner.replace("net:coordinator".to_string()) {
                slot.taken_over_from = Some(dead);
            }
            slot.records = records
                .iter()
                .map(|r| (r.index, (encode_record(r).to_string(), r.clone())))
                .collect();
            slot.done = true;
            rescued.push(shard_id);
        }
        Ok(rescued)
    }

    /// Seals one manifest per shard and merges — the exact same path a
    /// directory-sharing batch takes, so the sealed bytes are identical.
    fn seal(&self, rescued: Vec<usize>) -> Result<CoordinatorReport, RemoteError> {
        let meta = BatchMeta {
            batch_seed: self.config.batch_seed,
            jobs: self.jobs.len(),
            pipeline_fault_rate: self.config.pipeline_fault_rate,
        };
        let (takeovers, deduped) = {
            let state = self.ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            for (shard_id, slot) in state.slots.iter().enumerate() {
                let records: Vec<JobRecord> =
                    slot.records.values().map(|(_, r)| r.clone()).collect();
                let shard_meta = ShardMeta {
                    batch: meta,
                    shards: self.opts.shards,
                    shard_id,
                    owner: slot
                        .owner
                        .clone()
                        .unwrap_or_else(|| "net:coordinator".to_string()),
                    epoch: slot.epoch,
                    taken_over_from: slot.taken_over_from.clone(),
                };
                encode_shard_manifest(&shard_meta, &records)
                    .write(crate::shard::shard_manifest_path(&self.dir, shard_id))
                    .map_err(SupervisorError::from)?;
            }
            (state.takeovers.clone(), state.deduped)
        };
        let merged = merge_shards(&self.dir, &self.jobs)
            .map_err(|e| RemoteError::Supervisor(SupervisorError::Spec(format!("merge: {e}"))))?;
        Ok(CoordinatorReport {
            records: merged.records,
            sealed: merged.sealed,
            takeovers,
            rescued,
            deduped,
        })
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<CoordCtx>) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.active_conns.fetch_add(1, Ordering::SeqCst);
                let ctx = Arc::clone(ctx);
                std::thread::spawn(move || {
                    handle_conn(stream, &ctx);
                    ctx.active_conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One connection: strict one-request/one-response framing. Any read or
/// write failure closes the connection — the worker reconnects and the
/// at-least-once layer absorbs the gap.
fn handle_conn(mut stream: TcpStream, ctx: &Arc<CoordCtx>) {
    // Bounded reads so a severed peer cannot pin this handler forever;
    // generous enough that a worker quietly computing between results
    // (heartbeats travel on their own connection) is never cut off.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    while let Ok(payload) = read_frame(&mut stream) {
        let reply = match Message::decode(&payload) {
            Ok(msg) => respond(msg, ctx),
            Err(e) => Message::Reject {
                reason: format!("undecodable message: {e}"),
            },
        };
        {
            let mut state = ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            state.last_activity = Instant::now();
        }
        if write_frame(&mut stream, &reply.encode()).is_err() {
            break;
        }
    }
}

fn respond(msg: Message, ctx: &Arc<CoordCtx>) -> Message {
    match msg {
        Message::Hello { worker, version } => {
            if version != PROTOCOL_VERSION {
                obs::counter_add("net.coord.version_rejected", 1);
                return Message::Reject {
                    reason: format!(
                        "protocol version {version} unsupported (coordinator speaks \
                         {PROTOCOL_VERSION})"
                    ),
                };
            }
            obs::event!("net.hello", worker = worker);
            Message::Welcome {
                batch_seed: ctx.batch_seed,
                fault_rate_bits: ctx.fault_rate.to_bits(),
                shards: ctx.shards,
                jobs_jsonl: ctx.jobs_jsonl.clone(),
                lease_ms: ctx.lease_ms,
                heartbeat_ms: ctx.heartbeat_ms,
            }
        }
        Message::Claim { worker } => {
            let mut state = ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.draining || state.all_done() {
                return Message::Drain;
            }
            let lease = Duration::from_millis(ctx.lease_ms.max(1));
            for shard_id in 0..ctx.shards {
                let slot = &mut state.slots[shard_id];
                if slot.done {
                    continue;
                }
                if !slot.granted {
                    slot.granted = true;
                    slot.owner = Some(worker.clone());
                    slot.last_seen = Instant::now();
                    obs::counter_add("net.coord.grants", 1);
                    return Message::Grant {
                        shard_id,
                        epoch: slot.epoch,
                        taken_over_from: slot.taken_over_from.clone(),
                    };
                }
                if slot.last_seen.elapsed() > lease {
                    // Epoch takeover: the incumbent is presumed dead.
                    let from = slot.owner.clone().unwrap_or_default();
                    slot.epoch += 1;
                    slot.taken_over_from = Some(from.clone());
                    slot.owner = Some(worker.clone());
                    slot.last_seen = Instant::now();
                    let epoch = slot.epoch;
                    state.takeovers.push(RemoteTakeover {
                        shard_id,
                        from: from.clone(),
                        epoch,
                    });
                    obs::counter_add("net.coord.takeovers", 1);
                    obs::event!("net.takeover", shard = shard_id, from = from, epoch = epoch);
                    return Message::Grant {
                        shard_id,
                        epoch,
                        taken_over_from: state.slots[shard_id].taken_over_from.clone(),
                    };
                }
            }
            Message::Wait {
                backoff_ms: ctx.heartbeat_ms.max(1),
            }
        }
        Message::JobResult {
            shard_id,
            epoch,
            index,
            record_json,
        } => {
            let mut state = ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            let Some(slot) = state.slots.get_mut(shard_id) else {
                return Message::Reject {
                    reason: format!("shard {shard_id} out of range"),
                };
            };
            if epoch < slot.epoch {
                obs::counter_add("net.coord.stale_epoch_rejected", 1);
                return Message::Reject {
                    reason: format!(
                        "stale epoch {epoch} for shard {shard_id} (current {})",
                        slot.epoch
                    ),
                };
            }
            if index >= ctx.n_jobs || crate::shard::job_shard(index, ctx.shards) != shard_id {
                return Message::Reject {
                    reason: format!("index {index} does not belong to shard {shard_id}"),
                };
            }
            let record = match obs::json::parse(&record_json)
                .map_err(|e| e.to_string())
                .and_then(|v| decode_record_sparse(&v).map_err(|e| e.to_string()))
            {
                Ok(r) if r.index == index => r,
                Ok(r) => {
                    return Message::Reject {
                        reason: format!("record index {} disagrees with envelope {index}", r.index),
                    }
                }
                Err(e) => {
                    return Message::Reject {
                        reason: format!("undecodable record: {e}"),
                    }
                }
            };
            slot.last_seen = Instant::now();
            if let Some((existing, _)) = slot.records.get(&index) {
                if *existing == record_json {
                    state.deduped += 1;
                    obs::counter_add("net.coord.results_deduped", 1);
                    return Message::Ack { epoch };
                }
                obs::counter_add("net.coord.result_conflicts", 1);
                return Message::Reject {
                    reason: format!(
                        "divergent duplicate for job {index}: determinism contract violated"
                    ),
                };
            }
            slot.records.insert(index, (record_json, record));
            obs::counter_add("net.coord.results_received", 1);
            let owned = shard_indices(
                ctx.n_jobs,
                &ShardSpec {
                    shards: ctx.shards,
                    shard_id,
                },
            )
            .len();
            if slot.records.len() >= owned {
                slot.done = true;
                obs::event!("net.shard_complete", shard = shard_id);
            }
            Message::Ack { epoch }
        }
        Message::Heartbeat {
            shard_id, epoch, ..
        }
        | Message::LeaseRenew { shard_id, epoch } => {
            let mut state = ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            let Some(slot) = state.slots.get_mut(shard_id) else {
                return Message::Reject {
                    reason: format!("shard {shard_id} out of range"),
                };
            };
            if epoch < slot.epoch {
                obs::counter_add("net.coord.stale_epoch_rejected", 1);
                return Message::Reject {
                    reason: format!("stale epoch {epoch} for shard {shard_id}"),
                };
            }
            slot.last_seen = Instant::now();
            obs::counter_add("net.coord.heartbeats", 1);
            Message::Ack { epoch }
        }
        other => Message::Reject {
            reason: format!("unexpected {} from a worker", other.tag()),
        },
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Worker knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerOptions {
    /// Coordinator (or proxy) address.
    pub connect: SocketAddr,
    /// Stable worker identity — the seed root of the reconnect ladder
    /// and the owner string in grant lineage.
    pub worker_id: String,
    /// Local worker threads for granted shards.
    pub threads: usize,
    /// Reconnect spacing (the supervisor's seeded ladder).
    pub backoff: BackoffPolicy,
    /// Reconnect attempts per outage before giving up.
    pub max_reconnects: usize,
    /// Where to seal a partial shard manifest when the transport dies
    /// for good mid-shard. `None` = the progress is simply lost (the
    /// coordinator re-grants; determinism makes the re-run identical).
    pub local_dir: Option<PathBuf>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: SocketAddr::from(([127, 0, 0, 1], 0)),
            worker_id: "worker".to_string(),
            threads: 2,
            backoff: BackoffPolicy {
                base_ms: 10,
                factor: 2.0,
                cap_ms: 500,
                jitter: 0.5,
            },
            max_reconnects: 8,
            local_dir: None,
        }
    }
}

/// What one worker run accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// The worker's identity.
    pub worker_id: String,
    /// Shards granted and fully delivered, in grant order.
    pub shards_run: Vec<usize>,
    /// Records delivered (acks received), including resends.
    pub records_sent: usize,
    /// Reconnects performed across the run.
    pub reconnects: usize,
    /// Delay (ms) before each reconnect, in order — bit-for-bit
    /// reproducible for a given worker id and backoff policy.
    pub reconnect_delays_ms: Vec<u64>,
    /// Partial manifest sealed on transport exhaustion, when one was.
    pub partial_sealed: Option<PathBuf>,
}

/// The batch identity a worker learns from `welcome`.
struct WelcomeInfo {
    jobs: Vec<JobSpec>,
    config: SupervisorConfig,
    shards: usize,
    heartbeat_ms: u64,
}

/// One request/response exchange. Any failure is a transport error —
/// the caller reconnects.
fn call(stream: &mut TcpStream, msg: &Message) -> Result<Message, String> {
    write_frame(stream, &msg.encode()).map_err(|e| e.to_string())?;
    let payload = read_frame(stream).map_err(|e| e.to_string())?;
    Message::decode(&payload).map_err(|e| e.to_string())
}

/// Connects (with the seeded ladder) and completes the hello/welcome
/// handshake. `attempt` persists across outages so the ladder keeps
/// climbing instead of restarting.
fn connect_and_hello(
    opts: &WorkerOptions,
    report: &mut WorkerReport,
    attempt: &mut usize,
) -> Result<(TcpStream, Message), RemoteError> {
    let seed = worker_seed(&opts.worker_id);
    loop {
        if let Ok(mut stream) = TcpStream::connect_timeout(&opts.connect, Duration::from_secs(2)) {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(20)));
            let hello = Message::Hello {
                worker: opts.worker_id.clone(),
                version: PROTOCOL_VERSION,
            };
            match call(&mut stream, &hello) {
                Ok(welcome @ Message::Welcome { .. }) => return Ok((stream, welcome)),
                Ok(Message::Reject { reason }) => {
                    // A reject of *hello* is version/identity skew —
                    // retrying cannot help.
                    return Err(RemoteError::Protocol(reason));
                }
                Ok(other) => {
                    return Err(RemoteError::Protocol(format!(
                        "expected welcome, got {}",
                        other.tag()
                    )))
                }
                Err(_) => {} // fall through to the retry ladder
            }
        }
        *attempt += 1;
        if *attempt > opts.max_reconnects {
            return Err(RemoteError::TransportLost(format!(
                "coordinator {} unreachable after {} attempts",
                opts.connect, opts.max_reconnects
            )));
        }
        let delay = opts.backoff.delay_ms(seed, *attempt);
        report.reconnects += 1;
        report.reconnect_delays_ms.push(delay);
        obs::counter_add("net.worker.reconnects", 1);
        std::thread::sleep(Duration::from_millis(delay));
    }
}

fn parse_welcome(welcome: Message, opts: &WorkerOptions) -> Result<WelcomeInfo, RemoteError> {
    let Message::Welcome {
        batch_seed,
        fault_rate_bits,
        shards,
        jobs_jsonl,
        heartbeat_ms,
        ..
    } = welcome
    else {
        return Err(RemoteError::Protocol("welcome expected".to_string()));
    };
    let jobs = parse_jobs(&jobs_jsonl)
        .map_err(|e| RemoteError::Protocol(format!("jobs in welcome: {e}")))?;
    let fault_rate = f64::from_bits(fault_rate_bits);
    let config = SupervisorConfig {
        workers: opts.threads.max(1),
        batch_seed,
        pipeline_fault_rate: fault_rate,
        injection: if fault_rate > 0.0 {
            InjectionPlan::chaos(fault_rate)
        } else {
            InjectionPlan::none()
        },
        ..SupervisorConfig::default()
    };
    Ok(WelcomeInfo {
        jobs,
        config,
        shards,
        heartbeat_ms,
    })
}

/// The path a worker seals partial progress to: the ordinary shard
/// manifest name plus `.partial`, which the merge scan deliberately
/// ignores — partial seals are for `pcd report` forensics and manual
/// resume, never for silent inclusion in a merge.
pub fn partial_manifest_path(dir: &Path, shard_id: usize) -> PathBuf {
    dir.join(format!("shard-{shard_id}.manifest.partial"))
}

/// Heartbeat loop on its own connection, so a long-computing worker
/// never starves its lease. Sets `stale` when the coordinator rejects
/// the epoch (the shard was taken over — stop working on it).
fn heartbeat_loop(
    addr: SocketAddr,
    shard_id: usize,
    epoch: u64,
    interval: Duration,
    stop: &AtomicBool,
    stale: &AtomicBool,
) {
    let mut stream: Option<TcpStream> = None;
    let mut beats = 0u64;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        beats += 1;
        if stream.is_none() {
            stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                .ok()
                .inspect(|s| {
                    let _ = s.set_read_timeout(Some(interval.saturating_mul(4)));
                });
        }
        let Some(s) = stream.as_mut() else { continue };
        match call(
            s,
            &Message::Heartbeat {
                shard_id,
                epoch,
                beats,
            },
        ) {
            Ok(Message::Ack { .. }) => obs::counter_add("net.worker.heartbeats", 1),
            Ok(Message::Reject { .. }) => {
                stale.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) | Err(_) => stream = None, // reconnect next tick
        }
    }
}

/// Runs a worker against a coordinator: hello, claim, run granted
/// shards locally, stream records back (at-least-once), repeat until
/// drained.
///
/// # Errors
///
/// [`RemoteError::TransportLost`] when the reconnect budget runs out
/// (partial progress sealed to `local_dir` when set),
/// [`RemoteError::Protocol`] on version/handshake skew, or a local
/// [`RemoteError::Supervisor`] failure.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerReport, RemoteError> {
    let mut span = obs::span("net.worker");
    span.record("worker", opts.worker_id.clone());
    let mut report = WorkerReport {
        worker_id: opts.worker_id.clone(),
        shards_run: Vec::new(),
        records_sent: 0,
        reconnects: 0,
        reconnect_delays_ms: Vec::new(),
        partial_sealed: None,
    };
    let mut attempt = 0usize;
    let (mut stream, welcome) = connect_and_hello(opts, &mut report, &mut attempt)?;
    let info = parse_welcome(welcome, opts)?;

    loop {
        let claim = Message::Claim {
            worker: opts.worker_id.clone(),
        };
        let reply = match call(&mut stream, &claim) {
            Ok(r) => r,
            Err(_) => {
                let (s, w) = connect_and_hello(opts, &mut report, &mut attempt)?;
                parse_welcome(w, opts)?; // re-validate identity
                stream = s;
                continue;
            }
        };
        match reply {
            Message::Drain => break,
            Message::Wait { backoff_ms } => {
                std::thread::sleep(Duration::from_millis(backoff_ms.clamp(1, 1000)));
            }
            Message::Grant {
                shard_id,
                epoch,
                taken_over_from,
            } => {
                if let Some(from) = &taken_over_from {
                    obs::event!(
                        "net.worker.takeover_grant",
                        shard = shard_id,
                        from = from.clone(),
                        epoch = epoch
                    );
                }
                match run_granted_shard(
                    opts,
                    &info,
                    &mut stream,
                    &mut report,
                    &mut attempt,
                    shard_id,
                    epoch,
                ) {
                    Ok(ShardDelivery::Delivered) => report.shards_run.push(shard_id),
                    Ok(ShardDelivery::Superseded) => {
                        // Our lease expired mid-run; the shard belongs to
                        // someone else now. Claim fresh work.
                        obs::counter_add("net.worker.superseded", 1);
                    }
                    Err(e) => return Err(e),
                }
            }
            Message::Reject { reason } => return Err(RemoteError::Protocol(reason)),
            other => {
                return Err(RemoteError::Protocol(format!(
                    "unexpected {} to a claim",
                    other.tag()
                )))
            }
        }
    }
    span.record("shards_run", report.shards_run.len());
    span.record("reconnects", report.reconnects);
    Ok(report)
}

enum ShardDelivery {
    /// Every record acked.
    Delivered,
    /// The coordinator rejected our epoch — the shard was re-granted.
    Superseded,
}

#[allow(clippy::too_many_arguments)]
fn run_granted_shard(
    opts: &WorkerOptions,
    info: &WelcomeInfo,
    stream: &mut TcpStream,
    report: &mut WorkerReport,
    attempt: &mut usize,
    shard_id: usize,
    epoch: u64,
) -> Result<ShardDelivery, RemoteError> {
    let spec = ShardSpec {
        shards: info.shards,
        shard_id,
    };
    let owned = shard_indices(info.jobs.len(), &spec);
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_stale = Arc::new(AtomicBool::new(false));
    let hb = std::thread::spawn({
        let (stop, stale) = (Arc::clone(&hb_stop), Arc::clone(&hb_stale));
        let addr = opts.connect;
        let interval = Duration::from_millis(info.heartbeat_ms.max(1));
        move || heartbeat_loop(addr, shard_id, epoch, interval, &stop, &stale)
    });
    let finish_hb = |outcome| {
        hb_stop.store(true, Ordering::SeqCst);
        let _ = hb.join();
        outcome
    };

    let records = match run_scoped(&info.jobs, &info.config, None, Some(&owned)) {
        Ok(r) => r,
        Err(e) => return finish_hb(Err(e.into())),
    };

    // Deliver every record; at-least-once, so after any reconnect the
    // whole shard is resent from the top and the coordinator dedups.
    let mut cursor = 0usize;
    while cursor < records.len() {
        if hb_stale.load(Ordering::SeqCst) {
            return finish_hb(Ok(ShardDelivery::Superseded));
        }
        let record = &records[cursor];
        let msg = Message::JobResult {
            shard_id,
            epoch,
            index: record.index,
            record_json: encode_record(record).to_string(),
        };
        match call(stream, &msg) {
            Ok(Message::Ack { .. }) => {
                report.records_sent += 1;
                obs::counter_add("net.worker.results_sent", 1);
                cursor += 1;
            }
            Ok(Message::Reject { .. }) => return finish_hb(Ok(ShardDelivery::Superseded)),
            Ok(other) => {
                return finish_hb(Err(RemoteError::Protocol(format!(
                    "unexpected {} to a job-result",
                    other.tag()
                ))))
            }
            Err(_) => {
                obs::event!("net.worker.disconnected", shard = shard_id, at = cursor);
                match connect_and_hello(opts, report, attempt) {
                    Ok((s, w)) => {
                        if parse_welcome(w, opts).is_err() {
                            return finish_hb(Err(RemoteError::Protocol(
                                "welcome changed across reconnect".to_string(),
                            )));
                        }
                        *stream = s;
                        cursor = 0; // resend from the top
                    }
                    Err(RemoteError::TransportLost(msg)) => {
                        let sealed = seal_partial(opts, info, shard_id, epoch, &records);
                        report.partial_sealed = sealed;
                        return finish_hb(Err(RemoteError::TransportLost(format!(
                            "{msg}; shard {shard_id} progress {} locally",
                            if report.partial_sealed.is_some() {
                                "sealed"
                            } else {
                                "discarded"
                            }
                        ))));
                    }
                    Err(e) => return finish_hb(Err(e)),
                }
            }
        }
    }
    finish_hb(Ok(ShardDelivery::Delivered))
}

/// Seals the computed-but-undelivered records as a CRC'd partial shard
/// manifest. Best-effort: a seal failure only loses forensics, never
/// correctness (the coordinator re-runs the shard deterministically).
fn seal_partial(
    opts: &WorkerOptions,
    info: &WelcomeInfo,
    shard_id: usize,
    epoch: u64,
    records: &[JobRecord],
) -> Option<PathBuf> {
    let dir = opts.local_dir.as_ref()?;
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let meta = ShardMeta {
        batch: BatchMeta {
            batch_seed: info.config.batch_seed,
            jobs: info.jobs.len(),
            pipeline_fault_rate: info.config.pipeline_fault_rate,
        },
        shards: info.shards,
        shard_id,
        owner: format!("net:{}", opts.worker_id),
        epoch,
        taken_over_from: None,
    };
    let path = partial_manifest_path(dir, shard_id);
    match encode_shard_manifest(&meta, records).write(&path) {
        Ok(()) => {
            obs::counter_add("net.worker.partial_seals", 1);
            obs::event!(
                "net.partial_seal",
                shard = shard_id,
                path = path.display().to_string()
            );
            Some(path)
        }
        Err(_) => None,
    }
}

// ---------------------------------------------------------------------------
// Net chaos: run a real coordinator + worker subprocesses through the
// fault proxy, SIGKILL a worker mid-grant, and verify the sealed batch
// manifest is still bit-identical to an uninterrupted in-process run.
// ---------------------------------------------------------------------------

/// Net-chaos campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosOptions {
    /// Campaign seed; trial `t` derives its batch seed from it, and the
    /// victim worker is drawn from it too.
    pub seed: u64,
    /// Number of trials.
    pub trials: usize,
    /// Jobs per trial batch.
    pub jobs: usize,
    /// Worker subprocesses per trial (the coordinator splits the batch
    /// into this many net shards).
    pub workers: usize,
    /// Worker threads inside each worker process.
    pub threads: usize,
    /// Pipeline fault-injection rate (panics/hangs/transients inside the
    /// jobs themselves), exercising transport recovery under concurrent
    /// compute faults.
    pub fault_rate: f64,
    /// Proxy injection rate per fault site per frame — drop, bit-flip,
    /// duplicate, delay, reorder, partition, connection refusal.
    pub net_fault_rate: f64,
    /// SIGKILL a seeded victim worker the moment it holds a grant.
    pub kill_worker: bool,
    /// The `pcd` binary to spawn workers with.
    pub pcd_exe: PathBuf,
    /// Scratch parent directory (defaults to the system temp directory).
    pub scratch_dir: Option<PathBuf>,
}

impl Default for NetChaosOptions {
    fn default() -> Self {
        NetChaosOptions {
            seed: 42,
            trials: 2,
            jobs: 6,
            workers: 3,
            threads: 2,
            fault_rate: 0.25,
            net_fault_rate: 0.05,
            kill_worker: true,
            pcd_exe: PathBuf::from("pcd"),
            scratch_dir: None,
        }
    }
}

/// One net-chaos trial's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosTrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// The worker id that was SIGKILLed, when one was.
    pub victim: Option<String>,
    /// Whether the kill actually landed mid-run (a fast victim may
    /// deliver its whole shard and exit before the signal).
    pub killed_mid_run: bool,
    /// Epoch takeovers the coordinator performed over the wire.
    pub takeovers: usize,
    /// Shards the coordinator rescued in-process.
    pub rescued: usize,
    /// Bit-identical duplicate records the coordinator collapsed
    /// (reconnect resends surviving the proxy).
    pub deduped: usize,
    /// Invariant violations (empty = the trial survived).
    pub violations: Vec<String>,
}

/// The whole net-chaos campaign's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosReport {
    /// Per-trial outcomes.
    pub outcomes: Vec<NetChaosTrialOutcome>,
}

impl NetChaosReport {
    /// Trials that violated an invariant.
    pub fn failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .count()
    }

    /// Whether every trial upheld every invariant.
    pub fn survived(&self) -> bool {
        self.failures() == 0
    }

    /// Wire takeovers observed across the campaign.
    pub fn takeovers(&self) -> usize {
        self.outcomes.iter().map(|o| o.takeovers).sum()
    }
}

/// Runs the net-chaos campaign: per trial, binds an in-process
/// coordinator, stands a [`net::FaultProxy`] in front of it, launches
/// `workers` real `pcd batch --connect` subprocesses through the proxy,
/// SIGKILLs a seeded victim as soon as it holds a grant, and asserts the
/// coordinator's sealed `batch.manifest` is bit-identical to an
/// uninterrupted in-process reference — no record lost, duplicated, or
/// silently corrupted by the damaged link.
pub fn run_net_chaos(opts: &NetChaosOptions) -> NetChaosReport {
    let mut span = obs::span("net.chaos");
    span.record("trials", opts.trials);
    span.record("workers", opts.workers);

    let jobs = crate::chaos::trial_jobs(opts.jobs.max(1));
    let mut outcomes = Vec::with_capacity(opts.trials);
    for trial in 0..opts.trials {
        let batch_seed = opts
            .seed
            .wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scratch = opts
            .scratch_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join(format!("pcd-netchaos-{}-{trial}", std::process::id()));
        let mut outcome = NetChaosTrialOutcome {
            trial,
            victim: None,
            killed_mid_run: false,
            takeovers: 0,
            rescued: 0,
            deduped: 0,
            violations: Vec::new(),
        };
        if let Err(v) = net_chaos_trial(batch_seed, &jobs, &scratch, opts, &mut outcome) {
            outcome.violations.push(v);
        }
        if !outcome.violations.is_empty() {
            obs::counter_add("supervisor.chaos_failures", 1);
        }
        obs::event!(
            "net.chaos_trial",
            trial = trial,
            killed_mid_run = outcome.killed_mid_run,
            takeovers = outcome.takeovers,
            rescued = outcome.rescued,
            deduped = outcome.deduped,
            violations = outcome.violations.len()
        );
        let _ = std::fs::remove_dir_all(&scratch);
        outcomes.push(outcome);
    }

    let report = NetChaosReport { outcomes };
    span.record("failures", report.failures());
    span.record("takeovers", report.takeovers());
    report
}

fn net_chaos_trial(
    batch_seed: u64,
    jobs: &[JobSpec],
    scratch: &Path,
    opts: &NetChaosOptions,
    outcome: &mut NetChaosTrialOutcome,
) -> Result<(), String> {
    use crate::engine::run_batch;
    use crate::manifest::encode_manifest;
    use net::{FaultProxy, ProxyOptions};
    use std::process::{Command, Stdio};

    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).map_err(|e| format!("scratch dir: {e}"))?;

    // Uninterrupted in-process reference: the sealed manifest every
    // proxied + killed + merged run must reproduce bit-for-bit.
    let config = SupervisorConfig {
        workers: opts.threads.max(1),
        batch_seed,
        pipeline_fault_rate: opts.fault_rate,
        injection: if opts.fault_rate > 0.0 {
            InjectionPlan::chaos(opts.fault_rate)
        } else {
            InjectionPlan::none()
        },
        ..SupervisorConfig::default()
    };
    let reference = run_batch(jobs, &config).map_err(|e| format!("reference run: {e}"))?;
    let meta = BatchMeta {
        batch_seed,
        jobs: jobs.len(),
        pipeline_fault_rate: config.pipeline_fault_rate,
    };
    let reference_bytes = encode_manifest(&meta, &reference.records).to_bytes();

    // Coordinator behind the fault proxy.
    let coord_config = SupervisorConfig {
        ckpt_dir: Some(scratch.join("ckpt")),
        ..config
    };
    let coordinator = Coordinator::bind(
        jobs,
        &coord_config,
        CoordinatorOptions {
            shards: opts.workers.max(1),
            deadline: Duration::from_secs(60),
            ..CoordinatorOptions::default()
        },
    )
    .map_err(|e| format!("coordinator bind: {e}"))?;
    let watch = coordinator.watch();
    let proxy = FaultProxy::start(ProxyOptions {
        listen: SocketAddr::from(([127, 0, 0, 1], 0)),
        target: coordinator.addr(),
        seed: splitmix64(batch_seed ^ 0x5EA_F007),
        fault_rate: opts.net_fault_rate,
    })
    .map_err(|e| format!("proxy start: {e}"))?;
    let proxy_addr = proxy.addr();
    let coord_thread = std::thread::spawn(move || coordinator.run());

    // The fleet, each worker connecting through the damaged link.
    let mut children = Vec::new();
    for w in 0..opts.workers.max(1) {
        let worker_id = format!("w{w}");
        let child = Command::new(&opts.pcd_exe)
            .arg("batch")
            .args(["--connect", &proxy_addr.to_string()])
            .args(["--worker-id", &worker_id])
            .args(["--workers", &opts.threads.max(1).to_string()])
            .arg("--local-dir")
            .arg(scratch.join(&worker_id))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning worker {worker_id}: {e}"))?;
        children.push((worker_id, child));
    }

    // SIGKILL the victim the moment it holds a live grant (mid-run by
    // construction... unless it delivers the whole shard faster than the
    // poll, which the exit status below detects).
    let victim = opts.kill_worker.then(|| {
        format!(
            "w{}",
            splitmix64(batch_seed ^ 0xFEED) % opts.workers.max(1) as u64
        )
    });
    if let Some(victim_id) = &victim {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !watch.granted_to(victim_id) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        outcome.victim = Some(victim_id.clone());
    }

    let mut statuses = Vec::new();
    for (worker_id, mut child) in children {
        if Some(&worker_id) == victim.as_ref() {
            let _ = child.kill();
        }
        let status = child
            .wait()
            .map_err(|e| format!("waiting for worker {worker_id}: {e}"))?;
        statuses.push((worker_id, status));
    }
    if let Some(victim_id) = &victim {
        let victim_status = statuses
            .iter()
            .find(|(id, _)| id == victim_id)
            .map(|(_, st)| *st)
            .ok_or_else(|| "victim status missing".to_string())?;
        // `killed_mid_run` = the signal actually cut the run short; a
        // victim that beat the poll to completion exits 0.
        outcome.killed_mid_run = !victim_status.success();
    }
    // Survivors must end in the exit taxonomy: 0 (drained clean) or 36
    // (transport exhausted, sealed partial, resumable). Anything else —
    // a panic, a protocol error, a usage failure — is a violation.
    for (worker_id, status) in &statuses {
        if Some(worker_id) == victim.as_ref() {
            continue;
        }
        match status.code() {
            Some(0) | Some(36) => {}
            code => outcome
                .violations
                .push(format!("worker {worker_id} exited {code:?} (want 0 or 36)")),
        }
    }

    let report = coord_thread
        .join()
        .map_err(|_| "coordinator thread panicked".to_string())?
        .map_err(|e| format!("coordinator run: {e}"))?;
    proxy.stop();

    outcome.takeovers = report.takeovers.len();
    outcome.rescued = report.rescued.len();
    outcome.deduped = report.deduped;

    // The invariants: every job terminal exactly once, and the sealed
    // manifest bit-identical to the uninterrupted reference — whatever
    // the proxy dropped, flipped, duplicated, or severed.
    if report.records.len() != jobs.len() {
        outcome.violations.push(format!(
            "coordinator merged {} records for {} jobs",
            report.records.len(),
            jobs.len()
        ));
    }
    if report.sealed != reference_bytes {
        outcome.violations.push(
            "coordinator batch.manifest differs from the single-machine reference manifest"
                .to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::trial_jobs;
    use crate::engine::run_batch;
    use crate::manifest::encode_manifest;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pcd-remote-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(batch_seed: u64, dir: &Path) -> SupervisorConfig {
        SupervisorConfig {
            batch_seed,
            ckpt_dir: Some(dir.to_path_buf()),
            ..SupervisorConfig::default()
        }
    }

    fn reference_bytes(jobs: &[JobSpec], config: &SupervisorConfig) -> Vec<u8> {
        let reference = run_batch(jobs, config).unwrap();
        let meta = BatchMeta {
            batch_seed: config.batch_seed,
            jobs: jobs.len(),
            pipeline_fault_rate: config.pipeline_fault_rate,
        };
        encode_manifest(&meta, &reference.records).to_bytes()
    }

    fn worker_opts(addr: SocketAddr, id: &str) -> WorkerOptions {
        WorkerOptions {
            connect: addr,
            worker_id: id.to_string(),
            backoff: BackoffPolicy {
                base_ms: 1,
                factor: 2.0,
                cap_ms: 20,
                jitter: 0.5,
            },
            ..WorkerOptions::default()
        }
    }

    #[test]
    fn three_workers_over_loopback_match_the_single_machine_manifest() {
        let dir = scratch("loopback");
        let jobs = trial_jobs(7);
        let config = config(41, &dir.join("ckpt"));
        let expected = reference_bytes(&jobs, &config);

        let coordinator = Coordinator::bind(
            &jobs,
            &config,
            CoordinatorOptions {
                shards: 3,
                ..CoordinatorOptions::default()
            },
        )
        .unwrap();
        let addr = coordinator.addr();
        let coord = std::thread::spawn(move || coordinator.run());
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let opts = worker_opts(addr, &format!("w{i}"));
                std::thread::spawn(move || run_worker(&opts))
            })
            .collect();
        for w in workers {
            let report = w.join().unwrap().unwrap();
            assert!(report.partial_sealed.is_none());
        }
        let report = coord.join().unwrap().unwrap();
        assert_eq!(
            report.sealed, expected,
            "multi-machine merge must be bit-identical"
        );
        assert_eq!(report.records.len(), jobs.len());
        assert!(report.rescued.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanished_worker_is_taken_over_at_the_next_epoch() {
        let dir = scratch("takeover");
        let jobs = trial_jobs(6);
        let config = config(43, &dir.join("ckpt"));
        let expected = reference_bytes(&jobs, &config);

        let coordinator = Coordinator::bind(
            &jobs,
            &config,
            CoordinatorOptions {
                shards: 2,
                lease_ms: 120,
                heartbeat_ms: 40,
                ..CoordinatorOptions::default()
            },
        )
        .unwrap();
        let addr = coordinator.addr();
        let coord = std::thread::spawn(move || coordinator.run());

        // A "worker" that claims shard 0 and silently dies: hello, claim,
        // then drop the connection without a single heartbeat or record.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let hello = Message::Hello {
                worker: "ghost".to_string(),
                version: PROTOCOL_VERSION,
            };
            assert!(matches!(
                call(&mut stream, &hello).unwrap(),
                Message::Welcome { .. }
            ));
            let claim = Message::Claim {
                worker: "ghost".to_string(),
            };
            assert!(matches!(
                call(&mut stream, &claim).unwrap(),
                Message::Grant {
                    shard_id: 0,
                    epoch: 0,
                    ..
                }
            ));
        }

        // A healthy worker absorbs both shards — shard 0 via takeover.
        let report = run_worker(&worker_opts(addr, "healthy")).unwrap();
        assert!(report.shards_run.contains(&0), "takeover grant ran");
        let coord_report = coord.join().unwrap().unwrap();
        assert_eq!(coord_report.sealed, expected);
        let takeover = coord_report
            .takeovers
            .iter()
            .find(|t| t.shard_id == 0)
            .expect("epoch takeover recorded");
        assert_eq!(takeover.from, "ghost");
        assert_eq!(takeover.epoch, 1, "monotonic epoch bump");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coordinator_rescues_when_the_whole_fleet_dies() {
        let dir = scratch("rescue");
        let jobs = trial_jobs(5);
        let config = config(47, &dir.join("ckpt"));
        let expected = reference_bytes(&jobs, &config);

        let coordinator = Coordinator::bind(
            &jobs,
            &config,
            CoordinatorOptions {
                shards: 2,
                lease_ms: 80,
                heartbeat_ms: 30,
                deadline: Duration::from_secs(30),
                ..CoordinatorOptions::default()
            },
        )
        .unwrap();
        let addr = coordinator.addr();
        let coord = std::thread::spawn(move || coordinator.run());
        // One ghost claims a shard and dies; nobody else ever connects.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let hello = Message::Hello {
                worker: "ghost".to_string(),
                version: PROTOCOL_VERSION,
            };
            let _ = call(&mut stream, &hello).unwrap();
            let claim = Message::Claim {
                worker: "ghost".to_string(),
            };
            let _ = call(&mut stream, &claim).unwrap();
        }
        let report = coord.join().unwrap().unwrap();
        assert_eq!(report.sealed, expected, "rescued batch still bit-identical");
        assert!(!report.rescued.is_empty(), "rescue path exercised");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_rejected_as_protocol_error() {
        let dir = scratch("version");
        let jobs = trial_jobs(2);
        let config = config(3, &dir.join("ckpt"));
        let coordinator = Coordinator::bind(&jobs, &config, CoordinatorOptions::default()).unwrap();
        let addr = coordinator.addr();
        let watch = coordinator.watch();
        let coord = std::thread::spawn(move || coordinator.run());

        let mut stream = TcpStream::connect(addr).unwrap();
        let bad_hello = Message::Hello {
            worker: "time-traveler".to_string(),
            version: PROTOCOL_VERSION + 1,
        };
        assert!(matches!(
            call(&mut stream, &bad_hello).unwrap(),
            Message::Reject { .. }
        ));
        assert!(watch.owner_of(0).is_none());
        drop(stream);

        // Finish the batch so the coordinator thread exits.
        run_worker(&worker_opts(addr, "w0")).unwrap();
        coord.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconnect_ladder_replays_bit_for_bit() {
        // No listener at this address: every attempt fails, exhausting
        // the budget and recording the full delay ladder.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let opts = WorkerOptions {
            max_reconnects: 5,
            ..worker_opts(dead, "replay-me")
        };
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut report = WorkerReport {
                    worker_id: opts.worker_id.clone(),
                    shards_run: Vec::new(),
                    records_sent: 0,
                    reconnects: 0,
                    reconnect_delays_ms: Vec::new(),
                    partial_sealed: None,
                };
                let mut attempt = 0;
                let err = connect_and_hello(&opts, &mut report, &mut attempt).unwrap_err();
                assert!(matches!(err, RemoteError::TransportLost(_)));
                report.reconnect_delays_ms
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same worker id, same ladder");
        assert_eq!(
            runs[0],
            reconnect_schedule("replay-me", &opts.backoff, 5),
            "ladder is the published pure function"
        );
        assert_ne!(
            runs[0],
            reconnect_schedule("someone-else", &opts.backoff, 5),
            "ladders decorrelate by worker id"
        );
    }

    #[test]
    fn partial_seal_writes_a_decodable_manifest_the_merge_ignores() {
        let dir = scratch("partial");
        let jobs = trial_jobs(4);
        let info = WelcomeInfo {
            jobs: jobs.clone(),
            config: SupervisorConfig {
                batch_seed: 9,
                ..SupervisorConfig::default()
            },
            shards: 2,
            heartbeat_ms: 50,
        };
        let opts = WorkerOptions {
            local_dir: Some(dir.clone()),
            ..worker_opts("127.0.0.1:1".parse().unwrap(), "sealer")
        };
        let records = run_scoped(&jobs, &info.config, None, Some(&[0, 2])).unwrap();
        let owned: Vec<JobRecord> = records.into_iter().filter(|r| r.index % 2 == 0).collect();
        let path = seal_partial(&opts, &info, 0, 3, &owned).expect("seal lands");
        assert!(path.ends_with("shard-0.manifest.partial"));
        let ck = resilience::Checkpoint::read(&path).unwrap();
        let (meta, back) = crate::shard::decode_shard_manifest(&ck).unwrap();
        assert_eq!(meta.owner, "net:sealer");
        assert_eq!(meta.epoch, 3);
        assert_eq!(back, owned);
        // The merge scan must not pick the partial up as a shard.
        let err = merge_shards(&dir, &jobs).unwrap_err();
        assert!(matches!(err, crate::merge::MergeError::NoShards(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
