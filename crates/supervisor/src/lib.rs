//! Supervised batch job execution for the pauli-codesign pipeline.
//!
//! One `pcd` invocation used to mean exactly one pipeline run: a single
//! panicking kernel, a hung SCF, or one pathological molecule took the
//! whole process down. This crate is the missing serving layer — it runs
//! many pipeline jobs (molecule × bond × compression configurations) over
//! a pool of supervised workers and keeps the fleet alive when individual
//! jobs fail:
//!
//! - **Backpressure and load-shedding** ([`queue`]) — a bounded,
//!   seed-deterministic job queue; when more jobs arrive than the cap
//!   allows, the configured [`ShedPolicy`] (reject-new or drop-oldest)
//!   decides deterministically which jobs are shed, and every shed is an
//!   obs event.
//! - **Panic isolation** ([`engine`]) — each job attempt runs inside
//!   `catch_unwind` at the worker boundary; a panic is a per-job failure,
//!   never a process abort, and a job that keeps failing is *quarantined*
//!   after its retry budget so one bad input cannot wedge the queue.
//! - **Timeouts, backoff, and circuit breaking** ([`backoff`],
//!   [`breaker`]) — job attempts run in budget slices on [`par::Budget`];
//!   a seedable exponential-backoff-plus-jitter ladder spaces retries, and
//!   a per-job, per-stage (SCF / compile / VQE) circuit breaker trips on
//!   consecutive failures and fails the job fast.
//! - **Graceful drain** ([`manifest`]) — on deadline or drain request,
//!   in-flight jobs checkpoint through the resilience container (format
//!   v2, tagged with the job id) and the supervisor emits a resumable
//!   manifest; a drained-then-resumed batch finishes **bit-identically**
//!   to an uninterrupted one.
//!
//! Determinism is the design axis everything bends around: a job's
//! outcome is a pure function of `(batch_seed, job_index, spec)` — never
//! of which worker ran it, how many workers exist, or where the drain cut
//! — so the per-job results of a batch are identical at 1, 2, or 4
//! workers, and the [`chaos`] harness can assert bit-for-bit equality
//! between interrupted and uninterrupted batches while injecting panics,
//! hangs, and transient faults.
//!
//! Determinism is also what makes the batch **horizontally shardable**
//! ([`shard`], [`lease`], [`merge`]): `--shards N --shard-id K` splits a
//! batch across processes by `index % N`, each shard heartbeats a lease
//! and seals its own CRC-guarded manifest, a surviving sibling (or a
//! re-run) takes over a dead shard's slice by claiming its lease epoch,
//! and `pcd batch merge` unions the shard manifests into a sealed
//! `batch.manifest` that is bit-identical to a 1-shard run's — takeover
//! provenance recorded beside it in `merge.lineage`, never inside it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backoff;
pub mod breaker;
pub mod chaos;
pub mod engine;
pub mod job;
pub mod lease;
pub mod manifest;
pub mod merge;
pub mod progress;
pub mod queue;
pub mod remote;
pub mod shard;

pub use backoff::BackoffPolicy;
pub use breaker::{CircuitBreaker, Stage};
pub use chaos::{
    run_kill_shard_chaos, run_supervised_chaos, KillShardOptions, KillShardReport,
    KillShardTrialOutcome, SupervisedChaosOptions, SupervisedChaosReport, SupervisedTrialOutcome,
};
pub use engine::{
    run_batch, run_batch_resumed, BatchReport, InjectionPlan, SupervisorConfig, SupervisorError,
};
pub use job::{attempt_seed, job_seed, parse_jobs, JobRecord, JobSpec, JobState};
pub use lease::{classify, local_host, try_claim, Lease, LeaseHealth, LeaseKeeper, STALE_AFTER};
pub use manifest::{decode_manifest, encode_manifest, BatchMeta, KIND_BATCH_MANIFEST};
pub use merge::{merge_shards, MergeError, MergeOutcome, ShardLineage, KIND_MERGE_LINEAGE};
pub use progress::{ProgressSnapshot, ProgressTracker};
pub use queue::{admit, admit_plan, Admission, JobQueue, Lane, ShedPolicy, FAST_LANE_MAX_QUBITS};
pub use remote::{
    partial_manifest_path, reconnect_schedule, run_net_chaos, run_worker, Coordinator,
    CoordinatorOptions, CoordinatorReport, CoordinatorWatch, NetChaosOptions, NetChaosReport,
    NetChaosTrialOutcome, RemoteError, RemoteTakeover, WorkerOptions, WorkerReport,
};
pub use shard::{
    decode_shard_manifest, encode_shard_manifest, job_shard, run_shard, shard_indices,
    shard_manifest_path, ShardMeta, ShardRunReport, ShardSpec, TakeoverOutcome,
    KIND_SHARD_MANIFEST,
};

/// SplitMix64 finalizer used to derive per-job and per-attempt seeds from
/// the batch seed. Identical constants to the resilience fault plan's
/// mixer, so the whole fleet shares one notion of "decorrelate this key".
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
