//! Seedable exponential-backoff-plus-jitter retry ladder.
//!
//! Delays are *computed* deterministically from `(seed, attempt)` — the
//! jitter comes from the same SplitMix64 mixer as the fault plan, not from
//! wall-clock entropy — so a batch's retry schedule replays bit-for-bit.
//! Whether the supervisor actually *sleeps* the computed delay is a
//! policy knob: tests and the chaos harness run with `base_ms = 0` (no
//! sleeping, same retry counts), production batches space retries out.

use crate::splitmix64;

/// Exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds. `0` disables
    /// sleeping entirely (delays still compute, for the record).
    pub base_ms: u64,
    /// Multiplier per attempt (attempt `a` waits `base * factor^a`).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 0,
            factor: 2.0,
            cap_ms: 5_000,
            jitter: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry `attempt` (0-based: attempt 0 is the delay
    /// before the first retry), deterministically jittered by
    /// `(seed, attempt)`.
    pub fn delay_ms(&self, seed: u64, attempt: usize) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = self.factor.max(1.0).powi(attempt.min(32) as i32);
        let nominal = (self.base_ms as f64 * exp).min(self.cap_ms as f64);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // Uniform in [0, 1) from the mixed key, mapped to [1-j, 1+j].
        let u = (splitmix64(seed ^ splitmix64(attempt as u64)) >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - jitter + 2.0 * jitter * u;
        (nominal * scale).min(self.cap_ms as f64).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base_ms: 100,
            factor: 2.0,
            cap_ms: 1_000,
            jitter: 0.25,
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = BackoffPolicy::default();
        for a in 0..10 {
            assert_eq!(p.delay_ms(42, a), 0);
        }
    }

    #[test]
    fn delays_grow_exponentially_until_the_cap() {
        let p = BackoffPolicy {
            jitter: 0.0,
            ..policy()
        };
        assert_eq!(p.delay_ms(1, 0), 100);
        assert_eq!(p.delay_ms(1, 1), 200);
        assert_eq!(p.delay_ms(1, 2), 400);
        assert_eq!(p.delay_ms(1, 10), 1_000, "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = policy();
        for attempt in 0..6 {
            let a = p.delay_ms(99, attempt);
            let b = p.delay_ms(99, attempt);
            assert_eq!(a, b, "same key, same delay");
            let nominal = (100.0 * 2f64.powi(attempt as i32)).min(1_000.0);
            assert!(
                (a as f64) >= nominal * 0.75 - 1.0 && (a as f64) <= nominal * 1.25 + 1.0,
                "attempt {attempt}: {a} outside ±25% of {nominal}"
            );
        }
        // Different seeds jitter differently somewhere in the ladder.
        assert!((0..6).any(|a| policy().delay_ms(1, a) != policy().delay_ms(2, a)));
    }
}
