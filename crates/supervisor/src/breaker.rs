//! Per-stage circuit breaker.
//!
//! A job that keeps dying at the same pipeline stage is not going to be
//! saved by more retries — it is burning worker time the rest of the
//! queue needs. The breaker counts *consecutive* failures per stage
//! (SCF / compile / VQE); crossing the threshold opens the breaker and
//! the supervisor fails the job fast into quarantine instead of running
//! its remaining retry budget.
//!
//! The gating breaker is **per job**: batch-wide gating on live
//! completion order would make one job's fate depend on scheduling, which
//! breaks the supervisor's worker-count determinism guarantee. Batch-wide
//! failure statistics are instead folded post-hoc in job-index order (see
//! the engine's report).

/// Pipeline stage a breaker guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Chemistry / SCF (including geometry faults).
    Scf,
    /// Circuit compilation.
    Compile,
    /// VQE optimization — also where panics and timeouts are attributed,
    /// since the worker boundary wraps the whole attempt.
    Vqe,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::Scf, Stage::Compile, Stage::Vqe];

    /// Maps an error's stage label onto a breaker stage. Unknown labels
    /// (panics, transients, timeouts) charge the VQE stage: the attempt
    /// boundary is the VQE slice loop.
    pub fn from_label(label: &str) -> Stage {
        match label {
            "chem" | "scf" => Stage::Scf,
            "compile" | "encoding" => Stage::Compile,
            _ => Stage::Vqe,
        }
    }

    /// Short name for events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Scf => "scf",
            Stage::Compile => "compile",
            Stage::Vqe => "vqe",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Scf => 0,
            Stage::Compile => 1,
            Stage::Vqe => 2,
        }
    }
}

/// Consecutive-failure circuit breaker over the three pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: usize,
    consecutive: [usize; 3],
    open: [bool; 3],
}

impl CircuitBreaker {
    /// A breaker that opens a stage after `threshold` consecutive
    /// failures there (`0` disables the breaker).
    pub fn new(threshold: usize) -> Self {
        CircuitBreaker {
            threshold,
            consecutive: [0; 3],
            open: [false; 3],
        }
    }

    /// Records a successful pass through `stage`, resetting its count.
    pub fn record_success(&mut self, stage: Stage) {
        self.consecutive[stage.index()] = 0;
    }

    /// Records a failure at `stage`. Returns `true` when this failure
    /// just opened the breaker.
    pub fn record_failure(&mut self, stage: Stage) -> bool {
        let i = stage.index();
        self.consecutive[i] += 1;
        if self.threshold > 0 && !self.open[i] && self.consecutive[i] >= self.threshold {
            self.open[i] = true;
            obs::counter_add("supervisor.breaker_opened", 1);
            obs::event!(
                "supervisor.breaker_open",
                stage = stage.name(),
                consecutive = self.consecutive[i]
            );
            return true;
        }
        false
    }

    /// The consecutive-failure counts per stage, in [`Stage::ALL`] order
    /// — what a drained job's manifest records.
    pub fn snapshot(&self) -> [usize; 3] {
        self.consecutive
    }

    /// Rebuilds a breaker from a manifest snapshot. A `Pending` job never
    /// has an open breaker (opening quarantines immediately), so the
    /// counts are all that needs restoring.
    pub fn restore(threshold: usize, consecutive: [usize; 3]) -> Self {
        CircuitBreaker {
            threshold,
            consecutive,
            open: [false; 3],
        }
    }

    /// Whether `stage`'s breaker has opened.
    pub fn is_open(&self, stage: Stage) -> bool {
        self.open[stage.index()]
    }

    /// The first open stage, if any — open means fail fast.
    pub fn open_stage(&self) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| self.is_open(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure(Stage::Scf));
        assert!(!b.record_failure(Stage::Scf));
        assert!(b.record_failure(Stage::Scf), "third consecutive opens");
        assert!(b.is_open(Stage::Scf));
        assert_eq!(b.open_stage(), Some(Stage::Scf));
        assert!(!b.is_open(Stage::Vqe));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure(Stage::Vqe);
        b.record_success(Stage::Vqe);
        assert!(!b.record_failure(Stage::Vqe), "streak was reset");
        assert!(!b.is_open(Stage::Vqe));
    }

    #[test]
    fn stages_are_independent() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure(Stage::Scf);
        b.record_failure(Stage::Compile);
        b.record_failure(Stage::Vqe);
        assert_eq!(b.open_stage(), None, "no stage has two consecutive");
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::new(0);
        for _ in 0..100 {
            assert!(!b.record_failure(Stage::Vqe));
        }
        assert_eq!(b.open_stage(), None);
    }

    #[test]
    fn label_mapping_charges_unknowns_to_vqe() {
        assert_eq!(Stage::from_label("scf"), Stage::Scf);
        assert_eq!(Stage::from_label("chem"), Stage::Scf);
        assert_eq!(Stage::from_label("compile"), Stage::Compile);
        assert_eq!(Stage::from_label("panic"), Stage::Vqe);
        assert_eq!(Stage::from_label("timeout"), Stage::Vqe);
    }
}
